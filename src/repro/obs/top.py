"""Live campaign progress views: the model behind ``repro top``.

Two sources feed one renderer:

* **event streams** -- :func:`fold_events` reduces a telemetry event
  sequence (from a service ``subscribe`` stream or a saved
  ``--events`` file) into per-campaign :class:`CampaignView` state;
* **journals** -- :func:`view_from_journals` rebuilds the same state
  offline from a campaign journal and its shard files, using the
  schema-v8 unit markers for in-flight units and the live ETA.

:func:`render_top` turns the state into one text frame -- progress
bar, outcome tallies, per-shard throughput, worker health, ETA --
used verbatim by ``repro top`` (both socket and journal modes) and,
in condensed form, by ``repro status``.

Everything here is read-only over volatile data (timestamps, rates):
nothing feeds back into the deterministic metrics core.
"""

from __future__ import annotations

import time

#: canonical outcome display order (Table 1 column order).
OUTCOME_ORDER = ("NA", "NM", "FSV", "SD", "BRK", "HANG", "HF")


class CampaignView:
    """Mutable per-campaign progress state (one box in the frame)."""

    def __init__(self, campaign):
        self.campaign = campaign
        self.points = None            # total experiments, when known
        self.workers = None
        self.resumed = 0
        self.golden_reused = None
        self.completed = 0            # experiments with an outcome
        self.outcomes = {}            # outcome -> count
        self.in_flight = {}           # unit id -> worker (or None)
        self.units_done = 0
        self.per_worker = {}          # worker -> completed units
        self.respawns = 0
        self.backoffs = 0
        self.retired = 0
        self.checkpoint = None        # reason, when checkpointed
        self.finished = False
        self.quarantined = 0
        self.first_ts = None
        self.last_ts = None
        self.shards = {}              # label -> record count (journal)

    # -- derived -------------------------------------------------------

    def _stamp(self, ts):
        if ts is None:
            return
        if self.first_ts is None or ts < self.first_ts:
            self.first_ts = ts
        if self.last_ts is None or ts > self.last_ts:
            self.last_ts = ts

    @property
    def rate(self):
        """Completed experiments per second over the observed window
        (``None`` until two timestamps exist)."""
        if (self.first_ts is None or self.last_ts is None
                or self.last_ts <= self.first_ts or not self.completed):
            return None
        return self.completed / (self.last_ts - self.first_ts)

    def eta_seconds(self):
        """Seconds until done at the observed rate (``None`` when the
        total or the rate is unknown)."""
        rate = self.rate
        if rate is None or self.points is None:
            return None
        remaining = max(0, self.points - self.completed)
        return remaining / rate


def fold_events(events, views=None):
    """Reduce telemetry *events* into ``{campaign: CampaignView}``.

    Accepts both raw bus events and service ``telemetry`` lines (the
    payload shape is identical).  Pass the returned dict back in as
    *views* to fold incrementally.
    """
    views = {} if views is None else views
    for event in events:
        cid = event.get("campaign")
        view = views.get(cid)
        if view is None:
            view = views[cid] = CampaignView(cid)
        view._stamp(event.get("ts"))
        kind = event.get("type")
        if kind == "campaign-started":
            view.points = event.get("points", view.points)
            view.workers = event.get("workers", view.workers)
            view.resumed = event.get("resumed", view.resumed)
        elif kind == "golden":
            view.golden_reused = event.get("reused")
        elif kind == "unit-started":
            view.in_flight[event.get("unit")] = event.get("worker")
        elif kind == "unit-finished":
            view.in_flight.pop(event.get("unit"), None)
            view.units_done += 1
            worker = event.get("worker")
            view.per_worker[worker] = view.per_worker.get(worker,
                                                          0) + 1
            if event.get("total") is not None:
                view.points = event["total"]
            if event.get("completed") is not None:
                view.completed = max(view.completed,
                                     event["completed"])
        elif kind == "outcomes":
            for outcome, count in (event.get("delta") or {}).items():
                view.outcomes[outcome] = (view.outcomes.get(outcome, 0)
                                          + count)
            view.completed = max(view.completed,
                                 sum(view.outcomes.values()))
        elif kind == "worker-respawn":
            view.respawns += 1
        elif kind == "worker-backoff":
            view.backoffs += 1
        elif kind == "worker-retired":
            view.retired += 1
        elif kind == "checkpoint":
            view.checkpoint = event.get("reason")
        elif kind == "campaign-finished":
            view.finished = True
            view.quarantined = event.get("quarantined", 0)
            counts = event.get("counts") or {}
            for outcome, count in counts.items():
                view.outcomes[outcome] = max(
                    view.outcomes.get(outcome, 0), count)
            view.completed = max(view.completed,
                                 sum(view.outcomes.values()))
    return views


def unit_progress(units):
    """Split schema-v8 unit markers into progress facts.

    Returns ``(in_flight, done, total, first_ts, last_ts)`` where
    *in_flight* is the ordered list of ``started`` markers with no
    completion marker yet.
    """
    started = {}
    done = 0
    total = None
    first_ts = last_ts = None
    for marker in units:
        ts = marker.get("ts")
        if ts is not None:
            first_ts = ts if first_ts is None else min(first_ts, ts)
            last_ts = ts if last_ts is None else max(last_ts, ts)
        if marker.get("total") is not None:
            total = marker["total"]
        unit = marker.get("unit")
        if marker.get("status") == "started":
            started.setdefault(unit, marker)
        else:
            started.pop(unit, None)
            done += 1
    return list(started.values()), done, total, first_ts, last_ts


def view_from_journals(journal):
    """Rebuild a :class:`CampaignView` offline from a journal base
    path and its ``.shardK`` files (``repro top <journal>`` mode).

    Raises :class:`FileNotFoundError` when neither the base journal
    nor any shard exists.
    """
    import os
    from ..injection.parallel import discover_shard_journals
    from ..injection.runner import CampaignJournal, JournalError
    paths = [journal] if os.path.exists(journal) else []
    paths += discover_shard_journals(journal)
    if not paths:
        raise FileNotFoundError("no journal at %s (or %s.shard*)"
                                % (journal, journal))
    view = CampaignView(None)
    base_units = []
    shard_units = []
    for path in paths:
        try:
            meta, results, quarantined, report = \
                CampaignJournal.load_with_report(path, strict=False)
        except JournalError:
            continue
        for record in results.values():
            outcome = record.get("outcome")
            view.outcomes[outcome] = view.outcomes.get(outcome, 0) + 1
        view.quarantined += len(quarantined)
        # Fleet runs mark every unit twice: the parent appends
        # started/done markers to the base journal and the worker
        # marks its own shard file.  The base markers carry the
        # campaign-level status/total, so they win when present.
        (base_units if path == journal else shard_units).extend(
            report.units)
        label = os.path.basename(path)
        if results or path != journal:
            view.shards[label] = len(results)
        if meta is not None and view.campaign is None:
            view.campaign = "%s %s" % (meta.get("daemon"),
                                       meta.get("client"))
    units = base_units if base_units else shard_units
    view.completed = sum(view.outcomes.values())
    in_flight, done, total, first_ts, last_ts = unit_progress(units)
    for marker in in_flight:
        view.in_flight[marker.get("unit")] = None
    view.units_done = done
    if total is not None:
        view.points = total
    view.first_ts = first_ts
    view.last_ts = last_ts
    if (view.points is not None and view.completed >= view.points
            and not view.in_flight):
        view.finished = True
    return view


# ----------------------------------------------------------------------
# Rendering

def _bar(fraction, width=30):
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(fraction * width))
    return "[%s%s]" % ("#" * filled, "." * (width - filled))


def format_eta(seconds):
    if seconds is None:
        return "--"
    seconds = int(round(seconds))
    if seconds >= 3600:
        return "%dh%02dm" % (seconds // 3600, (seconds % 3600) // 60)
    if seconds >= 60:
        return "%dm%02ds" % (seconds // 60, seconds % 60)
    return "%ds" % seconds


def render_view(view, now=None):
    """One campaign's lines of the frame (no trailing newline)."""
    now = time.time() if now is None else now
    lines = []
    title = view.campaign if view.campaign is not None else "campaign"
    state = ("done" if view.finished
             else "checkpointed (%s)" % view.checkpoint
             if view.checkpoint else "running")
    lines.append("%s  --  %s" % (title, state))
    if view.points:
        fraction = view.completed / view.points
        lines.append("  %s %5.1f%%  %d/%d experiments"
                     % (_bar(fraction), 100.0 * fraction,
                        view.completed, view.points))
    else:
        lines.append("  %d experiment(s) completed" % view.completed)
    tallies = ["%s %d" % (outcome, view.outcomes[outcome])
               for outcome in OUTCOME_ORDER
               if outcome in view.outcomes]
    tallies += ["%s %d" % (outcome, count)
                for outcome, count in sorted(view.outcomes.items())
                if outcome not in OUTCOME_ORDER]
    if tallies:
        line = "  outcomes: " + "  ".join(tallies)
        if view.quarantined:
            line += "  (quarantined %d)" % view.quarantined
        lines.append(line)
    rate = view.rate
    if not view.finished:
        lines.append("  rate: %s  eta: %s"
                     % ("%.1f/s" % rate if rate else "--",
                        format_eta(view.eta_seconds())))
    if view.shards:
        parts = ["%s:%d" % (label, count)
                 for label, count in sorted(view.shards.items())]
        lines.append("  shards: " + "  ".join(parts))
    if view.per_worker:
        parts = ["w%s:%d" % (worker, count)
                 for worker, count in sorted(view.per_worker.items(),
                                             key=lambda kv:
                                             str(kv[0]))]
        lines.append("  units: %d done via " % view.units_done
                     + "  ".join(parts))
    elif view.units_done or view.in_flight:
        lines.append("  units: %d done" % view.units_done)
    if view.in_flight:
        shown = list(view.in_flight)[:6]
        more = len(view.in_flight) - len(shown)
        lines.append("  in flight: " + ", ".join(
            str(unit) for unit in shown)
            + (" (+%d more)" % more if more else ""))
    health = []
    if view.respawns:
        health.append("%d respawn(s)" % view.respawns)
    if view.backoffs:
        health.append("%d backoff(s)" % view.backoffs)
    if view.retired:
        health.append("%d retired" % view.retired)
    if health:
        lines.append("  workers: " + ", ".join(health))
    return "\n".join(lines)


def render_top(views, now=None, clock=None):
    """One full frame for ``repro top``: a header plus one block per
    campaign, ordered by campaign id."""
    now = time.time() if now is None else now
    stamp = (time.strftime("%H:%M:%S", time.localtime(now))
             if clock is None else clock)
    header = "repro top  --  %d campaign(s)  --  %s" % (len(views),
                                                        stamp)
    blocks = [header, "=" * len(header)]
    for cid in sorted(views, key=str):
        blocks.append(render_view(views[cid], now=now))
    return "\n\n".join(blocks)
