"""Unified campaign metrics registry.

One JSON-serializable registry holds every number a campaign
produces: outcome tallies, the crash-latency distribution,
quarantine/retry counts, the execution engine's
:class:`~repro.emu.perf.PerfCounters` and wall-clock throughput.
Three instrument kinds cover them all --

``counter``
    monotonically increasing integer (``experiments``,
    ``outcome.SD``, ``engine.prepared_hits``);
``gauge``
    last-written value with an explicit merge policy
    (``points``, ``wall_clock_seconds``);
``histogram``
    fixed-bucket distribution (``crash_latency`` in power-of-two
    instruction buckets, mirroring Figure 4's axis).

Registries merge exactly through :meth:`MetricsRegistry.absorb_dict`
-- the same pattern :meth:`repro.emu.perf.PerfCounters.absorb_dict`
established for shard timing payloads -- so a parallel campaign's
shard registries aggregate to precisely the serial registry.

Every instrument is either *deterministic* (a pure function of the
experiment list: identical for any worker count or resume history) or
*volatile* (operational measurements -- wall clock, engine counters,
session/golden-run counts -- that legitimately vary between runs: a
parallel campaign performs one golden run per shard plus the
parent's).  ``as_dict(include_volatile=False)`` is the comparable
core; CI asserts it is identical for ``--workers 1`` and
``--workers 3``.
"""

from __future__ import annotations

import json

#: crash-latency buckets: powers of two from 1 to 2^20 instructions
#: (Figure 4's >16k transient window sits in the top decades).
LATENCY_BUCKET_BOUNDS = tuple(2 ** exp for exp in range(21))

#: gauge merge policies accepted by :class:`Gauge`.
GAUGE_MERGES = ("last", "sum", "min", "max")


class Counter:
    """Monotonic integer instrument."""

    __slots__ = ("name", "value", "volatile")

    def __init__(self, name, volatile=False):
        self.name = name
        self.value = 0
        self.volatile = volatile

    def inc(self, amount=1):
        self.value += amount


class Gauge:
    """Set-valued instrument with a merge policy for shard payloads."""

    __slots__ = ("name", "value", "volatile", "merge")

    def __init__(self, name, volatile=False, merge="last"):
        if merge not in GAUGE_MERGES:
            raise ValueError("unknown gauge merge %r" % merge)
        self.name = name
        self.value = None
        self.volatile = volatile
        self.merge = merge

    def set(self, value):
        self.value = value

    def absorb(self, value):
        if self.value is None or self.merge == "last":
            self.value = value
        elif self.merge == "sum":
            self.value += value
        elif self.merge == "min":
            self.value = min(self.value, value)
        else:
            self.value = max(self.value, value)


class Histogram:
    """Fixed-bucket distribution.

    ``bounds`` are inclusive upper bucket edges; one overflow bucket
    catches everything beyond the last edge, so ``counts`` has
    ``len(bounds) + 1`` entries and two histograms with equal bounds
    merge by element-wise addition (exactness is what lets shard
    registries aggregate to the serial registry).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "low", "high", "volatile")

    def __init__(self, name, bounds=LATENCY_BUCKET_BOUNDS,
                 volatile=False):
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.low = None
        self.high = None
        self.volatile = volatile

    def observe(self, value):
        index = len(self.bounds)
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                index = position
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value
        self.low = value if self.low is None else min(self.low, value)
        self.high = value if self.high is None else max(self.high,
                                                        value)

    def as_dict(self):
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "count": self.count, "sum": self.total,
                "min": self.low, "max": self.high}

    def absorb(self, record):
        if tuple(record["bounds"]) != self.bounds:
            raise ValueError(
                "histogram %r bucket bounds disagree: %r vs %r"
                % (self.name, record["bounds"], list(self.bounds)))
        for index, count in enumerate(record["counts"]):
            self.counts[index] += count
        self.count += record["count"]
        self.total += record["sum"]
        if record["min"] is not None:
            self.low = (record["min"] if self.low is None
                        else min(self.low, record["min"]))
        if record["max"] is not None:
            self.high = (record["max"] if self.high is None
                         else max(self.high, record["max"]))


def record_supervision_metrics(registry, events):
    """Fold a supervision run's event counts (respawns, wedge kills,
    degraded transitions, checkpoints; see
    :data:`repro.injection.supervisor.EVENT_NAMES`) into *registry* as
    ``supervisor.<event>`` counters.  Volatile by definition: they
    measure the run's failure history, not the campaign spec -- a
    chaos-recovered campaign and an undisturbed one still agree on the
    deterministic core."""
    for name in sorted(events or {}):
        registry.counter("supervisor.%s" % name,
                         volatile=True).inc(events[name])
    return registry


class MetricsRegistry:
    """Named instruments with exact, JSON-round-trippable merging."""

    SCHEMA = 1

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # -- instrument access (get-or-create) -----------------------------

    def counter(self, name, volatile=False):
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name, volatile)
        return instrument

    def gauge(self, name, volatile=False, merge="last"):
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name, volatile,
                                                    merge)
        return instrument

    def histogram(self, name, bounds=LATENCY_BUCKET_BOUNDS,
                  volatile=False):
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, bounds, volatile)
        return instrument

    # -- serialization -------------------------------------------------

    def as_dict(self, include_volatile=True):
        """Plain-data snapshot.

        Deterministic instruments live at the top level; volatile ones
        under ``"volatile"`` so consumers comparing runs can strip
        them with one ``pop``.  Unset gauges are omitted.
        """

        def section(volatile):
            return {
                "counters": {c.name: c.value
                             for c in self._counters.values()
                             if c.volatile == volatile},
                "gauges": {g.name: g.value
                           for g in self._gauges.values()
                           if g.volatile == volatile
                           and g.value is not None},
                "histograms": {h.name: h.as_dict()
                               for h in self._histograms.values()
                               if h.volatile == volatile},
            }

        payload = {"schema": self.SCHEMA, **section(False)}
        if include_volatile:
            payload["volatile"] = section(True)
        return payload

    def absorb_dict(self, record):
        """Merge a serialized registry into this one.

        Counters and histogram buckets add; gauges follow their merge
        policy (instruments absent from this registry are created with
        the serialized section's volatility and a ``last`` gauge
        policy).  The merge is exact: absorbing every shard registry
        of a parallel campaign reproduces the serial campaign's
        deterministic section bit for bit.
        """
        if not record:
            return self
        self._absorb_section(record, volatile=False)
        self._absorb_section(record.get("volatile") or {},
                             volatile=True)
        return self

    def _absorb_section(self, section, volatile):
        for name, value in (section.get("counters") or {}).items():
            self.counter(name, volatile=volatile).inc(value)
        for name, value in (section.get("gauges") or {}).items():
            self.gauge(name, volatile=volatile).absorb(value)
        for name, payload in (section.get("histograms") or {}).items():
            self.histogram(name, bounds=payload["bounds"],
                           volatile=volatile).absorb(payload)

    def save(self, path):
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")

    def __repr__(self):
        return ("MetricsRegistry(%d counters, %d gauges, "
                "%d histograms)" % (len(self._counters),
                                    len(self._gauges),
                                    len(self._histograms)))
