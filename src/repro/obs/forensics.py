"""Per-experiment crash forensics.

When an injection ends in SD (a crash), HANG or a harness fault, the
outcome code alone says nothing about *what the faulty run did*; this
module captures, at negligible cost, enough state to reconstruct the
final moments:

* the CPU's **forensic ring** -- the last N executed EIPs, fed by the
  fast path at basic-block granularity (one append of the block's
  already-built address tuple per superstep, truncated to the faulting
  op on a mid-block fault), so enabling it slows campaigns by a few
  percent and disabling it costs exactly nothing;
* a **register/flags snapshot** at capture time, with the ring
  entries decoded to mnemonics through the (warm) decode cache;
* the **divergence locator** -- :func:`first_divergence` diffs an
  EIP stream against the golden run's; the ``forensics`` CLI command
  replays a journaled point through
  :func:`repro.analysis.propagation.analyze_propagation` to report
  the first instruction where the faulty run departed.

The captured snapshot is a plain JSON-able dict stored on
``InjectionResult.forensics`` and journaled (schema v6); it never
participates in any tally, so tables are byte-identical with
forensics on or off.
"""

from __future__ import annotations

from ..x86.flags import FLAG_NAMES
from ..x86.registers import REG32_NAMES
from .ring import RingBuffer

#: ring entries retained on the CPU.  Entries are whole basic blocks
#: (address tuples) or single EIPs, so this comfortably covers the
#: instruction window below.
RING_CAPACITY = 64

#: instructions rendered into a snapshot (the "last N" of the record).
SNAPSHOT_INSTRUCTIONS = 16

#: EFLAGS bits rendered into the snapshot's ``flags`` string, in
#: conventional display order.
_FLAG_ORDER = tuple(sorted(FLAG_NAMES, reverse=True))


def make_forensic_ring(capacity=RING_CAPACITY):
    """A ring suitable for ``cpu.forensic_ring``."""
    return RingBuffer(capacity)


def flatten_ring(ring, last_n=SNAPSHOT_INSTRUCTIONS):
    """The last *last_n* executed EIPs from a forensic ring whose
    entries are single EIPs (step path) or address tuples (superstep
    path)."""
    eips = []
    for entry in ring:
        if isinstance(entry, int):
            eips.append(entry)
        else:
            eips.extend(entry)
    return eips[-last_n:]


def _decode_entry(cpu, eip):
    """Best-effort raw bytes + disassembly for the snapshot; the ring
    EIPs were just executed, so the decode cache is warm and failures
    only occur when the faulting fetch itself was undecodable."""
    try:
        instruction = cpu.fetch_decode(eip)
    except Exception:
        return {"eip": eip, "raw": None, "disasm": "(bad)"}
    return {"eip": eip, "raw": instruction.raw.hex(),
            "disasm": str(instruction)}


def format_flags(eflags):
    """Mnemonic rendering of the set EFLAGS bits, e.g. ``"IF SF"``."""
    names = [FLAG_NAMES[bit] for bit in _FLAG_ORDER if eflags & bit]
    return " ".join(names)


def capture_forensics(cpu, last_n=SNAPSHOT_INSTRUCTIONS):
    """Snapshot the CPU for a journal record.

    Safe to call from any failure path: with no ring attached the
    record still carries registers, flags and the final EIP.  Reading
    ``cpu.eflags`` materialises a pending lazy-flags record, which is
    the architecturally correct value at capture time.
    """
    eflags = cpu.eflags
    record = {
        "instret": cpu.instret,
        "eip": cpu.eip,
        "regs": {name: cpu.regs[index]
                 for index, name in enumerate(REG32_NAMES)},
        "eflags": eflags,
        "flags": format_flags(eflags),
    }
    ring = getattr(cpu, "forensic_ring", None)
    if ring is not None:
        record["ring"] = [_decode_entry(cpu, eip)
                          for eip in flatten_ring(ring, last_n)]
    return record


def first_divergence(golden_eips, eips):
    """Index of the first position where two EIP streams differ.

    A strict prefix counts as diverging at the shorter stream's end
    (one run kept executing where the other stopped); identical
    streams return ``None``.  This is the pure diff both the
    propagation analyzer and the ``forensics`` CLI replay share.
    """
    limit = min(len(golden_eips), len(eips))
    for index in range(limit):
        if eips[index] != golden_eips[index]:
            return index
    if len(eips) != len(golden_eips):
        return limit
    return None


def format_forensics_record(record, indent="  "):
    """Human-readable rendering of a captured snapshot."""
    lines = []
    lines.append("%sfinal state: eip=0x%x instret=%d"
                 % (indent, record["eip"], record["instret"]))
    regs = record["regs"]
    lines.append(indent + " ".join(
        "%s=0x%x" % (name, regs[name]) for name in REG32_NAMES[:4]))
    lines.append(indent + " ".join(
        "%s=0x%x" % (name, regs[name]) for name in REG32_NAMES[4:]))
    lines.append("%seflags=0x%x [%s]" % (indent, record["eflags"],
                                         record["flags"]))
    ring = record.get("ring")
    if ring:
        lines.append("%slast %d instruction(s):" % (indent, len(ring)))
        for entry in ring:
            raw = entry["raw"] or "??"
            lines.append("%s  %08x: %-16s %s"
                         % (indent, entry["eip"], raw,
                            entry["disasm"]))
    return "\n".join(lines)
