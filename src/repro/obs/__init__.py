"""Campaign observability: span tracing, metrics, crash forensics.

The paper's claims are observations of *error propagation* -- crash
latency, activation vs. manifestation, which branch flips open the
BRK window -- so the pipeline needs a measurement layer of its own:

* :mod:`repro.obs.trace` -- Chrome-trace-event/Perfetto-compatible
  span tracing for campaign / shard / experiment / golden run /
  injection / client session / watchdog probe;
* :mod:`repro.obs.metrics` -- one mergeable registry of counters,
  gauges and fixed-bucket histograms unifying outcome tallies, the
  crash-latency distribution, quarantine/retry counts, the execution
  engine's :class:`~repro.emu.perf.PerfCounters` and per-shard
  throughput;
* :mod:`repro.obs.events` -- the live telemetry plane: a bounded,
  per-campaign-sequenced :class:`~repro.obs.events.EventBus` the
  service streams to ``subscribe`` clients and ``repro top`` renders;
* :mod:`repro.obs.sampler` -- a deterministic (instruction-count)
  sampling profiler attributing retired guest instructions to the
  compiled program's functions and host wall clock to engine phases;
* :mod:`repro.obs.forensics` -- last-N-instruction ring buffer plus
  register/flags snapshot captured when a run crashes or hangs, and
  the golden-trace divergence locator;
* :mod:`repro.obs.ring` -- the bounded-buffer / trace-recorder
  primitives the above (and :mod:`repro.analysis.propagation`) share;
* :mod:`repro.obs.log` -- the ``logging``-based campaign reporter.

Everything here is stdlib-only and observational: with no sink, ring,
bus or sampler attached, campaigns execute the exact same instruction
stream and produce byte-identical tables.
"""

from __future__ import annotations

from .events import (check_contiguous, EventBus, load_event_stream,
                     merge_event_streams)
from .forensics import (capture_forensics, first_divergence,
                        format_forensics_record)
from .log import (configure_logging, get_logger, ProgressReporter,
                  warn_once)
from .metrics import MetricsRegistry
from .ring import RingBuffer, TraceRecorder
from .sampler import (hotspot_table, load_profile, Sampler,
                      write_collapsed)
from .top import fold_events, render_top, view_from_journals
from .trace import merge_trace_files, NULL_TRACER, Tracer

__all__ = [
    "capture_forensics",
    "check_contiguous",
    "configure_logging",
    "EventBus",
    "first_divergence",
    "fold_events",
    "format_forensics_record",
    "get_logger",
    "hotspot_table",
    "load_event_stream",
    "load_profile",
    "merge_event_streams",
    "merge_trace_files",
    "MetricsRegistry",
    "NULL_TRACER",
    "ProgressReporter",
    "render_top",
    "RingBuffer",
    "Sampler",
    "view_from_journals",
    "TraceRecorder",
    "Tracer",
    "warn_once",
]
