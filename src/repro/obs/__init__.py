"""Campaign observability: span tracing, metrics, crash forensics.

The paper's claims are observations of *error propagation* -- crash
latency, activation vs. manifestation, which branch flips open the
BRK window -- so the pipeline needs a measurement layer of its own:

* :mod:`repro.obs.trace` -- Chrome-trace-event/Perfetto-compatible
  span tracing for campaign / shard / experiment / golden run /
  injection / client session / watchdog probe;
* :mod:`repro.obs.metrics` -- one mergeable registry of counters,
  gauges and fixed-bucket histograms unifying outcome tallies, the
  crash-latency distribution, quarantine/retry counts, the execution
  engine's :class:`~repro.emu.perf.PerfCounters` and per-shard
  throughput;
* :mod:`repro.obs.forensics` -- last-N-instruction ring buffer plus
  register/flags snapshot captured when a run crashes or hangs, and
  the golden-trace divergence locator;
* :mod:`repro.obs.ring` -- the bounded-buffer / trace-recorder
  primitives the above (and :mod:`repro.analysis.propagation`) share;
* :mod:`repro.obs.log` -- the ``logging``-based campaign reporter.

Everything here is stdlib-only and observational: with no sink or
ring attached, campaigns execute the exact same instruction stream
and produce byte-identical tables.
"""

from __future__ import annotations

from .forensics import (capture_forensics, first_divergence,
                        format_forensics_record)
from .log import (configure_logging, get_logger, ProgressReporter,
                  warn_once)
from .metrics import MetricsRegistry
from .ring import RingBuffer, TraceRecorder
from .trace import merge_trace_files, NULL_TRACER, Tracer

__all__ = [
    "capture_forensics",
    "configure_logging",
    "first_divergence",
    "format_forensics_record",
    "get_logger",
    "merge_trace_files",
    "MetricsRegistry",
    "NULL_TRACER",
    "ProgressReporter",
    "RingBuffer",
    "TraceRecorder",
    "Tracer",
    "warn_once",
]
