"""Chrome-trace-event span tracing for campaigns.

A :class:`Tracer` records where campaign wall clock goes as *spans*
in the Chrome trace event format (the JSON ``traceEvents`` array that
``chrome://tracing`` and Perfetto load directly): complete events
(``"ph": "X"``) carrying microsecond start/duration, a
``pid``/``tid`` track, and an ``args`` attribute bag.

Span taxonomy (nesting by temporal containment within a track)::

    campaign                      the whole run (serial parent)
      golden-run                  reference execution
      experiment                  one injection point
        client-session            BreakpointSession build (prefix run)
        injection                 flip + run-to-completion
    shard                         one worker's slice (tid = shard+1)
      ...same children...
    watchdog-probe                post-budget tight-loop probe

With a ``sink`` path the tracer keeps every event and
:meth:`close` writes the file; with no sink it degrades to a bounded
in-memory ring (the newest :data:`TRACE_RING_EVENTS` events) that
library users can inspect programmatically, so always-on tracing
cannot grow without bound.

Timestamps come from ``time.monotonic_ns()``, which on Linux is
shared across forked worker processes, so shard spans land on the
same timeline as the parent's and merging is pure concatenation
(:func:`merge_trace_files`, shard files in enumeration order, like
journals).
"""

from __future__ import annotations

import json
import time

from .log import warn_once
from .ring import RingBuffer

#: in-memory mode keeps this many most-recent events.
TRACE_RING_EVENTS = 4096


def _now_us():
    return time.monotonic_ns() // 1000


class Span:
    """Handle yielded by :meth:`Tracer.span`; attributes set on it
    (outcome, instret, ...) become the event's ``args``."""

    __slots__ = ("args",)

    def __init__(self, args):
        self.args = args

    def set(self, key, value):
        self.args[key] = value


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_cat", "_span", "_start")

    def __init__(self, tracer, name, cat, args):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._span = Span(args)
        self._start = None

    def __enter__(self):
        self._start = self._tracer._clock()
        return self._span

    def __exit__(self, exc_type, exc, tb):
        tracer = self._tracer
        end = tracer._clock()
        tracer._emit({
            "name": self._name,
            "cat": self._cat,
            "ph": "X",
            "ts": self._start,
            "dur": max(0, end - self._start),
            "pid": tracer.pid,
            "tid": tracer.tid,
            "args": self._span.args,
        })
        return False


class Tracer:
    """Span recorder for one process (campaign parent or shard worker).

    ``sink`` is the JSON file :meth:`close` writes (``None`` = bounded
    in-memory ring only).  ``tid`` labels the track: 0 for the serial
    runner / parallel parent, ``shard + 1`` for workers.  ``clock`` is
    injectable for tests (defaults to monotonic microseconds).
    """

    def __init__(self, sink=None, pid=1, tid=0,
                 ring_capacity=TRACE_RING_EVENTS, clock=None):
        self.sink = str(sink) if sink is not None else None
        self.pid = pid
        self.tid = tid
        self._clock = clock if clock is not None else _now_us
        self._events = ([] if self.sink is not None
                        else RingBuffer(ring_capacity))
        self._ring = (self._events if self.sink is None else None)
        #: spans the in-memory ring silently evicted (sink mode never
        #: drops).  Folded into the ``trace.spans_dropped`` volatile
        #: metric at campaign finalize; the first drop warns once so
        #: a truncated ring is never mistaken for a complete trace.
        self.spans_dropped = 0

    def span(self, name, cat="campaign", **attrs):
        """Context manager timing one span; yields a :class:`Span`
        whose :meth:`~Span.set` adds attributes mid-flight."""
        return _SpanContext(self, name, cat, dict(attrs))

    def instant(self, name, cat="campaign", **attrs):
        """Zero-duration marker event."""
        self._emit({"name": name, "cat": cat, "ph": "i",
                    "ts": self._clock(), "pid": self.pid,
                    "tid": self.tid, "s": "t", "args": dict(attrs)})

    def _emit(self, event):
        ring = self._ring
        if (ring is not None and ring.capacity is not None
                and len(ring) == ring.capacity):
            self.spans_dropped += 1
            if self.spans_dropped == 1:
                warn_once(
                    "trace-ring-drop",
                    "in-memory span ring full (capacity %d): oldest "
                    "spans are being dropped; pass a trace sink path "
                    "to keep them all", ring.capacity)
        self._events.append(event)

    def events(self):
        """Recorded events, oldest first."""
        if isinstance(self._events, RingBuffer):
            return self._events.snapshot()
        return list(self._events)

    def save(self, path=None):
        """Write the Chrome trace JSON object to *path* (default: the
        sink given at construction)."""
        target = path if path is not None else self.sink
        if target is None:
            raise ValueError("tracer has no sink; pass a path")
        write_trace_file(target, self.events())

    def close(self):
        """Flush to the sink, if one was given.  Idempotent."""
        if self.sink is not None:
            self.save(self.sink)


class _NullSpan:
    __slots__ = ()

    def set(self, key, value):
        pass


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb):
        return False


class NullTracer:
    """No-op tracer: call sites thread spans unconditionally and pay
    one attribute lookup when tracing is off."""

    sink = None
    pid = 1
    tid = 0
    spans_dropped = 0

    def span(self, name, cat="campaign", **attrs):
        return _NULL_SPAN_CONTEXT

    def instant(self, name, cat="campaign", **attrs):
        pass

    def events(self):
        return []

    def save(self, path=None):
        pass

    def close(self):
        pass


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()
NULL_TRACER = NullTracer()


def as_tracer(trace, tid=0):
    """Coerce a user-facing ``trace`` argument -- ``None``, a sink
    path, or a :class:`Tracer` -- into a tracer object."""
    if trace is None:
        return NULL_TRACER
    if isinstance(trace, (Tracer, NullTracer)):
        return trace
    return Tracer(sink=trace, tid=tid)


def shard_trace_path(trace, shard):
    """Per-worker sink path, mirroring the journal's ``.shardK``
    naming."""
    return "%s.shard%d" % (trace, shard)


def write_trace_file(path, events):
    """Write *events* as a Chrome trace JSON object."""
    with open(path, "w") as handle:
        json.dump({"traceEvents": list(events),
                   "displayTimeUnit": "ms"}, handle)
        handle.write("\n")


def load_trace_file(path):
    """Events of a file written by :func:`write_trace_file` (the bare
    ``[...]`` array form is accepted too)."""
    with open(path) as handle:
        payload = json.load(handle)
    if isinstance(payload, list):
        return payload
    return payload["traceEvents"]


def merge_trace_files(out_path, parent_events, shard_paths):
    """Combine the parent's events with each shard file's events, in
    shard-enumeration order, into one loadable trace file.

    Monotonic timestamps are shared across forked workers, so a plain
    concatenation preserves temporal containment: every shard span
    falls inside the parent's campaign span.
    """
    events = list(parent_events)
    for path in shard_paths:
        try:
            events.extend(load_trace_file(path))
        except FileNotFoundError:
            continue
        except ValueError:
            # A worker killed mid-save (chaos, SIGKILL of a wedged
            # shard) can leave a torn sink; the merged trace must
            # still load.  json.JSONDecodeError subclasses ValueError.
            continue
    write_trace_file(out_path, events)
    return events
