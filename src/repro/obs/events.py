"""Typed campaign event bus: the live telemetry plane.

A :class:`EventBus` turns the engine's internal milestones -- unit
started/finished, outcome-tally deltas, worker respawn/backoff,
checkpoint, golden reuse -- into a bounded, subscribable stream of
typed events.  It is the push counterpart of the pull-only artifacts
PR 5 introduced (trace files, metrics dumps): the service streams it
to ``subscribe`` clients and ``repro top`` renders it live.

Design constraints, in order:

* **zero overhead when off** -- nothing in the engine constructs a
  bus by default; every emit site is guarded by ``if bus is not
  None`` (one attribute test, the same discipline as the forensic
  ring and the sampler);
* **deterministic modulo timestamps** -- events carry a per-campaign
  ``seq`` assigned at emit time in the *parent* process.  Workers do
  not emit events directly: their unit completions ride the existing
  pipe-per-incarnation messages and the parent emits on receipt, so
  one process owns the ordering and subscriber streams are gap-free
  per campaign (``seq`` is contiguous from 0);
* **bounded** -- the retained history is a ring (newest
  :data:`EVENT_RING_CAPACITY` events); live subscribers see every
  event regardless of the ring, and :attr:`dropped` counts what the
  ring let go;
* **mergeable** -- :func:`merge_event_streams` interleaves several
  buses' histories into one deterministic stream (campaign, seq)
  for offline analysis.

Event wire shape (one JSON-able dict per event)::

    {"seq": 17, "type": "unit-finished", "campaign": "c0000",
     "ts": 1723108712.41, ...payload...}

``ts`` is wall clock and explicitly *volatile*: every consumer that
feeds the deterministic metrics core must ignore it.  The schema
table lives in DESIGN.md section 17.
"""

from __future__ import annotations

import json
import time

from .ring import RingBuffer

#: bounded history: the newest this-many events are retained.
EVENT_RING_CAPACITY = 4096

#: the closed set of event types (DESIGN.md section 17 documents the
#: payload of each).  Emitting an unknown type is a programming error
#: caught eagerly, so the wire format cannot drift silently.
EVENT_TYPES = frozenset((
    "campaign-started",     # points, units, warm
    "golden",               # reused: bool
    "unit-started",         # unit, worker
    "unit-finished",        # unit, worker, completed, total
    "outcomes",             # delta: {outcome: count} for one batch
    "worker-respawn",       # worker, incarnation
    "worker-backoff",       # worker, restarts, delay
    "worker-retired",       # worker, restarts
    "checkpoint",           # reason, completed
    "campaign-finished",    # counts, quarantined
))


class EventBus:
    """Bounded, subscribable, per-campaign-sequenced event stream.

    Thread-safety contract: all emits happen on one thread (the fleet
    dispatcher or the serial runner); subscribers may be registered
    from other threads (list append/remove is atomic under the GIL)
    and their callbacks run on the emitting thread -- the service
    bridges to asyncio with ``call_soon_threadsafe``.
    """

    def __init__(self, capacity=EVENT_RING_CAPACITY, clock=None):
        self._ring = RingBuffer(capacity)
        self._seqs = {}           # campaign id -> next seq
        self._subscribers = []
        self._clock = clock if clock is not None else time.time
        self.dropped = 0
        self.emitted = 0

    # -- emitting ------------------------------------------------------

    def emit(self, type, campaign=None, **payload):
        """Record one event and fan it out to subscribers."""
        if type not in EVENT_TYPES:
            raise ValueError("unknown event type %r" % type)
        seq = self._seqs.get(campaign, 0)
        self._seqs[campaign] = seq + 1
        event = {"seq": seq, "type": type, "campaign": campaign,
                 "ts": self._clock()}
        event.update(payload)
        ring = self._ring
        if ring.capacity is not None and len(ring) == ring.capacity:
            self.dropped += 1
        ring.append(event)
        self.emitted += 1
        for callback in list(self._subscribers):
            callback(event)
        return event

    def emit_outcomes(self, campaign, records):
        """Tally the outcomes of a completed record batch into one
        ``outcomes`` delta event (no event when the batch is empty)."""
        if not records:
            return None
        delta = {}
        for record in records:
            outcome = (record.get("outcome")
                       if isinstance(record, dict)
                       else record.outcome)
            delta[outcome] = delta.get(outcome, 0) + 1
        return self.emit("outcomes", campaign=campaign,
                         delta=dict(sorted(delta.items())))

    # -- subscribing ---------------------------------------------------

    def subscribe(self, callback):
        """Register ``callback(event_dict)``; returns an unsubscribe
        callable."""
        self._subscribers.append(callback)

        def unsubscribe():
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass
        return unsubscribe

    # -- history -------------------------------------------------------

    def events(self):
        """Retained events, oldest first."""
        return self._ring.snapshot()

    def save(self, path):
        """Write the retained history as JSONL (one event per line)."""
        with open(path, "w") as handle:
            for event in self.events():
                handle.write(json.dumps(event) + "\n")

    def __len__(self):
        return len(self._ring)


def load_event_stream(path):
    """Events from a file written by :meth:`EventBus.save`."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def merge_event_streams(*streams):
    """Interleave several event histories into one deterministic
    stream ordered by ``(campaign, seq)`` -- timestamps do not
    participate, so the merge is stable across runs."""
    merged = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=lambda event: (event.get("campaign") or "",
                                   event.get("seq", 0)))
    return merged


def check_contiguous(events):
    """Per-campaign gap check: returns a list of human-readable
    problems (empty when every campaign's ``seq`` runs 0..N-1 with no
    gaps or duplicates) -- the service gate's core assertion."""
    problems = []
    by_campaign = {}
    for event in events:
        by_campaign.setdefault(event.get("campaign"), []).append(
            event.get("seq"))
    for campaign, seqs in sorted(by_campaign.items(),
                                 key=lambda item: str(item[0])):
        expected = list(range(len(seqs)))
        if sorted(seqs) != expected:
            problems.append(
                "campaign %s: sequence gap or duplicate (%d event(s),"
                " seqs %r...)" % (campaign, len(seqs),
                                  sorted(seqs)[:10]))
    return problems
