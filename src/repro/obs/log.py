"""``logging``-based campaign reporting.

Campaign progress and harness warnings used to go through ad-hoc
writes to whatever stream the CLI held; routing them through a
``repro``-rooted :mod:`logging` hierarchy lets library users silence,
redirect or capture campaign output with stock logging configuration,
and gives the CLI ``--verbose`` / ``--quiet`` for free.

Nothing here installs a handler at import time: a library that embeds
:mod:`repro` keeps full control.  The CLI calls
:func:`configure_logging` once per invocation.
"""

from __future__ import annotations

import logging
import sys

#: root of the package's logger hierarchy.
LOGGER_NAME = "repro"

#: warn-once registry (see :func:`warn_once`).
_WARNED = set()


def get_logger(child=None):
    """The package logger, or a dotted child of it."""
    name = LOGGER_NAME if not child else "%s.%s" % (LOGGER_NAME, child)
    return logging.getLogger(name)


def configure_logging(verbosity=0, stream=None):
    """Install (or replace) the CLI's handler on the ``repro`` logger.

    ``verbosity`` follows the usual CLI convention: negative is quiet
    (warnings only), zero the default (progress and summaries), and
    positive verbose (per-component debug detail).  Idempotent --
    calling it again rebinds the single managed handler, so tests and
    repeated ``main()`` calls never stack handlers.
    """
    logger = get_logger()
    if verbosity < 0:
        level = logging.WARNING
    elif verbosity == 0:
        level = logging.INFO
    else:
        level = logging.DEBUG
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.set_name("repro-cli")
    handler.setFormatter(logging.Formatter("%(message)s"))
    for existing in list(logger.handlers):
        if existing.get_name() == "repro-cli":
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger


def warn_once(key, message, *args, logger=None):
    """Log *message* at WARNING level, once per *key* per process.

    Used for data-shape complaints that would otherwise repeat for
    every record of a campaign (e.g. an unknown counter key in a
    shard's perf payload).
    """
    if key in _WARNED:
        return False
    _WARNED.add(key)
    (logger if logger is not None else get_logger()).warning(
        message, *args)
    return True


def reset_warn_once():
    """Forget warn-once history (test isolation)."""
    _WARNED.clear()


class ProgressReporter:
    """Progress callback logging ``done / total`` lines.

    Drop-in for the ``progress`` argument of
    :func:`repro.injection.campaign.run_campaign`: emits an INFO line
    every *step* completed experiments and at completion, through the
    ``repro.campaign`` logger so ``--quiet`` (or any logging config)
    can silence it.
    """

    def __init__(self, step=250, logger=None):
        self.step = step
        self.logger = (logger if logger is not None
                       else get_logger("campaign"))
        self._last = 0

    def __call__(self, done, total):
        if done - self._last >= self.step or done == total:
            self._last = done
            self.logger.info("  ... %d / %d experiments", done, total)
