"""Deterministic sampling profiler for the emulator hot path.

Where does campaign time go *inside the guest*?  The trace spans of
:mod:`repro.obs.trace` attribute wall clock to host phases; this
module attributes *retired guest instructions* to guest code.  A
:class:`Sampler` attached to ``cpu.sampler`` samples the EIP every
``period`` retired instructions -- a count, not wall clock, so the
profile of a given campaign is deterministic and byte-identical
across reruns, worker counts and host load.

Zero-overhead-when-off discipline (same as the forensic ring): the
plain ``CPU.run`` fast loop never tests the sampler; attaching one
switches dispatch to a separate ``_run_sampled`` loop whose only
per-superstep cost is one integer comparison against the prebuilt
``block[3]`` address tuple.  Detached cost is exactly zero by
construction and the attached overhead is regression-gated at <= 5%
(``benchmarks/bench_emulator_speed.py::test_sampler_overhead``).

Two attributions are recorded:

* **guest samples** -- EIP hit counts, bucketed by the current
  *phase* (``golden`` / ``experiment`` -- guest code only runs in
  those) and resolved offline to the compiled program's function and
  assembly-line map (:meth:`resolve`), rendered as per-cell hotspot
  tables and a collapsed-stack file flamegraph tools accept;
* **host phases** -- wall-seconds per engine phase (``golden-run`` /
  ``restore`` / ``experiment`` / ``merge``) via
  :meth:`host_phase`, answering FastFlip's question of where the
  *analysis* time goes.  Host seconds are volatile by nature and
  never enter the deterministic metrics core.
"""

from __future__ import annotations

import json
import time

#: default sample period in retired instructions (prime, so samples
#: do not phase-lock with loop bodies).
SAMPLE_PERIOD = 997

PROFILE_SCHEMA = 1


class _HostPhase:
    __slots__ = ("_sampler", "_name", "_start")

    def __init__(self, sampler, name):
        self._sampler = sampler
        self._name = name
        self._start = None

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        elapsed = time.perf_counter() - self._start
        seconds = self._sampler.host_seconds
        seconds[self._name] = seconds.get(self._name, 0.0) + elapsed
        return False


class Sampler:
    """Instruction-count EIP sampler (attach to ``cpu.sampler``).

    ``skip`` is the number of instructions still to retire before the
    next sample: 0 means "sample the very next instruction".  The run
    loop decrements it by whole supersteps and indexes the block's
    address tuple for the sampled EIP, so cost is independent of the
    period.  The counter persists across ``run()`` slices and
    experiments, keeping the stream periodic over the whole campaign.
    """

    __slots__ = ("period", "skip", "samples", "by_phase",
                 "host_seconds")

    def __init__(self, period=SAMPLE_PERIOD):
        if period < 1:
            raise ValueError("sample period must be >= 1, got %r"
                             % period)
        self.period = period
        self.skip = period - 1
        self.by_phase = {}
        self.host_seconds = {}
        #: the current phase's eip -> count dict (what the CPU loop
        #: writes into).
        self.samples = self.by_phase.setdefault("experiment", {})

    # -- phase attribution ---------------------------------------------

    def set_phase(self, name):
        """Switch guest-sample attribution to *name* (``golden`` or
        ``experiment``)."""
        self.samples = self.by_phase.setdefault(name, {})

    def host_phase(self, name):
        """Context manager accumulating host wall-seconds for *name*
        (``golden-run`` / ``restore`` / ``experiment`` / ``merge``)."""
        return _HostPhase(self, name)

    # -- serialization --------------------------------------------------

    @property
    def total_samples(self):
        return sum(sum(counts.values())
                   for counts in self.by_phase.values())

    def as_dict(self):
        """JSON-able profile: deterministic guest samples plus
        volatile host seconds, explicitly separated."""
        return {
            "schema": PROFILE_SCHEMA,
            "period": self.period,
            "samples": {
                phase: {"0x%x" % eip: count
                        for eip, count in sorted(counts.items())}
                for phase, counts in sorted(self.by_phase.items())
                if counts},
            "volatile": {
                "host_seconds": {name: round(seconds, 6)
                                 for name, seconds
                                 in sorted(self.host_seconds.items())},
            },
        }

    def absorb_dict(self, payload):
        """Merge another sampler's :meth:`as_dict` (shard profiles
        fold into the parent's, like metrics registries)."""
        if not payload:
            return
        for phase, counts in (payload.get("samples") or {}).items():
            mine = self.by_phase.setdefault(phase, {})
            for eip_hex, count in counts.items():
                eip = int(eip_hex, 16)
                mine[eip] = mine.get(eip, 0) + count
        volatile = payload.get("volatile") or {}
        for name, seconds in (volatile.get("host_seconds")
                              or {}).items():
            self.host_seconds[name] = (self.host_seconds.get(name, 0.0)
                                       + seconds)
        self.samples = self.by_phase.setdefault("experiment",
                                                self.samples)

    def save(self, path):
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=1,
                      sort_keys=True)
            handle.write("\n")


def load_profile(path):
    """The raw profile dict written by :meth:`Sampler.save`."""
    with open(path) as handle:
        return json.load(handle)


def as_sampler(profile):
    """Coerce ``None`` / a period int / a :class:`Sampler` into a
    sampler object (mirrors :func:`repro.obs.trace.as_tracer`)."""
    if profile is None:
        return None
    if isinstance(profile, Sampler):
        return profile
    if profile is True:
        return Sampler()
    return Sampler(period=int(profile))


# ----------------------------------------------------------------------
# Symbolization: EIP samples -> function / line hotspots

def resolve_samples(counts, module):
    """Aggregate an ``eip -> count`` dict to functions of *module*.

    Returns ``[(function_name, count, {line: count}), ...]`` sorted by
    descending count.  EIPs outside every known function fall into
    ``"?"``; line numbers come from the module's address->line map
    when the assembler recorded one (``{}`` otherwise).
    """
    functions = module.function_symbols()
    starts = [symbol.address for symbol in functions]
    lines = getattr(module, "lines", None) or {}
    import bisect
    by_function = {}
    for eip, count in counts.items():
        index = bisect.bisect_right(starts, eip) - 1
        name = functions[index].name if index >= 0 else "?"
        entry = by_function.setdefault(name, [0, {}])
        entry[0] += count
        line = lines.get(eip)
        if line is not None:
            entry[1][line] = entry[1].get(line, 0) + count
    resolved = [(name, entry[0], entry[1])
                for name, entry in by_function.items()]
    resolved.sort(key=lambda item: (-item[1], item[0]))
    return resolved


def hotspot_table(profile, module, phase=None, limit=10):
    """Human-readable per-function hotspot table for one phase (or
    all phases merged when *phase* is None)."""
    samples = profile.get("samples") or {}
    counts = {}
    phases = ([phase] if phase is not None else sorted(samples))
    for name in phases:
        for eip_hex, count in (samples.get(name) or {}).items():
            eip = int(eip_hex, 16)
            counts[eip] = counts.get(eip, 0) + count
    total = sum(counts.values())
    lines = ["guest hotspots (%s, %d sample(s), period %d):"
             % (phase or "all phases", total,
                profile.get("period", 0))]
    if not total:
        lines.append("  (no samples)")
        return "\n".join(lines)
    for name, count, by_line in resolve_samples(
            counts, module)[:limit]:
        hottest = ""
        if by_line:
            line, line_count = max(by_line.items(),
                                   key=lambda item: (item[1],
                                                     -item[0]))
            hottest = "  (hottest line %d: %d)" % (line, line_count)
        lines.append("  %6.1f%%  %8d  %s%s"
                     % (100.0 * count / total, count, name, hottest))
    return "\n".join(lines)


def write_collapsed(path, profile, module):
    """Collapsed-stack output (``phase;function count`` per line) --
    the input format of flamegraph.pl, speedscope and friends."""
    samples = profile.get("samples") or {}
    with open(path, "w") as handle:
        for phase in sorted(samples):
            counts = {int(eip_hex, 16): count
                      for eip_hex, count in samples[phase].items()}
            for name, count, __ in resolve_samples(counts, module):
                handle.write("%s;%s %d\n" % (phase, name, count))
