"""Bounded-buffer primitives shared by tracing and forensics.

Two capture disciplines cover every consumer in the pipeline:

* :class:`RingBuffer` keeps the *last* ``capacity`` items (the
  forensic instruction ring, the in-memory span ring) -- the recent
  past matters, the distant past may be dropped;
* :class:`TraceRecorder` keeps the *first* ``limit`` items (the
  propagation analyzer's post-activation traces) -- divergence search
  starts at the beginning, so dropping the head would be wrong.
"""

from __future__ import annotations

from collections import deque


class RingBuffer:
    """Append-only buffer retaining the last *capacity* items.

    ``capacity=None`` is unbounded.  Iteration and :meth:`snapshot`
    yield items oldest-first; ``ring[-1]`` may be reassigned (the CPU
    fast path truncates its final block entry after a mid-block
    fault).
    """

    __slots__ = ("_items", "capacity", "append")

    def __init__(self, capacity=None):
        self.capacity = capacity
        self._items = deque(maxlen=capacity)
        # bound C-level append: hot paths (the CPU forensic loop does
        # one append per superstep) skip the Python-frame dispatch.
        self.append = self._items.append

    def extend(self, items):
        self._items.extend(items)

    def clear(self):
        self._items.clear()

    def snapshot(self):
        """The retained items, oldest first, as a list."""
        return list(self._items)

    def __len__(self):
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def __getitem__(self, index):
        return self._items[index]

    def __setitem__(self, index, value):
        self._items[index] = value

    def __repr__(self):
        return "RingBuffer(%d item(s), capacity=%r)" % (
            len(self._items), self.capacity)


class TraceRecorder:
    """Per-retired-instruction (eip, regs) recorder for
    ``cpu.trace_hook``.

    Used by :func:`repro.analysis.propagation.analyze_propagation`:
    assign :meth:`hook` to ``cpu.trace_hook`` and the slow reference
    path calls it after every instruction.  ``limit`` bounds memory by
    keeping the *first* N records (head capture -- divergence is
    located from the start of the trace), counting the overflow in
    :attr:`dropped`.
    """

    def __init__(self, limit=None, record_regs=True):
        self.limit = limit
        self.eips = []
        self.regs = [] if record_regs else None
        self.dropped = 0

    def hook(self, cpu, instruction):
        if self.limit is not None and len(self.eips) >= self.limit:
            self.dropped += 1
            return
        self.eips.append(cpu.eip)
        if self.regs is not None:
            self.regs.append(tuple(cpu.regs))

    def __len__(self):
        return len(self.eips)
