"""Mini-C compiler: the C subset the reproduction's daemons are
written in, compiled to the IA-32 subset with gcc-1999 idioms."""

from .compiler import (CompiledProgram, compile_expression_test,
                       compile_program, DEFAULT_DATA_BASE,
                       DEFAULT_TEXT_BASE)
from .errors import MiniCError, MiniCSyntaxError, MiniCTypeError
from .lexer import Token, tokenize
from .parser import parse
from .runtime import RUNTIME_ASM, RUNTIME_C

__all__ = [
    "CompiledProgram", "compile_program", "compile_expression_test",
    "DEFAULT_TEXT_BASE", "DEFAULT_DATA_BASE", "MiniCError",
    "MiniCSyntaxError", "MiniCTypeError", "Token", "tokenize", "parse",
    "RUNTIME_ASM", "RUNTIME_C",
]
