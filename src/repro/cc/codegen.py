"""Mini-C to IA-32 code generation.

The output deliberately mirrors the gcc-compiled code shown in the
paper's Section 3 examples, because the study's security findings come
from the *shape* of compiled authentication code:

* arguments pushed with ``pushl %eax`` / ``pushl $imm`` (one bit away
  from ``pushl %ecx`` -- Example 1, case 1),
* ``call`` + ``addl $N, %esp`` caller cleanup,
* decisions lowered to ``test %eax, %eax`` / ``cmpl`` followed by a
  conditional branch (``je``/``jne`` one bit apart -- Example 1,
  cases 2 and 3),
* short Jcc when the target is near, 6-byte ``0F 8x`` forms otherwise
  (the assembler relaxes automatically), giving the 2BC/6BC2 error
  location mix of Table 3.

Values are computed into ``%eax``; binary expressions stage the left
operand on the stack.  Only caller-saved registers are used, so no
save/restore traffic clutters the generated code.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .ctypes_ import (ArrayType, CHAR, CType, INT, PointerType, VOID,
                      value_type)
from .errors import MiniCTypeError
from .symbols import (FunctionSymbol, GlobalSymbol, LocalSymbol,
                      ScopeStack)

_COMPARISON_SUFFIX = {"==": "e", "!=": "ne", "<": "l", "<=": "le",
                      ">": "g", ">=": "ge"}
_NEGATED_SUFFIX = {"e": "ne", "ne": "e", "l": "ge", "le": "g",
                   "g": "le", "ge": "l"}


class CodeGenerator:
    """Single-pass AST walker emitting AT&T assembly text.

    One instance compiles one translation unit; call :meth:`generate`
    with the parsed :class:`~repro.cc.ast_nodes.Program`.
    """

    def __init__(self):
        self.lines = []
        self.data_lines = []
        self.rodata_lines = []   # interned string literals, emitted last
        self.label_counter = 0
        self.string_labels = {}
        self.globals = {}
        self.functions = {}
        self.scope = None
        self.current_function = None
        self.loop_stack = []  # (continue_label, break_label)

    # ------------------------------------------------------------------

    def emit(self, line):
        self.lines.append("    " + line)

    def emit_label(self, label):
        self.lines.append(label + ":")

    def new_label(self, hint="L"):
        self.label_counter += 1
        return ".%s%d" % (hint, self.label_counter)

    # ------------------------------------------------------------------

    def generate(self, program):
        for declaration in program.globals:
            self._declare_global(declaration)
        for function in program.functions:
            self.functions[function.name] = FunctionSymbol(
                function.name, function.return_type,
                [p.ctype for p in function.parameters])
        for function in program.functions:
            self._generate_function(function)
        text = ".text\n" + "\n".join(self.lines)
        data = ".data\n" + "\n".join(self.data_lines + self.rodata_lines)
        return text + "\n" + data + "\n"

    # ------------------------------------------------------------------
    # Globals

    def _declare_global(self, declaration):
        name = declaration.name
        if name in self.globals:
            raise MiniCTypeError("redefinition of %r" % name,
                                 declaration.line)
        ctype = declaration.ctype
        label = name
        self.globals[name] = GlobalSymbol(name, ctype, label)
        init = declaration.initializer
        out = self.data_lines
        out.append(".align 4")
        out.append(label + ":")
        if init is None:
            out.append(".space %d" % max(1, ctype.size))
            return
        if isinstance(init, list):
            self._emit_array_initializer(ctype, init, declaration.line)
            return
        if isinstance(init, ast.NumberLiteral):
            if ctype.size == 1:
                out.append(".byte %d" % (init.value & 0xFF))
            else:
                out.append(".long %d" % (init.value & 0xFFFFFFFF))
            return
        if isinstance(init, ast.StringLiteral):
            if ctype.is_array():
                body = init.value
                text = _escape_bytes(body)
                out.append('.asciz "%s"' % text)
                declared = ctype.count or (len(body) + 1)
                if declared > len(body) + 1:
                    out.append(".space %d" % (declared - len(body) - 1))
                if ctype.count == 0:
                    self.globals[name] = GlobalSymbol(
                        name, ArrayType(element=ctype.element,
                                        count=len(body) + 1), label)
                return
            string_label = self._intern_string(init.value)
            out.append(".long %s" % string_label)
            return
        raise MiniCTypeError("unsupported initializer for %r" % name,
                             declaration.line)

    def _emit_array_initializer(self, ctype, items, line):
        if not ctype.is_array():
            raise MiniCTypeError("brace initializer on non-array", line)
        out = self.data_lines
        for item in items:
            if isinstance(item, ast.StringLiteral):
                out.append(".long %s" % self._intern_string(item.value))
            else:
                out.append(".long %d" % (item.value & 0xFFFFFFFF))
        remaining = ctype.count - len(items)
        if remaining > 0:
            out.append(".space %d" % (remaining * ctype.element.size))

    def _intern_string(self, value):
        if value in self.string_labels:
            return self.string_labels[value]
        label = ".LC%d" % len(self.string_labels)
        self.string_labels[value] = label
        self.rodata_lines.append(label + ":")
        self.rodata_lines.append('.asciz "%s"' % _escape_bytes(value))
        return label

    # ------------------------------------------------------------------
    # Functions

    def _generate_function(self, function):
        self.scope = ScopeStack()
        self.current_function = function
        offset = 8
        for parameter in function.parameters:
            self.scope.declare(LocalSymbol(parameter.name, parameter.ctype,
                                           offset, is_param=True),
                               parameter.line)
            offset += 4
        frame_size, offsets = self._assign_local_offsets(function.body)
        self._local_offsets = offsets
        self.emit_label(function.name)
        self.emit("pushl %ebp")
        self.emit("movl %esp, %ebp")
        if frame_size:
            self.emit("subl $%d, %%esp" % frame_size)
        self.return_label = self.new_label("Lret")
        self._gen_block(function.body)
        self.emit_label(self.return_label)
        self.emit("leave")
        self.emit("ret")
        self.scope = None
        self.current_function = None

    def _assign_local_offsets(self, body):
        """Pre-scan the body, assigning an EBP offset to every local."""
        offsets = {}
        cursor = 0

        def visit(node):
            nonlocal cursor
            if isinstance(node, ast.Declaration):
                size = (node.ctype.size + 3) & ~3
                cursor += size
                offsets[id(node)] = -cursor
            for child in _statement_children(node):
                visit(child)

        visit(body)
        frame = (cursor + 15) & ~15  # gcc-style 16-byte rounding
        return frame, offsets

    # ------------------------------------------------------------------
    # Statements

    def _gen_statement(self, node):
        if isinstance(node, ast.Block):
            self.scope.push()
            self._gen_block_inner(node)
            self.scope.pop()
        elif isinstance(node, ast.Declaration):
            self._gen_declaration(node)
        elif isinstance(node, ast.ExpressionStatement):
            self._gen_expression(node.expression)
        elif isinstance(node, ast.If):
            self._gen_if(node)
        elif isinstance(node, ast.While):
            self._gen_while(node)
        elif isinstance(node, ast.DoWhile):
            self._gen_do_while(node)
        elif isinstance(node, ast.For):
            self._gen_for(node)
        elif isinstance(node, ast.Switch):
            self._gen_switch(node)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self._gen_expression(node.value)
            self.emit("jmp %s" % self.return_label)
        elif isinstance(node, ast.Break):
            if not self.loop_stack:
                raise MiniCTypeError("break outside loop or switch",
                                     node.line)
            self.emit("jmp %s" % self.loop_stack[-1][1])
        elif isinstance(node, ast.Continue):
            # continue skips switch frames (they only own `break`)
            targets = [entry[0] for entry in self.loop_stack
                       if entry[0] is not None]
            if not targets:
                raise MiniCTypeError("continue outside loop", node.line)
            self.emit("jmp %s" % targets[-1])
        else:
            raise MiniCTypeError("unsupported statement %r"
                                 % type(node).__name__, node.line)

    def _gen_block(self, block):
        self.scope.push()
        self._gen_block_inner(block)
        self.scope.pop()

    def _gen_block_inner(self, block):
        for statement in block.statements:
            self._gen_statement(statement)

    def _gen_declaration(self, node):
        offset = self._local_offsets[id(node)]
        symbol = LocalSymbol(node.name, node.ctype, offset)
        self.scope.declare(symbol, node.line)
        if node.initializer is None:
            return
        if isinstance(node.initializer, ast.StringLiteral) \
                and node.ctype.is_pointer():
            label = self._intern_string(node.initializer.value)
            self.emit("movl $%s, %d(%%ebp)" % (label, offset))
            return
        value_ctype = self._gen_expression(node.initializer)
        self._store_to_local(symbol, value_ctype)

    def _store_to_local(self, symbol, value_ctype):
        if symbol.ctype.size == 1 and not symbol.ctype.is_pointer():
            self.emit("movb %%al, %d(%%ebp)" % symbol.offset)
        else:
            self.emit("movl %%eax, %d(%%ebp)" % symbol.offset)

    def _gen_if(self, node):
        else_label = self.new_label("Lelse")
        end_label = self.new_label("Lend")
        target = else_label if node.else_branch is not None else end_label
        self._gen_branch_if_false(node.condition, target)
        self._gen_statement(node.then_branch)
        if node.else_branch is not None:
            self.emit("jmp %s" % end_label)
            self.emit_label(else_label)
            self._gen_statement(node.else_branch)
        self.emit_label(end_label)

    def _gen_while(self, node):
        start_label = self.new_label("Lloop")
        end_label = self.new_label("Lend")
        self.loop_stack.append((start_label, end_label))
        self.emit_label(start_label)
        self._gen_branch_if_false(node.condition, end_label)
        self._gen_statement(node.body)
        self.emit("jmp %s" % start_label)
        self.emit_label(end_label)
        self.loop_stack.pop()

    def _gen_do_while(self, node):
        start_label = self.new_label("Lloop")
        continue_label = self.new_label("Lcont")
        end_label = self.new_label("Lend")
        self.loop_stack.append((continue_label, end_label))
        self.emit_label(start_label)
        self._gen_statement(node.body)
        self.emit_label(continue_label)
        self._gen_branch_if_true(node.condition, start_label)
        self.emit_label(end_label)
        self.loop_stack.pop()

    def _gen_for(self, node):
        start_label = self.new_label("Lloop")
        continue_label = self.new_label("Lcont")
        end_label = self.new_label("Lend")
        if node.init is not None:
            self._gen_statement(node.init)
        self.loop_stack.append((continue_label, end_label))
        self.emit_label(start_label)
        if node.condition is not None:
            self._gen_branch_if_false(node.condition, end_label)
        self._gen_statement(node.body)
        self.emit_label(continue_label)
        if node.step is not None:
            self._gen_expression(node.step)
        self.emit("jmp %s" % start_label)
        self.emit_label(end_label)
        self.loop_stack.pop()

    def _gen_switch(self, node):
        """gcc -O0 style: a compare chain over the case constants
        followed by the case bodies with natural fallthrough."""
        end_label = self.new_label("Lend")
        self._gen_expression(node.expression)
        case_labels = []
        default_label = end_label
        for case in node.cases:
            label = self.new_label("Lcase")
            case_labels.append(label)
            if case.value is None:
                default_label = label
            else:
                self.emit("cmpl $%d, %%eax"
                          % (case.value & 0xFFFFFFFF))
                self.emit("je %s" % label)
        self.emit("jmp %s" % default_label)
        self.loop_stack.append((None, end_label))
        self.scope.push()
        for case, label in zip(node.cases, case_labels):
            self.emit_label(label)
            for statement in case.statements:
                self._gen_statement(statement)
        self.scope.pop()
        self.loop_stack.pop()
        self.emit_label(end_label)

    # ------------------------------------------------------------------
    # Branch generation (produces the paper's test/cmp + Jcc shapes)

    def _gen_branch_if_false(self, condition, target):
        self._gen_branch(condition, target, jump_when=False)

    def _gen_branch_if_true(self, condition, target):
        self._gen_branch(condition, target, jump_when=True)

    def _gen_branch(self, condition, target, jump_when):
        if isinstance(condition, ast.UnaryOp) and condition.op == "!":
            self._gen_branch(condition.operand, target,
                             jump_when=not jump_when)
            return
        if isinstance(condition, ast.BinaryOp):
            op = condition.op
            if op in _COMPARISON_SUFFIX:
                self._gen_comparison_branch(condition, target, jump_when)
                return
            if op == "&&":
                if jump_when:
                    skip = self.new_label("Lskip")
                    self._gen_branch(condition.left, skip, jump_when=False)
                    self._gen_branch(condition.right, target,
                                     jump_when=True)
                    self.emit_label(skip)
                else:
                    self._gen_branch(condition.left, target,
                                     jump_when=False)
                    self._gen_branch(condition.right, target,
                                     jump_when=False)
                return
            if op == "||":
                if jump_when:
                    self._gen_branch(condition.left, target, jump_when=True)
                    self._gen_branch(condition.right, target,
                                     jump_when=True)
                else:
                    skip = self.new_label("Lskip")
                    self._gen_branch(condition.left, skip, jump_when=True)
                    self._gen_branch(condition.right, target,
                                     jump_when=False)
                    self.emit_label(skip)
                return
        # General expression: evaluate and test (the `test %eax,%eax`
        # / `je` pair of the paper's Example 1).
        self._gen_expression(condition)
        self.emit("testl %eax, %eax")
        self.emit("jne %s" % target if jump_when else "je %s" % target)

    def _gen_comparison_branch(self, condition, target, jump_when):
        suffix = _COMPARISON_SUFFIX[condition.op]
        if not jump_when:
            suffix = _NEGATED_SUFFIX[suffix]
        right = condition.right
        if isinstance(right, ast.NumberLiteral) and right.value == 0 \
                and condition.op in ("==", "!="):
            # gcc idiom: compare-with-zero becomes test.
            self._gen_expression(condition.left)
            self.emit("testl %eax, %eax")
            self.emit("j%s %s" % (suffix, target))
            return
        self._gen_expression(condition.left)
        self.emit("pushl %eax")
        self._gen_expression(condition.right)
        self.emit("movl %eax, %ecx")
        self.emit("popl %eax")
        self.emit("cmpl %ecx, %eax")
        self.emit("j%s %s" % (suffix, target))

    # ------------------------------------------------------------------
    # Expressions: result in %eax, returns the value's CType.

    def _gen_expression(self, node):
        if isinstance(node, ast.NumberLiteral):
            self.emit("movl $%d, %%eax" % (node.value & 0xFFFFFFFF))
            return INT
        if isinstance(node, ast.StringLiteral):
            label = self._intern_string(node.value)
            self.emit("movl $%s, %%eax" % label)
            return PointerType(CHAR)
        if isinstance(node, ast.Identifier):
            return self._gen_load_identifier(node)
        if isinstance(node, ast.BinaryOp):
            return self._gen_binary(node)
        if isinstance(node, ast.UnaryOp):
            return self._gen_unary(node)
        if isinstance(node, ast.Assignment):
            return self._gen_assignment(node)
        if isinstance(node, ast.IncDec):
            return self._gen_incdec(node)
        if isinstance(node, ast.Call):
            return self._gen_call(node)
        if isinstance(node, ast.Index):
            return self._gen_index_load(node)
        if isinstance(node, ast.SizeOf):
            return self._gen_sizeof(node)
        if isinstance(node, ast.Conditional):
            return self._gen_conditional(node)
        raise MiniCTypeError("unsupported expression %r"
                             % type(node).__name__, node.line)

    def _resolve(self, name, line):
        symbol = self.scope.lookup(name)
        if symbol is not None:
            return symbol
        if name in self.globals:
            return self.globals[name]
        raise MiniCTypeError("undeclared identifier %r" % name, line)

    def _gen_load_identifier(self, node):
        symbol = self._resolve(node.name, node.line)
        ctype = symbol.ctype
        if isinstance(symbol, LocalSymbol):
            if ctype.is_array():
                self.emit("leal %d(%%ebp), %%eax" % symbol.offset)
                return ctype.decay()
            if ctype.size == 1 and not ctype.is_pointer():
                self.emit("movzbl %d(%%ebp), %%eax" % symbol.offset)
                return INT
            self.emit("movl %d(%%ebp), %%eax" % symbol.offset)
            return ctype
        if ctype.is_array():
            self.emit("movl $%s, %%eax" % symbol.label)
            return ctype.decay()
        if ctype.size == 1 and not ctype.is_pointer():
            self.emit("movzbl %s, %%eax" % symbol.label)
            return INT
        self.emit("movl %s, %%eax" % symbol.label)
        return ctype

    # -- lvalues ---------------------------------------------------------

    def _gen_address(self, node):
        """Leave the address of an lvalue in %eax; return element type."""
        if isinstance(node, ast.Identifier):
            symbol = self._resolve(node.name, node.line)
            if isinstance(symbol, LocalSymbol):
                self.emit("leal %d(%%ebp), %%eax" % symbol.offset)
            else:
                self.emit("movl $%s, %%eax" % symbol.label)
            return symbol.ctype
        if isinstance(node, ast.UnaryOp) and node.op == "*":
            pointer_type = self._gen_expression(node.operand)
            pointer_type = value_type(pointer_type)
            if not pointer_type.is_pointer():
                raise MiniCTypeError("dereference of non-pointer",
                                     node.line)
            return pointer_type.pointee
        if isinstance(node, ast.Index):
            return self._gen_index_address(node)
        raise MiniCTypeError("expression is not an lvalue", node.line)

    def _gen_index_address(self, node):
        base_type = value_type(self._gen_expression(node.base))
        if not base_type.is_pointer():
            raise MiniCTypeError("indexing non-pointer", node.line)
        self.emit("pushl %eax")
        self._gen_expression(node.index)
        stride = base_type.stride
        if stride == 4:
            self.emit("shll $2, %eax")
        elif stride != 1:
            self.emit("imull $%d, %%eax" % stride)
        self.emit("movl %eax, %ecx")
        self.emit("popl %eax")
        self.emit("addl %ecx, %eax")
        return base_type.pointee

    def _load_through_eax(self, element_type):
        if element_type.size == 1 and not element_type.is_pointer():
            self.emit("movzbl (%eax), %eax")
            return INT
        self.emit("movl (%eax), %eax")
        return element_type

    def _gen_index_load(self, node):
        element_type = self._gen_index_address(node)
        if element_type.is_array():
            return element_type.decay()
        return self._load_through_eax(element_type)

    # -- operators --------------------------------------------------------

    def _gen_binary(self, node):
        op = node.op
        if op in _COMPARISON_SUFFIX:
            return self._gen_comparison_value(node)
        if op in ("&&", "||"):
            return self._gen_logical_value(node)
        left_type = value_type(self._gen_expression(node.left))
        self.emit("pushl %eax")
        right_type = value_type(self._gen_expression(node.right))
        # Pointer arithmetic scaling.
        if op == "+" and left_type.is_pointer() \
                and not right_type.is_pointer():
            self._scale_eax(left_type.stride)
        elif op == "+" and right_type.is_pointer() \
                and not left_type.is_pointer():
            pass  # int + ptr: scale the int on the stack -- rare; the
            # daemons always write ptr + int, which the line above
            # handles.  Keep the unscaled form for int on the left.
        elif op == "-" and left_type.is_pointer() \
                and not right_type.is_pointer():
            self._scale_eax(left_type.stride)
        self.emit("movl %eax, %ecx")
        self.emit("popl %eax")
        result_type = left_type if left_type.is_pointer() else (
            right_type if right_type.is_pointer() else INT)
        if op == "+":
            self.emit("addl %ecx, %eax")
        elif op == "-":
            self.emit("subl %ecx, %eax")
            if left_type.is_pointer() and right_type.is_pointer():
                stride = left_type.stride
                if stride == 4:
                    self.emit("sarl $2, %eax")
                result_type = INT
        elif op == "*":
            self.emit("imull %ecx, %eax")
        elif op in ("/", "%"):
            self.emit("cltd")
            self.emit("idivl %ecx")
            if op == "%":
                self.emit("movl %edx, %eax")
        elif op == "&":
            self.emit("andl %ecx, %eax")
        elif op == "|":
            self.emit("orl %ecx, %eax")
        elif op == "^":
            self.emit("xorl %ecx, %eax")
        elif op == "<<":
            self.emit("shll %cl, %eax")
        elif op == ">>":
            self.emit("shrl %cl, %eax")
        else:
            raise MiniCTypeError("unsupported operator %r" % op, node.line)
        return result_type

    def _scale_eax(self, stride):
        if stride == 4:
            self.emit("shll $2, %eax")
        elif stride != 1:
            self.emit("imull $%d, %%eax" % stride)

    def _gen_comparison_value(self, node):
        suffix = _COMPARISON_SUFFIX[node.op]
        self._gen_expression(node.left)
        self.emit("pushl %eax")
        self._gen_expression(node.right)
        self.emit("movl %eax, %ecx")
        self.emit("popl %eax")
        self.emit("cmpl %ecx, %eax")
        self.emit("set%s %%al" % suffix)
        self.emit("movzbl %al, %eax")
        return INT

    def _gen_logical_value(self, node):
        false_label = self.new_label("Lfalse")
        end_label = self.new_label("Lend")
        if node.op == "&&":
            self._gen_branch(node, false_label, jump_when=False)
            self.emit("movl $1, %eax")
        else:
            self._gen_branch(node, false_label, jump_when=True)
            self.emit("movl $0, %eax")
        self.emit("jmp %s" % end_label)
        self.emit_label(false_label)
        if node.op == "&&":
            self.emit("movl $0, %eax")
        else:
            self.emit("movl $1, %eax")
        self.emit_label(end_label)
        return INT

    def _gen_unary(self, node):
        op = node.op
        if op == "-":
            self._gen_expression(node.operand)
            self.emit("negl %eax")
            return INT
        if op == "~":
            self._gen_expression(node.operand)
            self.emit("notl %eax")
            return INT
        if op == "!":
            self._gen_expression(node.operand)
            self.emit("testl %eax, %eax")
            self.emit("sete %al")
            self.emit("movzbl %al, %eax")
            return INT
        if op == "*":
            pointer_type = value_type(self._gen_expression(node.operand))
            if not pointer_type.is_pointer():
                raise MiniCTypeError("dereference of non-pointer",
                                     node.line)
            pointee = pointer_type.pointee
            if pointee.is_array():
                return pointee.decay()
            return self._load_through_eax(pointee)
        if op == "&":
            ctype = self._gen_address(node.operand)
            return PointerType(ctype.element if ctype.is_array()
                               else ctype)
        raise MiniCTypeError("unsupported unary %r" % op, node.line)

    def _gen_assignment(self, node):
        if node.op != "=":
            # Compound assignment: rewrite a op= b as a = a op b.
            binary = ast.BinaryOp(line=node.line, op=node.op[:-1],
                                  left=node.target, right=node.value)
            rewritten = ast.Assignment(line=node.line, op="=",
                                       target=node.target, value=binary)
            return self._gen_assignment(rewritten)
        target = node.target
        if isinstance(target, ast.Identifier):
            symbol = self._resolve(target.name, target.line)
            value_ctype = self._gen_expression(node.value)
            if isinstance(symbol, LocalSymbol):
                self._store_to_local(symbol, value_ctype)
            elif symbol.ctype.size == 1 and not symbol.ctype.is_pointer():
                self.emit("movb %%al, %s" % symbol.label)
            else:
                self.emit("movl %%eax, %s" % symbol.label)
            return symbol.ctype
        element_type = self._gen_address(target)
        self.emit("pushl %eax")
        self._gen_expression(node.value)
        self.emit("popl %ecx")
        if element_type.size == 1 and not element_type.is_pointer():
            self.emit("movb %al, (%ecx)")
        else:
            self.emit("movl %eax, (%ecx)")
        return element_type

    def _gen_incdec(self, node):
        target = node.target
        delta_op = "addl" if node.op == "++" else "subl"
        if isinstance(target, ast.Identifier):
            symbol = self._resolve(target.name, target.line)
            stride = symbol.ctype.stride if symbol.ctype.is_pointer() else 1
            if isinstance(symbol, LocalSymbol):
                location = "%d(%%ebp)" % symbol.offset
            else:
                location = symbol.label
            if symbol.ctype.size == 1 and not symbol.ctype.is_pointer():
                self.emit("movzbl %s, %%eax" % location)
                self.emit("%s $%d, %s" % ("addb" if node.op == "++"
                                          else "subb", stride, location))
                if node.prefix:
                    self.emit("movzbl %s, %%eax" % location)
                return INT
            self.emit("movl %s, %%eax" % location)
            self.emit("%s $%d, %s" % (delta_op, stride, location))
            if node.prefix:
                self.emit("movl %s, %%eax" % location)
            return symbol.ctype
        element_type = self._gen_address(target)
        stride = element_type.stride if element_type.is_pointer() else 1
        self.emit("movl %eax, %ecx")
        if element_type.size == 1 and not element_type.is_pointer():
            self.emit("movzbl (%ecx), %eax")
            self.emit("%s $%d, (%%ecx)" % ("addb" if node.op == "++"
                                           else "subb", stride))
            if node.prefix:
                self.emit("movzbl (%ecx), %eax")
            return INT
        self.emit("movl (%ecx), %eax")
        self.emit("%s $%d, (%%ecx)" % (delta_op, stride))
        if node.prefix:
            self.emit("movl (%ecx), %eax")
        return element_type

    def _gen_call(self, node):
        for argument in reversed(node.args):
            self._gen_expression(argument)
            self.emit("pushl %eax")
        self.emit("call %s" % node.name)
        if node.args:
            self.emit("addl $%d, %%esp" % (4 * len(node.args)))
        signature = self.functions.get(node.name)
        return signature.return_type if signature else INT

    def _gen_sizeof(self, node):
        target = node.target
        if isinstance(target, CType):
            size = target.size
        else:
            symbol = self._resolve(target.name, target.line)
            size = symbol.ctype.size
        self.emit("movl $%d, %%eax" % size)
        return INT

    def _gen_conditional(self, node):
        else_label = self.new_label("Lelse")
        end_label = self.new_label("Lend")
        self._gen_branch_if_false(node.condition, else_label)
        self._gen_expression(node.then_value)
        self.emit("jmp %s" % end_label)
        self.emit_label(else_label)
        self._gen_expression(node.else_value)
        self.emit_label(end_label)
        return INT


def _statement_children(node):
    """Yield child statements for the local-offset pre-scan."""
    if isinstance(node, ast.Block):
        return list(node.statements)
    if isinstance(node, ast.Switch):
        return [statement for case in node.cases
                for statement in case.statements]
    if isinstance(node, ast.If):
        return [child for child in (node.then_branch, node.else_branch)
                if child is not None]
    if isinstance(node, (ast.While, ast.DoWhile)):
        return [node.body]
    if isinstance(node, ast.For):
        return [child for child in (node.init, node.body)
                if child is not None]
    return []


def _escape_bytes(value):
    out = []
    for byte in value:
        if byte == 0x22:
            out.append('\\"')
        elif byte == 0x5C:
            out.append("\\\\")
        elif byte == 0x0A:
            out.append("\\n")
        elif byte == 0x0D:
            out.append("\\r")
        elif byte == 0x09:
            out.append("\\t")
        elif 0x20 <= byte < 0x7F:
            out.append(chr(byte))
        else:
            out.append("\\x%02x" % byte)
    return "".join(out)
