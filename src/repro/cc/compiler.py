"""Compiler driver: mini-C source -> assembled :class:`Module`.

A *program* is the concatenation of the runtime (libc subset + syscall
stubs) and one or more application sources, compiled as a single
translation unit and assembled at the classic Linux i386 load
addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..x86.assembler import Assembler
from .codegen import CodeGenerator
from .parser import parse
from .runtime import RUNTIME_ASM, RUNTIME_C

DEFAULT_TEXT_BASE = 0x08048000
DEFAULT_DATA_BASE = 0x0804C000


@dataclass
class CompiledProgram:
    """Output of :func:`compile_program`."""

    module: object          # repro.x86.assembler.Module
    assembly: str           # full assembly text fed to the assembler
    source: str             # concatenated mini-C source

    def function_range(self, name):
        return self.module.function_range(name)

    def address_of(self, name):
        return self.module.address_of(name)


def compile_program(source, extra_sources=(), include_runtime=True,
                    extra_asm="", text_base=DEFAULT_TEXT_BASE,
                    data_base=DEFAULT_DATA_BASE,
                    force_long_branches=False):
    """Compile mini-C *source* (plus extras) into a loadable module.

    The runtime is prepended so application code can call ``strcmp``,
    ``crypt13``, ``read_line`` and friends; ``_start`` calls ``main``
    and exits with its return value.
    """
    pieces = []
    if include_runtime:
        pieces.append(RUNTIME_C)
    pieces.extend(extra_sources)
    pieces.append(source)
    combined = "\n".join(pieces)
    program = parse(combined)
    generator = CodeGenerator()
    generated = generator.generate(program)
    assembly = ""
    if include_runtime:
        assembly += RUNTIME_ASM + "\n"
    if extra_asm:
        assembly += extra_asm + "\n"
    assembly += generated
    assembler = Assembler(text_base, data_base,
                          force_long_branches=force_long_branches)
    module = assembler.assemble(assembly)
    return CompiledProgram(module=module, assembly=assembly,
                           source=combined)


def compile_expression_test(body, include_runtime=True):
    """Wrap *body* statements in ``int main()`` and compile -- a test
    convenience used throughout the compiler test-suite."""
    source = "int main() {\n%s\n}\n" % body
    return compile_program(source, include_runtime=include_runtime)
