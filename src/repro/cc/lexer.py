"""Lexer for mini-C, the C subset the daemons are written in.

Token kinds: ``id``, ``num``, ``str``, ``char``, punctuation/operator
(kind equals the lexeme), and keywords (kind equals the keyword).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import MiniCSyntaxError

KEYWORDS = frozenset({
    "int", "char", "void", "if", "else", "while", "for", "do", "return",
    "break", "continue", "sizeof", "static", "unsigned", "switch",
    "case", "default",
})

# Longest-match-first operator list.
OPERATORS = (
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++",
    "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
)

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39,
            '"': 34, "b": 8, "f": 12, "v": 11, "a": 7}


@dataclass(frozen=True)
class Token:
    kind: str
    value: object
    line: int

    def __repr__(self):
        return "Token(%r, %r, line=%d)" % (self.kind, self.value, self.line)


def tokenize(source):
    """Convert mini-C source text into a list of tokens (EOF-terminated)."""
    tokens = []
    index = 0
    line = 1
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            continue
        if source.startswith("//", index):
            end = source.find("\n", index)
            index = length if end == -1 else end
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end == -1:
                raise MiniCSyntaxError("unterminated comment", line)
            line += source.count("\n", index, end)
            index = end + 2
            continue
        if char.isdigit():
            index, value = _lex_number(source, index, line)
            tokens.append(Token("num", value, line))
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum()
                                      or source[index] == "_"):
                index += 1
            word = source[start:index]
            kind = word if word in KEYWORDS else "id"
            tokens.append(Token(kind, word, line))
            continue
        if char == '"':
            index, value = _lex_string(source, index, line)
            tokens.append(Token("str", value, line))
            continue
        if char == "'":
            index, value = _lex_char(source, index, line)
            tokens.append(Token("num", value, line))
            continue
        for operator in OPERATORS:
            if source.startswith(operator, index):
                tokens.append(Token(operator, operator, line))
                index += len(operator)
                break
        else:
            raise MiniCSyntaxError("unexpected character %r" % char, line)
    tokens.append(Token("eof", None, line))
    return _merge_adjacent_strings(tokens)


def _merge_adjacent_strings(tokens):
    """C-style concatenation of adjacent string literals."""
    merged = []
    for token in tokens:
        if (token.kind == "str" and merged
                and merged[-1].kind == "str"):
            merged[-1] = Token("str", merged[-1].value + token.value,
                               merged[-1].line)
        else:
            merged.append(token)
    return merged


def _lex_number(source, index, line):
    start = index
    length = len(source)
    if source.startswith(("0x", "0X"), index):
        index += 2
        while index < length and source[index] in "0123456789abcdefABCDEF":
            index += 1
        return index, int(source[start:index], 16)
    while index < length and source[index].isdigit():
        index += 1
    return index, int(source[start:index])


def _lex_string(source, index, line):
    out = bytearray()
    index += 1
    length = len(source)
    while index < length:
        char = source[index]
        if char == '"':
            return index + 1, bytes(out)
        if char == "\\":
            escape = source[index + 1]
            if escape == "x":
                out.append(int(source[index + 2:index + 4], 16))
                index += 4
                continue
            if escape not in _ESCAPES:
                raise MiniCSyntaxError("bad escape \\%s" % escape, line)
            out.append(_ESCAPES[escape])
            index += 2
            continue
        if char == "\n":
            raise MiniCSyntaxError("newline in string literal", line)
        out.append(ord(char))
        index += 1
    raise MiniCSyntaxError("unterminated string literal", line)


def _lex_char(source, index, line):
    index += 1
    char = source[index]
    if char == "\\":
        escape = source[index + 1]
        if escape == "x":
            value = int(source[index + 2:index + 4], 16)
            index += 4
        else:
            if escape not in _ESCAPES:
                raise MiniCSyntaxError("bad escape \\%s" % escape, line)
            value = _ESCAPES[escape]
            index += 2
    else:
        value = ord(char)
        index += 1
    if source[index] != "'":
        raise MiniCSyntaxError("unterminated char literal", line)
    return index + 1, value
