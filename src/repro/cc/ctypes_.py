"""Mini-C type system: int, char, pointers and arrays.

Deliberately small: every scalar computation happens in 32-bit
registers; ``char`` is unsigned (loads zero-extend), which keeps
``strcmp`` on hash strings well-defined and matches how the daemons
treat protocol bytes.
"""

from __future__ import annotations

from dataclasses import dataclass


class CType:
    """Base class; subclasses define ``size`` (bytes)."""

    size = 4

    def is_pointer(self):
        return False

    def is_array(self):
        return False


@dataclass(frozen=True)
class IntType(CType):
    size: int = 4

    def __str__(self):
        return "int"


@dataclass(frozen=True)
class CharType(CType):
    size: int = 1

    def __str__(self):
        return "char"


@dataclass(frozen=True)
class VoidType(CType):
    size: int = 0

    def __str__(self):
        return "void"


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType = None
    size: int = 4

    def is_pointer(self):
        return True

    @property
    def stride(self):
        return max(1, self.pointee.size)

    def __str__(self):
        return "%s*" % self.pointee


@dataclass(frozen=True)
class ArrayType(CType):
    element: CType = None
    count: int = 0

    def is_array(self):
        return True

    @property
    def size(self):
        return self.element.size * self.count

    def decay(self):
        return PointerType(self.element)

    def __str__(self):
        return "%s[%d]" % (self.element, self.count)


INT = IntType()
CHAR = CharType()
VOID = VoidType()
CHAR_PTR = PointerType(CHAR)
INT_PTR = PointerType(INT)


def value_type(ctype):
    """The type an expression of *ctype* has after array decay."""
    if ctype.is_array():
        return ctype.decay()
    return ctype
