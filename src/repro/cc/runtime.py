"""The mini-C runtime: libc subset plus syscall stubs.

``RUNTIME_C`` is compiled into every program as part of the same
translation unit; ``RUNTIME_ASM`` supplies ``_start`` and the cdecl
syscall wrappers that mini-C cannot express (they need ``int $0x80``).

``crypt13`` here must stay in lockstep with
:func:`repro.kernel.passwd.crypt13`: the daemon computes hashes with
this code *inside the emulator*, the experiment harness computes them
in Python, and the password check only works because the two agree
bit-for-bit (a property the test suite verifies exhaustively).
"""

from __future__ import annotations

RUNTIME_ASM = """
.text
.global _start
_start:
    call main
    movl %eax, %ebx
    movl $1, %eax
    int $0x80

.global exit
exit:
    movl 4(%esp), %ebx
    movl $1, %eax
    int $0x80

.global read
read:
    pushl %ebx
    movl $3, %eax
    movl 8(%esp), %ebx
    movl 12(%esp), %ecx
    movl 16(%esp), %edx
    int $0x80
    popl %ebx
    ret

.global write
write:
    pushl %ebx
    movl $4, %eax
    movl 8(%esp), %ebx
    movl 12(%esp), %ecx
    movl 16(%esp), %edx
    int $0x80
    popl %ebx
    ret

.global open
open:
    pushl %ebx
    movl $5, %eax
    movl 8(%esp), %ebx
    movl $0, %ecx
    int $0x80
    popl %ebx
    ret

.global close
close:
    pushl %ebx
    movl $6, %eax
    movl 8(%esp), %ebx
    int $0x80
    popl %ebx
    ret

.global time_now
time_now:
    movl $13, %eax
    int $0x80
    ret

.global getpid
getpid:
    movl $20, %eax
    int $0x80
    ret
"""

RUNTIME_C = r"""
/* ---- string.h subset ------------------------------------------------ */

int strlen(char *s) {
    int n;
    n = 0;
    while (s[n]) {
        n = n + 1;
    }
    return n;
}

int strcmp(char *a, char *b) {
    int i;
    i = 0;
    while (a[i] && a[i] == b[i]) {
        i = i + 1;
    }
    return a[i] - b[i];
}

int strncmp(char *a, char *b, int n) {
    int i;
    i = 0;
    while (i < n) {
        if (a[i] != b[i]) {
            return a[i] - b[i];
        }
        if (a[i] == 0) {
            return 0;
        }
        i = i + 1;
    }
    return 0;
}

char *strcpy(char *dst, char *src) {
    int i;
    i = 0;
    while (src[i]) {
        dst[i] = src[i];
        i = i + 1;
    }
    dst[i] = 0;
    return dst;
}

char *strncpy(char *dst, char *src, int n) {
    int i;
    i = 0;
    while (i < n - 1 && src[i]) {
        dst[i] = src[i];
        i = i + 1;
    }
    dst[i] = 0;
    return dst;
}

char *strcat(char *dst, char *src) {
    int n;
    n = strlen(dst);
    strcpy(dst + n, src);
    return dst;
}

void *memset(char *dst, int value, int count) {
    int i;
    i = 0;
    while (i < count) {
        dst[i] = value;
        i = i + 1;
    }
    return dst;
}

void *memcpy(char *dst, char *src, int count) {
    int i;
    i = 0;
    while (i < count) {
        dst[i] = src[i];
        i = i + 1;
    }
    return dst;
}

int tolower_c(int c) {
    if (c >= 'A' && c <= 'Z') {
        return c + 32;
    }
    return c;
}

/* Case-insensitive compare (wu-ftpd compares "anonymous"/"ftp" this
 * way). */
int strcasecmp_c(char *a, char *b) {
    int i;
    int ca;
    int cb;
    i = 0;
    while (1) {
        ca = tolower_c(a[i]);
        cb = tolower_c(b[i]);
        if (ca != cb) {
            return ca - cb;
        }
        if (ca == 0) {
            return 0;
        }
        i = i + 1;
    }
    return 0;
}

int atoi(char *s) {
    int value;
    int sign;
    int i;
    value = 0;
    sign = 1;
    i = 0;
    if (s[0] == '-') {
        sign = 0 - 1;
        i = 1;
    }
    while (s[i] >= '0' && s[i] <= '9') {
        value = value * 10 + (s[i] - '0');
        i = i + 1;
    }
    return value * sign;
}

char *itoa10(int value, char *out) {
    char tmp[16];
    int i;
    int j;
    int negative;
    negative = 0;
    if (value < 0) {
        negative = 1;
        value = 0 - value;
    }
    i = 0;
    if (value == 0) {
        tmp[0] = '0';
        i = 1;
    }
    while (value > 0) {
        tmp[i] = '0' + value % 10;
        value = value / 10;
        i = i + 1;
    }
    j = 0;
    if (negative) {
        out[0] = '-';
        j = 1;
    }
    while (i > 0) {
        i = i - 1;
        out[j] = tmp[i];
        j = j + 1;
    }
    out[j] = 0;
    return out;
}

/* ---- crypt ----------------------------------------------------------- */

char crypt_buffer[16];
char *crypt_alphabet =
    "./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";

/* Deterministic 13-character password hash; twin of
 * repro.kernel.passwd.crypt13. */
char *crypt13(char *password, char *salt) {
    int h1;
    int h2;
    int i;
    int c;
    int index;
    h1 = 5381;
    h2 = 0x811C9DC5;
    crypt_buffer[0] = salt[0];
    crypt_buffer[1] = salt[1];
    i = 0;
    while (i < 2) {
        c = crypt_buffer[i];
        h1 = h1 * 33 + c;
        h2 = (h2 ^ c) * 16777619;
        i = i + 1;
    }
    i = 0;
    while (password[i]) {
        c = password[i];
        h1 = h1 * 33 + c;
        h2 = (h2 ^ c) * 16777619;
        i = i + 1;
    }
    i = 0;
    while (i < 11) {
        if (i % 2 == 0) {
            h1 = h1 * 1103515245 + 12345;
            index = (h1 >> 16) & 63;
        } else {
            h2 = h2 * 69069 + 1;
            index = (h2 >> 16) & 63;
        }
        crypt_buffer[2 + i] = crypt_alphabet[index];
        i = i + 1;
    }
    crypt_buffer[13] = 0;
    return crypt_buffer;
}

/* ---- line-oriented socket I/O ---------------------------------------- */

/* Send a NUL-terminated string on the connection. */
int send_str(char *s) {
    return write(1, s, strlen(s));
}

/* Read one CRLF- or LF-terminated line into buf (at most max-1 bytes),
 * stripping the terminator.  Returns the line length, or -1 on EOF. */
int read_line(char *buf, int max) {
    int used;
    int got;
    char one[4];
    used = 0;
    while (used < max - 1) {
        got = read(0, one, 1);
        if (got <= 0) {
            if (used == 0) {
                return 0 - 1;
            }
            break;
        }
        if (one[0] == '\n') {
            break;
        }
        if (one[0] != '\r') {
            buf[used] = one[0];
            used = used + 1;
        }
    }
    buf[used] = 0;
    return used;
}
"""
