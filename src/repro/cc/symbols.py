"""Symbol tables for the mini-C code generator."""

from __future__ import annotations

from dataclasses import dataclass

from .errors import MiniCTypeError


@dataclass
class LocalSymbol:
    """A local variable or parameter; ``offset`` is EBP-relative."""

    name: str
    ctype: object
    offset: int
    is_param: bool = False


@dataclass
class GlobalSymbol:
    name: str
    ctype: object
    label: str


@dataclass
class FunctionSymbol:
    name: str
    return_type: object
    parameter_types: list


class ScopeStack:
    """Lexical scopes inside one function."""

    def __init__(self):
        self.scopes = [{}]

    def push(self):
        self.scopes.append({})

    def pop(self):
        self.scopes.pop()

    def declare(self, symbol, line=None):
        top = self.scopes[-1]
        if symbol.name in top:
            raise MiniCTypeError("redeclaration of %r" % symbol.name, line)
        top[symbol.name] = symbol

    def lookup(self, name):
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None
