"""Recursive-descent parser for mini-C."""

from __future__ import annotations

from . import ast_nodes as ast
from .ctypes_ import (ArrayType, CHAR, CType, INT, PointerType, VOID)
from .errors import MiniCSyntaxError
from .lexer import tokenize

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>=")

# Binary operator precedence levels, low to high.
_BINARY_LEVELS = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)


class Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------------
    # Token plumbing

    def peek(self, offset=0):
        return self.tokens[min(self.position + offset,
                               len(self.tokens) - 1)]

    def next(self):
        token = self.tokens[self.position]
        self.position += 1
        return token

    def accept(self, kind):
        if self.peek().kind == kind:
            return self.next()
        return None

    def expect(self, kind):
        token = self.peek()
        if token.kind != kind:
            raise MiniCSyntaxError("expected %r, found %r"
                                   % (kind, token.value), token.line)
        return self.next()

    # ------------------------------------------------------------------
    # Top level

    def parse_program(self):
        program = ast.Program(line=1)
        while self.peek().kind != "eof":
            self._parse_top_level(program)
        return program

    def _parse_top_level(self, program):
        self.accept("static")
        base_type = self._parse_base_type()
        pointer_depth = 0
        while self.accept("*"):
            pointer_depth += 1
        name_token = self.expect("id")
        if self.peek().kind == "(":
            function = self._parse_function(base_type, pointer_depth,
                                            name_token)
            program.functions.append(function)
        else:
            self._parse_global_tail(program, base_type, pointer_depth,
                                    name_token)

    def _parse_base_type(self):
        self.accept("unsigned")
        token = self.peek()
        if token.kind == "int":
            self.next()
            return INT
        if token.kind == "char":
            self.next()
            return CHAR
        if token.kind == "void":
            self.next()
            return VOID
        raise MiniCSyntaxError("expected type, found %r" % token.value,
                               token.line)

    def _apply_pointers(self, base, depth):
        ctype = base
        for __ in range(depth):
            ctype = PointerType(ctype)
        return ctype

    def _parse_function(self, base_type, pointer_depth, name_token):
        return_type = self._apply_pointers(base_type, pointer_depth)
        self.expect("(")
        parameters = []
        if self.peek().kind != ")":
            if self.peek().kind == "void" and self.peek(1).kind == ")":
                self.next()
            else:
                while True:
                    parameters.append(self._parse_parameter())
                    if not self.accept(","):
                        break
        self.expect(")")
        body = self._parse_block()
        return ast.FunctionDef(line=name_token.line,
                               return_type=return_type,
                               name=name_token.value,
                               parameters=parameters, body=body)

    def _parse_parameter(self):
        self.accept("unsigned")
        base = self._parse_base_type()
        depth = 0
        while self.accept("*"):
            depth += 1
        name_token = self.expect("id")
        ctype = self._apply_pointers(base, depth)
        # Array parameters decay to pointers.
        if self.accept("["):
            self.accept("num")
            self.expect("]")
            ctype = PointerType(ctype)
        return ast.Parameter(line=name_token.line, ctype=ctype,
                             name=name_token.value)

    def _parse_global_tail(self, program, base_type, pointer_depth,
                           name_token):
        while True:
            ctype = self._apply_pointers(base_type, pointer_depth)
            line = name_token.line
            if self.accept("["):
                count_token = self.accept("num")
                self.expect("]")
                count = count_token.value if count_token else 0
                ctype = ArrayType(element=ctype, count=count)
            initializer = None
            if self.accept("="):
                initializer = self._parse_global_initializer(ctype)
                if (ctype.is_array() and ctype.count == 0
                        and isinstance(initializer, list)):
                    ctype = ArrayType(element=ctype.element,
                                      count=len(initializer))
            program.globals.append(ast.GlobalVar(
                line=line, ctype=ctype, name=name_token.value,
                initializer=initializer))
            if not self.accept(","):
                break
            pointer_depth = 0
            while self.accept("*"):
                pointer_depth += 1
            name_token = self.expect("id")
        self.expect(";")

    def _parse_global_initializer(self, ctype):
        if self.accept("{"):
            items = []
            while self.peek().kind != "}":
                items.append(self._parse_initializer_item())
                if not self.accept(","):
                    break
            self.expect("}")
            return items
        return self._parse_initializer_item()

    def _parse_initializer_item(self):
        token = self.peek()
        if token.kind == "str":
            self.next()
            return ast.StringLiteral(line=token.line, value=token.value)
        if token.kind == "num":
            self.next()
            return ast.NumberLiteral(line=token.line, value=token.value)
        if token.kind == "-" and self.peek(1).kind == "num":
            self.next()
            number = self.next()
            return ast.NumberLiteral(line=token.line, value=-number.value)
        raise MiniCSyntaxError("unsupported global initializer",
                               token.line)

    # ------------------------------------------------------------------
    # Statements

    def _parse_block(self):
        open_token = self.expect("{")
        block = ast.Block(line=open_token.line)
        while self.peek().kind != "}":
            block.statements.append(self._parse_statement())
        self.expect("}")
        return block

    def _parse_statement(self):
        token = self.peek()
        kind = token.kind
        if kind == "{":
            return self._parse_block()
        if kind in ("int", "char", "unsigned", "static"):
            return self._parse_local_declaration()
        if kind == "if":
            return self._parse_if()
        if kind == "while":
            return self._parse_while()
        if kind == "do":
            return self._parse_do_while()
        if kind == "for":
            return self._parse_for()
        if kind == "switch":
            return self._parse_switch()
        if kind == "return":
            self.next()
            value = None
            if self.peek().kind != ";":
                value = self._parse_expression()
            self.expect(";")
            return ast.Return(line=token.line, value=value)
        if kind == "break":
            self.next()
            self.expect(";")
            return ast.Break(line=token.line)
        if kind == "continue":
            self.next()
            self.expect(";")
            return ast.Continue(line=token.line)
        if kind == ";":
            self.next()
            return ast.Block(line=token.line)
        expression = self._parse_expression()
        self.expect(";")
        return ast.ExpressionStatement(line=token.line,
                                       expression=expression)

    def _parse_local_declaration(self):
        self.accept("static")
        base = self._parse_base_type()
        declarations = []
        line = self.peek().line
        while True:
            depth = 0
            while self.accept("*"):
                depth += 1
            name_token = self.expect("id")
            ctype = self._apply_pointers(base, depth)
            if self.accept("["):
                count = self.expect("num").value
                self.expect("]")
                ctype = ArrayType(element=ctype, count=count)
            initializer = None
            if self.accept("="):
                initializer = self._parse_assignment_expression()
            declarations.append(ast.Declaration(
                line=name_token.line, ctype=ctype,
                name=name_token.value, initializer=initializer))
            if not self.accept(","):
                break
        self.expect(";")
        if len(declarations) == 1:
            return declarations[0]
        return ast.Block(line=line, statements=declarations)

    def _parse_if(self):
        token = self.expect("if")
        self.expect("(")
        condition = self._parse_expression()
        self.expect(")")
        then_branch = self._parse_statement()
        else_branch = None
        if self.accept("else"):
            else_branch = self._parse_statement()
        return ast.If(line=token.line, condition=condition,
                      then_branch=then_branch, else_branch=else_branch)

    def _parse_while(self):
        token = self.expect("while")
        self.expect("(")
        condition = self._parse_expression()
        self.expect(")")
        body = self._parse_statement()
        return ast.While(line=token.line, condition=condition, body=body)

    def _parse_do_while(self):
        token = self.expect("do")
        body = self._parse_statement()
        self.expect("while")
        self.expect("(")
        condition = self._parse_expression()
        self.expect(")")
        self.expect(";")
        return ast.DoWhile(line=token.line, condition=condition, body=body)

    def _parse_for(self):
        token = self.expect("for")
        self.expect("(")
        init = None
        if self.peek().kind != ";":
            init = ast.ExpressionStatement(
                line=token.line, expression=self._parse_expression())
        self.expect(";")
        condition = None
        if self.peek().kind != ";":
            condition = self._parse_expression()
        self.expect(";")
        step = None
        if self.peek().kind != ")":
            step = self._parse_expression()
        self.expect(")")
        body = self._parse_statement()
        return ast.For(line=token.line, init=init, condition=condition,
                       step=step, body=body)

    def _parse_switch(self):
        token = self.expect("switch")
        self.expect("(")
        expression = self._parse_expression()
        self.expect(")")
        self.expect("{")
        cases = []
        seen_default = False
        while self.peek().kind != "}":
            case_token = self.peek()
            if self.accept("case"):
                value = self._parse_case_constant()
                self.expect(":")
                cases.append(ast.SwitchCase(line=case_token.line,
                                            value=value))
            elif self.accept("default"):
                if seen_default:
                    raise MiniCSyntaxError("duplicate default label",
                                           case_token.line)
                seen_default = True
                self.expect(":")
                cases.append(ast.SwitchCase(line=case_token.line,
                                            value=None))
            else:
                if not cases:
                    raise MiniCSyntaxError(
                        "statement before first case label",
                        case_token.line)
                cases[-1].statements.append(self._parse_statement())
        self.expect("}")
        return ast.Switch(line=token.line, expression=expression,
                          cases=cases)

    def _parse_case_constant(self):
        negative = bool(self.accept("-"))
        token = self.expect("num")
        return -token.value if negative else token.value

    # ------------------------------------------------------------------
    # Expressions

    def _parse_expression(self):
        return self._parse_assignment_expression()

    def _parse_assignment_expression(self):
        left = self._parse_conditional()
        token = self.peek()
        if token.kind in _ASSIGN_OPS:
            self.next()
            value = self._parse_assignment_expression()
            return ast.Assignment(line=token.line, op=token.kind,
                                  target=left, value=value)
        return left

    def _parse_conditional(self):
        condition = self._parse_binary(0)
        if self.accept("?"):
            then_value = self._parse_expression()
            self.expect(":")
            else_value = self._parse_conditional()
            return ast.Conditional(line=condition.line, condition=condition,
                                   then_value=then_value,
                                   else_value=else_value)
        return condition

    def _parse_binary(self, level):
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        operators = _BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self.peek().kind in operators:
            token = self.next()
            right = self._parse_binary(level + 1)
            left = ast.BinaryOp(line=token.line, op=token.kind,
                                left=left, right=right)
        return left

    def _parse_unary(self):
        token = self.peek()
        kind = token.kind
        if kind in ("-", "~", "!", "*", "&"):
            self.next()
            operand = self._parse_unary()
            if (kind == "-" and isinstance(operand, ast.NumberLiteral)):
                return ast.NumberLiteral(line=token.line,
                                         value=-operand.value)
            return ast.UnaryOp(line=token.line, op=kind, operand=operand)
        if kind in ("++", "--"):
            self.next()
            target = self._parse_unary()
            return ast.IncDec(line=token.line, op=kind, target=target,
                              prefix=True)
        if kind == "sizeof":
            self.next()
            self.expect("(")
            inner = self.peek()
            if inner.kind in ("int", "char", "unsigned", "void"):
                base = self._parse_base_type()
                depth = 0
                while self.accept("*"):
                    depth += 1
                self.expect(")")
                return ast.SizeOf(line=token.line,
                                  target=self._apply_pointers(base, depth))
            name = self.expect("id")
            self.expect(")")
            return ast.SizeOf(line=token.line,
                              target=ast.Identifier(line=name.line,
                                                    name=name.value))
        return self._parse_postfix()

    def _parse_postfix(self):
        expression = self._parse_primary()
        while True:
            token = self.peek()
            if token.kind == "(" and isinstance(expression, ast.Identifier):
                self.next()
                args = []
                if self.peek().kind != ")":
                    while True:
                        args.append(self._parse_assignment_expression())
                        if not self.accept(","):
                            break
                self.expect(")")
                expression = ast.Call(line=token.line,
                                      name=expression.name, args=args)
            elif token.kind == "[":
                self.next()
                index = self._parse_expression()
                self.expect("]")
                expression = ast.Index(line=token.line, base=expression,
                                       index=index)
            elif token.kind in ("++", "--"):
                self.next()
                expression = ast.IncDec(line=token.line, op=token.kind,
                                        target=expression, prefix=False)
            else:
                return expression

    def _parse_primary(self):
        token = self.next()
        if token.kind == "num":
            return ast.NumberLiteral(line=token.line, value=token.value)
        if token.kind == "str":
            return ast.StringLiteral(line=token.line, value=token.value)
        if token.kind == "id":
            return ast.Identifier(line=token.line, name=token.value)
        if token.kind == "(":
            expression = self._parse_expression()
            self.expect(")")
            return expression
        raise MiniCSyntaxError("unexpected token %r" % (token.value,),
                               token.line)


def parse(source):
    """Parse mini-C *source* into an :class:`ast.Program`."""
    return Parser(tokenize(source)).parse_program()
