"""AST node definitions for mini-C."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Node:
    line: int = 0


# --- expressions -------------------------------------------------------

@dataclass
class NumberLiteral(Node):
    value: int = 0


@dataclass
class StringLiteral(Node):
    value: bytes = b""


@dataclass
class Identifier(Node):
    name: str = ""


@dataclass
class BinaryOp(Node):
    op: str = ""
    left: Node = None
    right: Node = None


@dataclass
class UnaryOp(Node):
    op: str = ""       # "-", "~", "!", "*", "&"
    operand: Node = None


@dataclass
class Assignment(Node):
    op: str = "="      # "=", "+=", "-=", ...
    target: Node = None
    value: Node = None


@dataclass
class IncDec(Node):
    op: str = "++"
    target: Node = None
    prefix: bool = False


@dataclass
class Call(Node):
    name: str = ""
    args: list = field(default_factory=list)


@dataclass
class Index(Node):
    base: Node = None
    index: Node = None


@dataclass
class SizeOf(Node):
    target: object = None   # Identifier or CType


@dataclass
class Conditional(Node):
    condition: Node = None
    then_value: Node = None
    else_value: Node = None


# --- statements --------------------------------------------------------

@dataclass
class Block(Node):
    statements: list = field(default_factory=list)


@dataclass
class Declaration(Node):
    ctype: object = None
    name: str = ""
    initializer: Node = None


@dataclass
class ExpressionStatement(Node):
    expression: Node = None


@dataclass
class If(Node):
    condition: Node = None
    then_branch: Node = None
    else_branch: Node = None


@dataclass
class While(Node):
    condition: Node = None
    body: Node = None


@dataclass
class DoWhile(Node):
    condition: Node = None
    body: Node = None


@dataclass
class For(Node):
    init: Node = None
    condition: Node = None
    step: Node = None
    body: Node = None


@dataclass
class SwitchCase(Node):
    value: object = None        # int constant, or None for default
    statements: list = field(default_factory=list)


@dataclass
class Switch(Node):
    expression: Node = None
    cases: list = field(default_factory=list)


@dataclass
class Return(Node):
    value: Node = None


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


# --- top level ---------------------------------------------------------

@dataclass
class Parameter(Node):
    ctype: object = None
    name: str = ""


@dataclass
class FunctionDef(Node):
    return_type: object = None
    name: str = ""
    parameters: list = field(default_factory=list)
    body: Block = None


@dataclass
class GlobalVar(Node):
    ctype: object = None
    name: str = ""
    initializer: object = None   # NumberLiteral | StringLiteral | list


@dataclass
class Program(Node):
    functions: list = field(default_factory=list)
    globals: list = field(default_factory=list)
