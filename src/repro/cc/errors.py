"""Mini-C compiler error types."""

from __future__ import annotations


class MiniCError(Exception):
    """Base class for compiler errors."""

    def __init__(self, message, line=None):
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)
        self.line = line


class MiniCSyntaxError(MiniCError):
    """Lexer/parser error."""


class MiniCTypeError(MiniCError):
    """Semantic/type error."""
