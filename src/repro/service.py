"""Campaign service front-end: ``repro serve``.

The service layer turns the warm worker fleet
(:mod:`repro.injection.fleet`) into a persistent local daemon: an
asyncio front-end on a Unix socket accepts
:class:`~repro.injection.campaign.CampaignSpec` submissions from any
number of concurrent clients and streams results back as JSON lines
while the shared fleet interleaves every campaign's work units.  The
payoff is the warm path: the second submission for a campaign cell
reuses the fleet's cached daemons, golden runs and breakpoint-session
snapshots, skipping the reference execution entirely.

Wire protocol (one JSON object per line, both directions)::

    -> {"op": "submit", "spec": {"daemon": "ftpd", "client": "Client1",
        "encoding": "old", "fault_model": "branch-bit"},
        "options": {"max_points": 40, "journal": "...", ...}}
    <- {"event": "accepted", "campaign": "c0000", "points": 120,
        "units": 9, "warm": false}
    <- {"event": "unit", "campaign": "c0000", "unit": "u00003",
        "completed": 52, "total": 120,
        "results": [{..record.., "order": 17}, ...],
        "quarantined": [...]}          # per completed work unit
    <- {"event": "done", "campaign": "c0000", "counts": {...},
        "quarantined": 0, "timing": {...}, "metrics": {...}}
    <- {"event": "checkpoint", "campaign": "c0000", "reason":
        "SIGTERM", "journal": "...", "completed": 52}
    <- {"event": "error", ...} | {"event": "rejected", "reason": ...}

A second verb subscribes a connection to the fleet's live telemetry
plane (:mod:`repro.obs.events`)::

    -> {"op": "subscribe"}
    <- {"event": "subscribed"}
    <- {"event": "telemetry", "type": "unit-finished",
        "campaign": "c0000", "seq": 7, "ts": ..., ...}   # per event
    <- {"event": "telemetry-end"}                        # at drain

Subscribers are pure observers: result streaming, its ordering and
the deterministic metrics core are byte-for-byte unaffected by any
number of attached subscribers.  Registration happens on the
dispatcher thread -- the only thread that emits -- with a replay of
the bus's ring first, so a subscriber's per-campaign sequence numbers
are contiguous (gap-free, duplicate-free) from the moment it attaches.

Every streamed record carries its ``order`` index in the campaign's
enumeration, so a client re-sorts the stream into exactly the serial
result list no matter how units interleaved -- the scheduler's
determinism argument, extended over the wire.

Threading: the asyncio loop owns the socket; a single dispatcher
thread owns the :class:`~repro.injection.fleet.WorkerFleet` (daemon
builds, scheduling, supervision) and ships events back with
``loop.call_soon_threadsafe``.  SIGTERM drains the fleet through the
checkpoint protocol -- every in-flight campaign stops at a
journal-consistent boundary, clients get a ``checkpoint`` event with
the resume journal, and the process exits 0.
"""

from __future__ import annotations

import asyncio
import json
import queue
import signal
import socket as _socket
import threading
import traceback

from .injection.campaign import CampaignSpec
from .injection.fleet import FleetConfig, WorkerFleet
from .injection.runner import CampaignInterrupted
from .obs.events import EventBus
from .obs.log import get_logger

_LOGGER = get_logger("service")

#: campaign options a submission may set (everything else is rejected:
#: callables and runner internals do not cross the wire).
SUBMIT_OPTIONS = frozenset((
    "max_points", "journal", "resume", "retries", "prune",
    "audit_fraction", "audit_seed", "forensics", "trace", "metrics",
    "journal_fsync", "journal_salvage", "full_restore", "budget",
    "profile",
))


def default_socket_path():
    return "repro-service.sock"


class ServiceError(RuntimeError):
    pass


class _ClientCampaign:
    """One accepted submission: links a fleet campaign id to the
    asyncio queue its connection streams from."""

    def __init__(self, cid, events, connection):
        self.cid = cid
        self.events = events          # asyncio.Queue
        self.connection = connection


class CampaignService:
    """The ``repro serve`` daemon.

    ``quota`` bounds in-flight campaigns per client connection;
    further submissions are rejected (not queued) so one client cannot
    monopolise the fleet.
    """

    def __init__(self, socket_path=None, config=None, quota=2):
        self.socket_path = (socket_path if socket_path is not None
                            else default_socket_path())
        self.config = config if config is not None else FleetConfig()
        self.quota = quota
        self.fleet = None
        self._loop = None
        self._requests = queue.Queue()
        self._active = {}             # cid -> _ClientCampaign
        self._daemons = {}            # daemon name -> built daemon
        self._stopping = threading.Event()
        self._stop_event = None
        self._drain_reason = None
        self._dispatcher = None
        self._streams = set()
        #: the fleet's live telemetry bus and the asyncio queues of
        #: attached ``subscribe`` connections (mutated only on the
        #: dispatcher thread, except for discards on disconnect).
        self.telemetry = EventBus()
        self._subscribers = set()

    # -- entry point ---------------------------------------------------

    def run(self):
        """Serve until SIGTERM/SIGINT; returns 0 after a clean drain."""
        asyncio.run(self._serve())
        return 0

    async def _serve(self):
        self._loop = asyncio.get_running_loop()
        self.fleet = WorkerFleet(self.config,
                                 telemetry=self.telemetry)
        self.telemetry.subscribe(self._on_telemetry)
        self.fleet.start()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="fleet-dispatcher",
            daemon=True)
        self._dispatcher.start()
        server = await asyncio.start_unix_server(
            self._handle_connection, path=self.socket_path)
        stop = self._stop_event = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum, self._request_stop,
                    signal.Signals(signum).name)
            except (NotImplementedError, RuntimeError):
                pass      # not the main thread (embedded/test use)
        _LOGGER.info("serving on %s (%d workers, quota %d)",
                     self.socket_path, self.config.workers, self.quota)
        async with server:
            await stop.wait()
        # Drain: the dispatcher checkpoints every in-flight campaign
        # (clients get their checkpoint events), then exits.
        await self._loop.run_in_executor(
            None, self._dispatcher.join,
            self.config.drain_timeout + 30)
        if self._streams:
            # every stream has a terminal event queued now; let them
            # write it out before the sockets go away
            await asyncio.wait(self._streams, timeout=10)
        self.fleet.stop()
        _LOGGER.info("drained; exiting 0")

    def _request_stop(self, name):
        if self._drain_reason is None:
            _LOGGER.warning("%s received: draining service", name)
            self._drain_reason = name
            self._stopping.set()
            self._stop_event.set()

    def shutdown(self, reason="shutdown"):
        """Programmatic SIGTERM equivalent: drain and exit.  Safe to
        call from any thread (embedded service in tests)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._request_stop,
                                            reason)

    # -- asyncio side: one task per client connection ------------------

    async def _handle_connection(self, reader, writer):
        connection = {"in_flight": 0, "writer": writer,
                      "lock": asyncio.Lock()}
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError:
                    await self._send(connection, {
                        "event": "rejected",
                        "reason": "request is not valid JSON"})
                    continue
                await self._handle_request(connection, request)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # loop teardown with the connection still open (normal for
            # a subscriber riding out the drain): exit quietly.
            pass
        finally:
            writer.close()

    async def _handle_request(self, connection, request):
        if request.get("op") == "subscribe":
            await self._subscribe(connection)
            return
        if request.get("op") != "submit":
            await self._send(connection, {
                "event": "rejected",
                "reason": "unknown op %r" % request.get("op")})
            return
        if self._stopping.is_set():
            await self._send(connection, {
                "event": "rejected", "reason": "service is draining"})
            return
        if connection["in_flight"] >= self.quota:
            await self._send(connection, {
                "event": "rejected",
                "reason": "quota exceeded (%d campaign(s) in flight)"
                % connection["in_flight"]})
            return
        options = request.get("options") or {}
        unknown = set(options) - SUBMIT_OPTIONS
        if unknown:
            await self._send(connection, {
                "event": "rejected",
                "reason": "unsupported option(s): %s"
                % ", ".join(sorted(unknown))})
            return
        try:
            spec = CampaignSpec(**(request.get("spec") or {}))
        except TypeError as error:
            await self._send(connection, {
                "event": "rejected", "reason": "bad spec: %s" % error})
            return
        connection["in_flight"] += 1
        events = asyncio.Queue()
        self._requests.put(("submit", spec, options, events,
                            connection))
        # stream this campaign's events until its terminal event
        task = asyncio.ensure_future(self._stream(connection, events))
        self._streams.add(task)
        task.add_done_callback(self._streams.discard)

    async def _subscribe(self, connection):
        """Attach this connection to the telemetry plane.  The ack is
        written before the dispatcher registers the queue, so the
        ``subscribed`` line always precedes the first telemetry line;
        registration itself happens on the dispatcher thread (with a
        ring replay) so sequences arrive contiguous."""
        await self._send(connection, {"event": "subscribed"})
        events = asyncio.Queue()
        self._requests.put(("subscribe", events))
        task = asyncio.ensure_future(
            self._stream_telemetry(connection, events))
        self._streams.add(task)
        task.add_done_callback(self._streams.discard)

    async def _stream_telemetry(self, connection, events):
        try:
            while True:
                event = await events.get()
                if event is None:           # drain sentinel
                    await self._send(connection,
                                     {"event": "telemetry-end"})
                    return
                await self._send(connection,
                                 {"event": "telemetry", **event})
        except (ConnectionResetError, BrokenPipeError):
            pass          # observer went away; campaigns are unmoved
        finally:
            self._subscribers.discard(events)

    async def _stream(self, connection, events):
        while True:
            event = await events.get()
            try:
                await self._send(connection, event)
            except (ConnectionResetError, BrokenPipeError):
                # client went away; the campaign itself keeps running
                # (its journal is the durable output).
                pass
            if event.get("event") in ("done", "checkpoint", "error",
                                      "rejected"):
                connection["in_flight"] -= 1
                return

    async def _send(self, connection, event):
        async with connection["lock"]:
            writer = connection["writer"]
            writer.write((json.dumps(event) + "\n").encode())
            await writer.drain()

    def _push(self, events, event):
        self._loop.call_soon_threadsafe(events.put_nowait, event)

    # -- dispatcher thread: owns the fleet -----------------------------

    def _dispatch_loop(self):
        try:
            while True:
                self._admit_requests()
                if self._stopping.is_set():
                    self._drain()
                    return
                self.fleet.pump()
                self._finalize_finished()
        except Exception:
            _LOGGER.error("dispatcher crashed:\n%s",
                          traceback.format_exc())
            for client in list(self._active.values()):
                self._push(client.events, {
                    "event": "error", "campaign": client.cid,
                    "detail": "service dispatcher crashed"})
            raise

    def _on_telemetry(self, event):
        """Bus callback (runs on the emitting dispatcher thread):
        fan the event out to every subscriber queue."""
        loop = self._loop
        if loop is None:
            return
        for events in list(self._subscribers):
            self._push(events, dict(event))

    def _admit_requests(self):
        while True:
            try:
                item = self._requests.get_nowait()
            except queue.Empty:
                return
            kind = item[0]
            if kind == "subscribe":
                # Replay the ring, then go live -- all on this thread,
                # the only emitter, so the hand-off is seamless.
                events = item[1]
                for event in self.telemetry.events():
                    self._push(events, dict(event))
                self._subscribers.add(events)
                continue
            __, spec, options, events, connection = item
            assert kind == "submit"
            try:
                client = self._submit(spec, options, events,
                                      connection)
            except Exception as error:
                self._push(events, {
                    "event": "rejected",
                    "reason": "%s: %s" % (type(error).__name__,
                                          error)})
                continue
            self._active[client.cid] = client

    def _submit(self, spec, options, events, connection):
        daemon = self._daemons.get(spec.daemon)
        if daemon is None:
            daemon = spec.build_daemon()
            self._daemons[spec.daemon] = daemon
        warm = ("%s:%s:%s" % (type(daemon).__name__, spec.client,
                              options.get("budget",
                                          _default_budget()))
                in self.fleet.goldens)
        client = _ClientCampaign(None, events, connection)

        def on_unit(state, unit, payload):
            order = state.scheduler.order
            results = []
            for record in payload["results"]:
                record = dict(record)
                record["order"] = order[_record_key_of(record)]
                results.append(record)
            self._push(events, {
                "event": "unit", "campaign": client.cid,
                "unit": unit.unit_id,
                "completed": state.scheduler.completed,
                "total": state.scheduler.total,
                "results": results,
                "quarantined": list(payload["quarantined"]),
            })

        cid = self.fleet.submit(
            daemon, spec.client, spec.client_factory(),
            encoding=spec.encoding, fault_model=spec.fault_model,
            on_unit=on_unit, **options)
        client.cid = cid
        state = self.fleet.campaigns[cid]
        self._push(events, {
            "event": "accepted", "campaign": cid,
            "points": state.scheduler.total,
            "units": len(state.scheduler.units), "warm": warm})
        return client

    def _finalize_finished(self):
        for cid in list(self._active):
            if not self.fleet.finished(cid):
                continue
            client = self._active.pop(cid)
            self._finalize(client)

    def _finalize(self, client):
        cid = client.cid
        try:
            campaign = self.fleet.finalize(cid)
        except CampaignInterrupted as interrupted:
            self._push(client.events, {
                "event": "checkpoint", "campaign": cid,
                "reason": interrupted.reason,
                "journal": interrupted.journal,
                "completed": interrupted.completed})
            return
        except Exception:
            self._push(client.events, {
                "event": "error", "campaign": cid,
                "detail": traceback.format_exc()})
            return
        self._push(client.events, {
            "event": "done", "campaign": cid,
            "counts": campaign.counts(),
            "quarantined": campaign.quarantined_count,
            "activated": campaign.activated_count,
            "crash_latencies": campaign.crash_latencies(),
            "by_location": campaign.by_location(),
            "timing": campaign.timing,
            "metrics": campaign.metrics,
        })

    def _drain(self):
        reason = self._drain_reason or "shutdown"
        if any(not self.fleet.finished(cid) for cid in self._active):
            self.fleet.drain(reason)
        for cid in list(self._active):
            client = self._active.pop(cid)
            self._finalize(client)
        for events in list(self._subscribers):
            self._push(events, None)      # telemetry-end sentinel
        self._subscribers.clear()


def _default_budget():
    from .apps.common import CONNECTION_INSTRUCTION_BUDGET
    return CONNECTION_INSTRUCTION_BUDGET


def _record_key_of(record):
    from .injection.parallel import _record_key
    return _record_key(record)


# ----------------------------------------------------------------------
# Client side

class ServiceClient:
    """Synchronous line-protocol client for :class:`CampaignService`.

    One client holds one connection; several campaigns can be
    submitted on it (up to the server's quota) and their event streams
    are demultiplexed by campaign id.
    """

    def __init__(self, socket_path):
        self.socket_path = socket_path
        self._sock = _socket.socket(_socket.AF_UNIX,
                                    _socket.SOCK_STREAM)
        self._sock.connect(socket_path)
        self._reader = self._sock.makefile("r")
        self._pending = {}            # cid -> buffered events
        self._unclaimed = []          # events before their cid is known

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def submit(self, spec, **options):
        """Send one submission; returns the ``accepted`` event (or
        raises :class:`ServiceError` on rejection)."""
        if isinstance(spec, CampaignSpec):
            spec = {"daemon": spec.daemon, "client": spec.client,
                    "encoding": spec.encoding,
                    "fault_model": spec.fault_model}
        request = {"op": "submit", "spec": spec, "options": options}
        self._sock.sendall((json.dumps(request) + "\n").encode())
        event = self._next_event()
        if event.get("event") == "rejected":
            raise ServiceError(event.get("reason", "rejected"))
        if event.get("event") != "accepted":
            raise ServiceError("expected accepted, got %r" % event)
        return event

    def subscribe(self):
        """Attach this connection to the service's telemetry plane
        (op ``subscribe``).  Use a dedicated connection: telemetry
        lines interleave with nothing else there, and campaign
        submissions elsewhere are unaffected."""
        request = {"op": "subscribe"}
        self._sock.sendall((json.dumps(request) + "\n").encode())
        event = self._read()
        if event.get("event") == "rejected":
            raise ServiceError(event.get("reason", "rejected"))
        if event.get("event") != "subscribed":
            raise ServiceError("expected subscribed, got %r" % event)
        return event

    def telemetry(self):
        """Iterate telemetry events until the service drains
        (``telemetry-end``) or the connection closes.  Non-telemetry
        events are buffered for their campaign streams."""
        while True:
            try:
                event = self._read()
            except ServiceError:
                return                    # connection closed
            kind = event.get("event")
            if kind == "telemetry-end":
                return
            if kind != "telemetry":
                self._pending.setdefault(event.get("campaign"),
                                         []).append(event)
                continue
            yield event

    def events(self, campaign):
        """Iterate one campaign's events through its terminal event."""
        while True:
            event = self._next_for(campaign)
            yield event
            if event.get("event") in ("done", "checkpoint", "error"):
                return

    def collect(self, campaign):
        """Consume one campaign to completion.  Returns ``(done_event,
        results)`` with ``results`` re-sorted into exact enumeration
        order by each record's ``order`` index; raises
        :class:`ServiceError` on checkpoint or error."""
        records = []
        for event in self.events(campaign):
            if event["event"] == "unit":
                records.extend(event["results"])
            elif event["event"] == "done":
                records.sort(key=lambda record: record["order"])
                return event, records
            elif event["event"] == "checkpoint":
                raise ServiceError(
                    "campaign %s checkpointed (%s); resume from %s"
                    % (campaign, event.get("reason"),
                       event.get("journal")))
            else:
                raise ServiceError(event.get("detail", "error"))

    # -- demultiplexing ------------------------------------------------

    def _next_event(self):
        """Next event that is not yet claimed by a campaign stream
        (used for submit acknowledgements)."""
        while True:
            event = self._read()
            cid = event.get("campaign")
            if event.get("event") in ("accepted", "rejected"):
                return event
            self._pending.setdefault(cid, []).append(event)

    def _next_for(self, campaign):
        buffered = self._pending.get(campaign)
        if buffered:
            return buffered.pop(0)
        while True:
            event = self._read()
            if event.get("campaign") == campaign:
                return event
            self._pending.setdefault(event.get("campaign"),
                                     []).append(event)

    def _read(self):
        line = self._reader.readline()
        if not line:
            raise ServiceError("service connection closed")
        return json.loads(line)


def run_remote_campaign(socket_path, spec, **options):
    """One-shot convenience: submit *spec* to a running service and
    block until done.  Returns ``(done_event, results)`` like
    :meth:`ServiceClient.collect`."""
    with ServiceClient(socket_path) as client:
        accepted = client.submit(spec, **options)
        return client.collect(accepted["campaign"])
