"""Tiny in-memory filesystem backing open/read/close syscalls.

wu-ftpd's RETR path is part of the break-in criterion: a run counts as
BRK only if the unauthorised client actually *retrieves a file*.  The
filesystem provides those files deterministically.
"""

from __future__ import annotations

O_RDONLY = 0


class FileSystem:
    """Path -> bytes mapping with a trivial open-file table."""

    def __init__(self, files=None):
        self.files = dict(files or {})

    def add_file(self, path, content):
        if isinstance(content, str):
            content = content.encode("latin-1")
        self.files[path] = bytes(content)

    def exists(self, path):
        return path in self.files

    def read(self, path):
        return self.files[path]

    def clone(self):
        """Independent copy; file contents are immutable bytes and
        stay shared."""
        return FileSystem(self.files)


class OpenFile:
    """Kernel-side open file description with a cursor."""

    __slots__ = ("path", "data", "position")

    def __init__(self, path, data):
        self.path = path
        self.data = data
        self.position = 0

    def read(self, count):
        chunk = self.data[self.position:self.position + count]
        self.position += len(chunk)
        return chunk

    def clone(self):
        twin = OpenFile(self.path, self.data)
        twin.position = self.position
        return twin


def default_ftp_files():
    """The file tree served by the reproduction's FTP daemon."""
    return {
        "/pub/readme.txt": b"Welcome to the repro FTP archive.\n",
        "/pub/data.bin": bytes(range(64)),
        "/etc/motd": b"research testbed - authorized use only\n",
    }
