"""OS substrate: syscalls, channels, filesystem, accounts."""

from .channels import (Channel, CLIENT_TO_SERVER, ScriptedClient,
                       SERVER_TO_CLIENT)
from .errors import KernelError, ServerHang
from .filesystem import FileSystem, OpenFile, default_ftp_files
from .passwd import (Account, CRYPT_ALPHABET, PasswdDatabase, crypt13,
                     default_database)
from .syscalls import Kernel

__all__ = [
    "Channel", "ScriptedClient", "SERVER_TO_CLIENT", "CLIENT_TO_SERVER",
    "KernelError", "ServerHang", "FileSystem", "OpenFile",
    "default_ftp_files", "Account", "PasswdDatabase", "crypt13",
    "CRYPT_ALPHABET", "default_database", "Kernel",
]
