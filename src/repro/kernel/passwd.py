"""Account database and the deterministic ``crypt()`` replacement.

The password check in both target daemons is the paper's Example 1:

    if (... && (strcmp(xpasswd, pw->pw_passwd) == 0)) { rval = 0; }

where ``xpasswd = crypt(password, salt)``.  Real DES-crypt is beside
the point for a control-flow study, so this module defines CRYPT13, a
small deterministic 13-character hash with the same shape as Unix
crypt output (2 salt chars + 11 hash chars).  The identical algorithm
is implemented in mini-C inside the daemon runtime
(:mod:`repro.cc.runtime`); this Python twin generates the stored
hashes baked into the daemon's data segment and lets tests verify the
emulated computation bit-for-bit.

All arithmetic is modulo 2**32 so the emulated IA-32 code and this
reference produce identical strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

CRYPT_ALPHABET = ("./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                  "abcdefghijklmnopqrstuvwxyz")

_MASK32 = 0xFFFFFFFF


def crypt13(password, salt):
    """Hash *password* with the 2-character *salt* -> 13-char string.

    Mirrors ``crypt13()`` in the mini-C runtime; both use two parallel
    32-bit mixers (a djb2 variant and FNV-1a) and draw output symbols
    from LCG steps, alternating between the two states.
    """
    if isinstance(password, str):
        password = password.encode("latin-1")
    if isinstance(salt, str):
        salt = salt.encode("latin-1")
    salt = (salt + b"..")[:2]
    h1 = 5381
    h2 = 0x811C9DC5
    for byte in salt + password:
        h1 = (h1 * 33 + byte) & _MASK32
        h2 = ((h2 ^ byte) * 16777619) & _MASK32
    out = bytearray(salt)
    for position in range(11):
        if position % 2 == 0:
            h1 = (h1 * 1103515245 + 12345) & _MASK32
            index = (h1 >> 16) & 63
        else:
            h2 = (h2 * 69069 + 1) & _MASK32
            index = (h2 >> 16) & 63
        out.append(ord(CRYPT_ALPHABET[index]))
    return out.decode("latin-1")


@dataclass
class Account:
    """One /etc/passwd-style entry plus the study's policy bits."""

    name: str
    password: str
    uid: int = 1000
    salt: str = "ab"
    #: listed in /etc/ftpusers (wu-ftpd denies these even with the
    #: right password).
    denied: bool = False
    #: the account's home host appears in hosts.equiv / ~/.rhosts, so
    #: sshd's auth_rhosts() can admit it without a password.
    rhosts_allowed: bool = False
    #: account accepts an empty password (sshd permit_empty_passwd).
    empty_password_ok: bool = False

    @property
    def password_hash(self):
        return crypt13(self.password, self.salt)

    def clone(self):
        return Account(self.name, self.password, self.uid, self.salt,
                       self.denied, self.rhosts_allowed,
                       self.empty_password_ok)


@dataclass
class PasswdDatabase:
    """The account set shared by both daemons and all clients."""

    accounts: list = field(default_factory=list)

    def add(self, account):
        self.accounts.append(account)
        return account

    def lookup(self, name):
        for account in self.accounts:
            if account.name == name:
                return account
        return None

    def __iter__(self):
        return iter(self.accounts)

    def __len__(self):
        return len(self.accounts)

    def clone(self):
        return PasswdDatabase([account.clone() for account in self])


def default_database():
    """The fixed account population used across experiments.

    ``alice`` is the existing user the paper's Client1/Client2 target;
    ``bob`` exercises the denied-users check; ``trusted`` exists so
    sshd's rhosts entry point is live (the multi-entry-point structure
    the paper blames for sshd's higher break-in rate).
    """
    db = PasswdDatabase()
    db.add(Account("alice", "correcthorse", uid=1001, salt="al"))
    db.add(Account("bob", "builder123", uid=1002, salt="bo", denied=True))
    db.add(Account("carol", "wonderland", uid=1003, salt="ca"))
    db.add(Account("trusted", "sesame42", uid=1004, salt="tr",
                   rhosts_allowed=True))
    return db
