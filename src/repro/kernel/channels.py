"""Duplex byte channels connecting the emulated server to a scripted
client.

The channel records a full wire transcript.  Outcome classification
(NM vs FSV vs BRK) compares transcripts against the golden run, so the
transcript is normalised: consecutive chunks in the same direction are
coalesced, because the *number of write() calls* is not part of the
protocol -- only the byte stream and its interleaving are.
"""

from __future__ import annotations

from .errors import ServerHang

SERVER_TO_CLIENT = "S"
CLIENT_TO_SERVER = "C"


class Channel:
    """Rendezvous between one server process and one scripted client."""

    def __init__(self, client):
        self.client = client
        self.to_server = bytearray()
        self.transcript = []
        client.attach(self)

    # -- client side ---------------------------------------------------

    def client_send(self, data):
        if not data:
            return
        self.to_server += data
        self._record(CLIENT_TO_SERVER, data)

    # -- server (syscall) side ------------------------------------------

    def server_write(self, data):
        if not data:
            return 0
        self._record(SERVER_TO_CLIENT, data)
        self.client.receive(bytes(data))
        return len(data)

    def server_read(self, count):
        if not self.to_server:
            self.client.input_needed()
        if not self.to_server:
            if self.client.finished():
                return b""  # EOF: client closed the connection
            raise ServerHang("server read() with client waiting for %s"
                             % self.client.describe_wait())
        taken = bytes(self.to_server[:count])
        del self.to_server[:len(taken)]
        return taken

    # -- transcript ------------------------------------------------------

    def _record(self, direction, data):
        if self.transcript and self.transcript[-1][0] == direction:
            self.transcript[-1] = (direction,
                                   self.transcript[-1][1] + bytes(data))
        else:
            self.transcript.append((direction, bytes(data)))

    def normalized_transcript(self):
        return tuple(self.transcript)

    # -- snapshot protocol ---------------------------------------------

    def clone(self):
        """Independent copy of the channel and its attached client.

        Transcript entries are (direction, bytes) tuples -- immutable --
        so copying the list is enough; the client is cloned through its
        own protocol so no mutable state is shared with the original.
        """
        twin = Channel.__new__(Channel)
        twin.client = self.client.clone()
        twin.to_server = bytearray(self.to_server)
        twin.transcript = list(self.transcript)
        twin.client.attach(twin)
        return twin

    def rewind_to(self, pristine):
        """Reset this channel (a since-run clone of *pristine*) back to
        *pristine*'s state in place -- no new objects, so the hot
        restore path reuses memory that is already cache-warm."""
        self.to_server[:] = pristine.to_server
        self.transcript[:] = pristine.transcript
        self.client.rewind_to(pristine.client, self)


class ScriptedClient:
    """Base class for protocol clients driven by server output.

    Subclasses implement :meth:`receive` (react to server bytes,
    possibly queueing input with ``self.send``) and may override
    :meth:`input_needed` for protocols where the client speaks first.
    """

    def __init__(self):
        self.channel = None
        self.closed = False

    def attach(self, channel):
        self.channel = channel

    def clone(self):
        """Independent copy of the client's scripted state.

        Client state across all registered daemons is flat: ints,
        bools, bytes, strings, and lists/dicts/sets of those.  The
        generic copy handles every subclass; anything deeper must
        override.  The clone is detached (``channel=None``) until a
        Channel adopts it.
        """
        twin = object.__new__(type(self))
        state = twin.__dict__
        state.update(self.__dict__)
        state["channel"] = None
        for name, value in self.__dict__.items():
            if isinstance(value, (list, set, dict, bytearray)):
                state[name] = type(value)(value)
        return twin

    def rewind_to(self, pristine, channel):
        """Reset this client (a since-run clone of *pristine*) back to
        *pristine*'s scripted state in place, attached to *channel*.

        Same flat-state contract as :meth:`clone`; the full clear +
        update means attributes the run added or retyped cannot
        survive into the next experiment.
        """
        state = self.__dict__
        state.clear()
        state.update(pristine.__dict__)
        state["channel"] = channel
        for name, value in pristine.__dict__.items():
            if isinstance(value, (list, set, dict, bytearray)):
                state[name] = type(value)(value)

    def send(self, data):
        if isinstance(data, str):
            data = data.encode("latin-1")
        self.channel.client_send(data)

    def close(self):
        self.closed = True

    def receive(self, data):
        raise NotImplementedError

    def input_needed(self):
        """Called when the server reads with an empty input buffer."""

    def finished(self):
        return self.closed

    def describe_wait(self):
        return "client input"
