"""Duplex byte channels connecting the emulated server to a scripted
client.

The channel records a full wire transcript.  Outcome classification
(NM vs FSV vs BRK) compares transcripts against the golden run, so the
transcript is normalised: consecutive chunks in the same direction are
coalesced, because the *number of write() calls* is not part of the
protocol -- only the byte stream and its interleaving are.
"""

from __future__ import annotations

from .errors import ServerHang

SERVER_TO_CLIENT = "S"
CLIENT_TO_SERVER = "C"


class Channel:
    """Rendezvous between one server process and one scripted client."""

    def __init__(self, client):
        self.client = client
        self.to_server = bytearray()
        self.transcript = []
        client.attach(self)

    # -- client side ---------------------------------------------------

    def client_send(self, data):
        if not data:
            return
        self.to_server += data
        self._record(CLIENT_TO_SERVER, data)

    # -- server (syscall) side ------------------------------------------

    def server_write(self, data):
        if not data:
            return 0
        self._record(SERVER_TO_CLIENT, data)
        self.client.receive(bytes(data))
        return len(data)

    def server_read(self, count):
        if not self.to_server:
            self.client.input_needed()
        if not self.to_server:
            if self.client.finished():
                return b""  # EOF: client closed the connection
            raise ServerHang("server read() with client waiting for %s"
                             % self.client.describe_wait())
        taken = bytes(self.to_server[:count])
        del self.to_server[:len(taken)]
        return taken

    # -- transcript ------------------------------------------------------

    def _record(self, direction, data):
        if self.transcript and self.transcript[-1][0] == direction:
            self.transcript[-1] = (direction,
                                   self.transcript[-1][1] + bytes(data))
        else:
            self.transcript.append((direction, bytes(data)))

    def normalized_transcript(self):
        return tuple(self.transcript)


class ScriptedClient:
    """Base class for protocol clients driven by server output.

    Subclasses implement :meth:`receive` (react to server bytes,
    possibly queueing input with ``self.send``) and may override
    :meth:`input_needed` for protocols where the client speaks first.
    """

    def __init__(self):
        self.channel = None
        self.closed = False

    def attach(self, channel):
        self.channel = channel

    def send(self, data):
        if isinstance(data, str):
            data = data.encode("latin-1")
        self.channel.client_send(data)

    def close(self):
        self.closed = True

    def receive(self, data):
        raise NotImplementedError

    def input_needed(self):
        """Called when the server reads with an empty input buffer."""

    def finished(self):
        return self.closed

    def describe_wait(self):
        return "client input"
