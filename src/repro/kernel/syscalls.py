"""Linux i386 syscall layer (int 0x80).

Implements the handful of calls the daemons use -- exit, read, write,
open, close, time, getpid -- with Linux's *error semantics*, which
matter for fault fidelity: a corrupted pointer handed to read() yields
``-EFAULT``, not a crash; a corrupted syscall number yields
``-ENOSYS``.  Both keep the process alive and wandering, which is how
long transient vulnerability windows (Figure 4's tail) come about.
"""

from __future__ import annotations

import posixpath

from ..emu.machine_exceptions import PageFault
from ..x86.registers import EAX, EBX, ECX, EDX
from .channels import Channel
from .errors import KernelError
from .filesystem import FileSystem, OpenFile

ENOENT = 2
EBADF = 9
EFAULT = 14
EINVAL = 22
ENOSYS = 38

SYS_EXIT = 1
SYS_READ = 3
SYS_WRITE = 4
SYS_OPEN = 5
SYS_CLOSE = 6
SYS_TIME = 13
SYS_GETPID = 20

# Bounds a corrupted length register so one bad write() cannot stall
# the campaign; Linux would cap at the VMA boundary similarly.
MAX_IO_CHUNK = 1 << 16

_FIXED_TIME = 0x3B9ACA00  # 2001-09-09, deterministic
_FIXED_PID = 1207


class Kernel:
    """Per-connection kernel state: one socket channel + fd table."""

    def __init__(self, channel=None, filesystem=None):
        self.channel = channel
        self.filesystem = filesystem or FileSystem()
        self.stderr_log = bytearray()
        self.open_files = {}
        self.next_fd = 3
        self.syscall_count = 0
        #: (instret, byte_count) per successful socket write; lets the
        #: propagation analysis tell which messages left the server
        #: after the execution diverged from the golden run.
        self.write_events = []

    @classmethod
    def for_client(cls, client, filesystem=None):
        return cls(Channel(client), filesystem)

    def clone(self):
        """Independent copy of all per-connection state.

        Replaces ``copy.deepcopy`` on the snapshot-restore path: every
        mutable field is copied explicitly (channel and open-file
        cursors through their own ``clone()``), immutable payloads
        (file bytes, write-event tuples) stay shared.
        """
        twin = Kernel.__new__(Kernel)
        twin.channel = (self.channel.clone()
                        if self.channel is not None else None)
        twin.filesystem = self.filesystem.clone()
        twin.stderr_log = bytearray(self.stderr_log)
        twin.open_files = {fd: handle.clone()
                           for fd, handle in self.open_files.items()}
        twin.next_fd = self.next_fd
        twin.syscall_count = self.syscall_count
        twin.write_events = list(self.write_events)
        return twin

    def rewind_to(self, pristine):
        """Reset this kernel (a since-run ``clone()`` of *pristine*)
        back to *pristine*'s state in place, and return it.

        The restore hot path prefers this over a fresh ``clone()``:
        rewinding mutates the object graph the last experiment already
        touched instead of allocating a new one, so it costs a few
        container copies instead of ~ten allocations into cold memory.
        Callers own the aliasing consequence -- the kernel a
        ``run_with_*`` call returned is rewound, not replaced, by the
        next one.  The filesystem is left alone: no syscall mutates it
        (files are added only at daemon setup; open-file cursors live
        in ``open_files``).
        """
        if self.channel is not None:
            self.channel.rewind_to(pristine.channel)
        self.stderr_log[:] = pristine.stderr_log
        if self.open_files:
            self.open_files.clear()
        for fd, handle in pristine.open_files.items():
            self.open_files[fd] = handle.clone()
        self.next_fd = pristine.next_fd
        self.syscall_count = pristine.syscall_count
        self.write_events[:] = pristine.write_events
        return self

    # ------------------------------------------------------------------

    def syscall(self, cpu):
        self.syscall_count += 1
        number = cpu.regs[EAX]
        if number == SYS_EXIT:
            cpu.halted = True
            cpu.exit_code = cpu.regs[EBX] & 0xFF
            return
        if number == SYS_READ:
            result = self._read(cpu, cpu.regs[EBX], cpu.regs[ECX],
                                cpu.regs[EDX])
        elif number == SYS_WRITE:
            result = self._write(cpu, cpu.regs[EBX], cpu.regs[ECX],
                                 cpu.regs[EDX])
        elif number == SYS_OPEN:
            result = self._open(cpu, cpu.regs[EBX])
        elif number == SYS_CLOSE:
            result = self._close(cpu.regs[EBX])
        elif number == SYS_TIME:
            result = _FIXED_TIME
        elif number == SYS_GETPID:
            result = _FIXED_PID
        else:
            result = -ENOSYS
        cpu.regs[EAX] = result & 0xFFFFFFFF

    # ------------------------------------------------------------------

    def _read(self, cpu, fd, buffer, count):
        count = min(count, MAX_IO_CHUNK)
        if fd == 0:
            if self.channel is None:
                raise KernelError("no channel attached")
            data = self.channel.server_read(count)
        elif fd in self.open_files:
            data = self.open_files[fd].read(count)
        else:
            return -EBADF
        try:
            cpu.memory.write_bytes(buffer, data, cpu.eip)
        except PageFault:
            return -EFAULT
        return len(data)

    def _write(self, cpu, fd, buffer, count):
        count = min(count, MAX_IO_CHUNK)
        try:
            data = cpu.memory.read_bytes(buffer, count, cpu.eip)
        except PageFault:
            return -EFAULT
        if fd == 1:
            if self.channel is None:
                raise KernelError("no channel attached")
            written = self.channel.server_write(data)
            self.write_events.append((cpu.instret, written))
            return written
        if fd == 2:
            self.stderr_log += data
            return len(data)
        return -EBADF

    def _open(self, cpu, path_pointer):
        try:
            raw = cpu.memory.read_cstring(path_pointer, 512, cpu.eip)
        except PageFault:
            return -EFAULT
        # The kernel resolves ".." components like a real VFS would --
        # which is exactly why the *daemon* must validate file names
        # (the traversal-attack extension exercises that check).
        path = posixpath.normpath(raw.decode("latin-1", "replace"))
        if not self.filesystem.exists(path):
            return -ENOENT
        fd = self.next_fd
        self.next_fd += 1
        self.open_files[fd] = OpenFile(path, self.filesystem.read(path))
        return fd

    def _close(self, fd):
        if fd in self.open_files:
            del self.open_files[fd]
            return 0
        if fd in (0, 1, 2):
            return 0
        return -EBADF
