"""Kernel-level control-flow exceptions.

These are *host-level* conditions, not CPU faults: they abort the
emulated run from inside a syscall, the way a watchdog or client-side
timeout would in the paper's NFTAPE testbed.
"""

from __future__ import annotations


class ServerHang(Exception):
    """The server blocked on a read no client will ever satisfy.

    In the physical experiment this shows up as the client hanging
    until a timeout; the paper files those runs under fail-silence
    violations ("the server skips sending a required message the
    client is waiting for, making the client hang").
    """

    def __init__(self, detail=""):
        super().__init__(detail or "server blocked waiting for input")


class KernelError(Exception):
    """Internal kernel invariant violation (a bug, not an outcome)."""
