"""repro -- reproduction of "An Experimental Study of Security
Vulnerabilities Caused by Errors" (Xu, Chen, Kalbarczyk, Iyer;
DSN 2001).

The package rebuilds the study's entire stack from scratch:

* :mod:`repro.x86` -- an IA-32 subset assembler/decoder with the real
  opcode layout (the contiguous conditional-branch blocks are the
  paper's root cause).
* :mod:`repro.emu` -- a CPU emulator with faithful fault semantics
  (#UD/#GP/#PF -> SIGILL/SIGSEGV) and process images.
* :mod:`repro.kernel` -- syscalls, sockets, filesystem, accounts.
* :mod:`repro.cc` -- a mini-C compiler emitting gcc-1999 idioms.
* :mod:`repro.apps` -- wu-ftpd- and sshd-like daemons written in
  mini-C, plus the paper's scripted clients.
* :mod:`repro.injection` -- NFTAPE-style selective exhaustive
  single-bit injection, outcome classification (NA/NM/SD/FSV/BRK),
  campaigns, and the random-injection testbed.
* :mod:`repro.encoding` -- the Table 4 branch re-encoding scheme and
  its map->flip->map-back evaluation.
* :mod:`repro.analysis` -- builders and ASCII renderers for Tables
  1/3/5 and Figure 4.

Quickstart::

    from repro.apps.ftpd import FtpDaemon, client1
    from repro.injection import run_campaign

    campaign = run_campaign(FtpDaemon(), "Client1", client1)
    print(campaign.counts())
"""

__version__ = "1.0.0"

__all__ = ["x86", "emu", "kernel", "cc", "apps", "injection",
           "encoding", "analysis"]
