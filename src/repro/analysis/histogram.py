"""Figure 4: histogram of instructions executed between error
activation and crash, in log2 bins.

The paper's X axis is log scale: "bin(x) includes all crashes between
2^(x-1) and 2^x instructions".  The summary statistics quantify the
*transient window of vulnerability*: the paper reports 91.5 % of
crashes within 100 instructions and a tail past 16 000.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LatencyHistogram:
    """Log2-binned crash-latency distribution."""

    bins: list                 # bins[x] = crashes with 2^(x-1) < n <= 2^x
    latencies: list

    @property
    def total(self):
        return len(self.latencies)

    def fraction_within(self, limit):
        if not self.latencies:
            return 0.0
        within = sum(1 for value in self.latencies if value <= limit)
        return within / len(self.latencies)

    def fraction_beyond(self, limit):
        # An empty campaign has no crashes at all, hence no crashes
        # beyond the limit -- not "all of them" (1 - 0.0 would report
        # a 100% transient window for zero observations).
        if not self.latencies:
            return 0.0
        return 1.0 - self.fraction_within(limit)

    def max_latency(self):
        return max(self.latencies) if self.latencies else 0

    def transient_window_share(self, threshold=100):
        """Fraction of crashes forming a transient vulnerability
        window (latency above *threshold* instructions)."""
        return self.fraction_beyond(threshold)


def build_histogram(latencies, max_bin=None):
    """Bin crash latencies the way Figure 4 does."""
    latencies = [max(1, int(value)) for value in latencies]
    if not latencies:
        return LatencyHistogram(bins=[], latencies=[])
    highest = max(latencies)
    bin_count = max(1, (highest - 1).bit_length()) + 1
    if max_bin is not None:
        bin_count = min(bin_count, max_bin)
    bins = [0] * bin_count
    for value in latencies:
        index = (value - 1).bit_length()   # 1 -> bin 0, 2 -> 1, 3..4 -> 2
        index = min(index, bin_count - 1)
        bins[index] += 1
    return LatencyHistogram(bins=bins, latencies=sorted(latencies))


def format_histogram(histogram, width=50):
    """ASCII rendering of Figure 4."""
    lines = ["instructions between error and crash (log2 bins)"]
    peak = max(histogram.bins) if histogram.bins else 1
    for index, count in enumerate(histogram.bins):
        low = 1 if index == 0 else (1 << (index - 1)) + 1
        high = 1 << index
        bar = "#" * max(1 if count else 0,
                        int(round(width * count / peak)))
        if (index == len(histogram.bins) - 1
                and histogram.max_latency() > high):
            # build_histogram(max_bin=...) folded every overflow
            # latency into this bin, so its upper edge is open.
            label = "%21s" % (">= %d" % low)
        else:
            label = "%10s-%-10s" % (low, high)
        lines.append("%s |%5d %s" % (label, count, bar))
    lines.append("total crashes: %d" % histogram.total)
    lines.append("within 100 instructions: %.1f%%"
                 % (100 * histogram.fraction_within(100)))
    lines.append("beyond 100 instructions (transient window): %.1f%%"
                 % (100 * histogram.fraction_beyond(100)))
    lines.append("max latency: %d instructions" % histogram.max_latency())
    return "\n".join(lines)
