"""Error propagation analysis (the paper's Section 7 future work:
"exploring error propagation and its impact on system security").

For one injection experiment, the analyzer records the executed-EIP
stream and register file of both the golden and the injected run from
the activation point onward, and reports:

* the *divergence latency* -- how many instructions after activation
  the control flow first departs from the golden path (0 for a flipped
  taken/not-taken decision, larger when the corrupt instruction's
  damage is initially latent in data);
* which registers diverge first (data-error propagation);
* how many messages and bytes the wounded server sent to the network
  *after* the divergence -- the observable content of a transient
  vulnerability window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps.common import CONNECTION_INSTRUCTION_BUDGET
from ..emu import Process
from ..injection.injector import BreakpointSession
from ..kernel import ServerHang
from ..obs.forensics import first_divergence
from ..obs.ring import TraceRecorder
from ..x86.registers import REG32_NAMES


@dataclass
class PropagationReport:
    """How one single-bit error spread through the system."""

    activated: bool
    exit_kind: str = ""
    #: instructions from activation until the EIP stream first differs
    #: from the golden run (None = never diverged).
    divergence_latency: int | None = None
    first_divergent_eip: int | None = None
    golden_eip_at_divergence: int | None = None
    #: register name -> instructions-after-activation of first
    #: divergence (only registers that ever diverged).
    register_divergence: dict = field(default_factory=dict)
    #: socket messages/bytes the server sent at or after the control
    #: divergence point.
    messages_after_divergence: int = 0
    bytes_after_divergence: int = 0
    #: total instructions executed after activation.
    instructions_after_activation: int = 0

    @property
    def diverged(self):
        return self.divergence_latency is not None


def analyze_propagation(daemon, client_factory, instruction_address,
                        flip_address, bit,
                        budget=CONNECTION_INSTRUCTION_BUDGET,
                        max_trace=50_000):
    """Run one experiment twice (clean and flipped) and diff the
    post-activation execution.  Returns a :class:`PropagationReport`.
    """
    golden = _trace_from_breakpoint(daemon, client_factory,
                                    instruction_address, budget,
                                    flip=None, max_trace=max_trace)
    if golden is None:
        return PropagationReport(activated=False)
    injected = _trace_from_breakpoint(daemon, client_factory,
                                      instruction_address, budget,
                                      flip=(flip_address, bit),
                                      max_trace=max_trace)
    golden_trace, __, ___ = golden
    trace, kernel, status = injected

    report = PropagationReport(activated=True, exit_kind=status.kind,
                               instructions_after_activation=len(
                                   trace.eips))

    # Control-flow divergence: first index where the EIP streams
    # differ (shared with the forensics CLI's divergence locator).
    divergence_index = first_divergence(golden_trace.eips, trace.eips)

    if divergence_index is not None:
        report.divergence_latency = divergence_index
        if divergence_index < len(trace.eips):
            report.first_divergent_eip = trace.eips[divergence_index]
        if divergence_index < len(golden_trace.eips):
            report.golden_eip_at_divergence = \
                golden_trace.eips[divergence_index]

    # Register divergence: first index per register.
    compare_length = min(len(trace.regs), len(golden_trace.regs))
    for register in range(8):
        for index in range(compare_length):
            if trace.regs[index][register] \
                    != golden_trace.regs[index][register]:
                report.register_divergence[REG32_NAMES[register]] = index
                break

    # Network traffic after the divergence.  write_events hold absolute
    # instret values; activation was at (final instret minus the
    # post-activation trace length) of the injected run.
    if divergence_index is not None:
        activation_point = status.instret - len(trace.eips)
        divergence_instret = activation_point + divergence_index
        for event_instret, byte_count in kernel.write_events:
            if event_instret >= divergence_instret:
                report.messages_after_divergence += 1
                report.bytes_after_divergence += byte_count
    return report


def _trace_from_breakpoint(daemon, client_factory, instruction_address,
                           budget, flip, max_trace=None):
    """Run to the breakpoint, then trace the remainder (optionally with
    the bit flipped).  Returns (recorder, kernel, status) or None when
    the breakpoint is never reached."""
    client = client_factory()
    kernel = daemon.make_kernel(client)
    process = Process(daemon.module, kernel)
    arrival = process.run_until(instruction_address, budget)
    if arrival.kind != "breakpoint":
        return None
    if flip is not None:
        process.flip_bit(*flip)
    # Head capture (repro.obs.ring.TraceRecorder): divergence is
    # searched from the activation point forward, so the *first*
    # max_trace instructions are the ones that matter.
    recorder = TraceRecorder(limit=max_trace)
    process.cpu.trace_hook = recorder.hook
    try:
        status = process.run(budget)
    except ServerHang:
        status = process._status("limit", None)
        status.kind = "hang"
    return recorder, kernel, status


def format_propagation(report):
    """Human-readable rendering of a report."""
    if not report.activated:
        return "error not activated"
    lines = ["propagation report (%s)" % report.exit_kind]
    if report.diverged:
        lines.append("  control flow diverged %d instruction(s) after "
                     "activation" % report.divergence_latency)
        if report.first_divergent_eip is not None:
            lines.append("    corrupted path at 0x%x (golden path at "
                         "0x%x)" % (report.first_divergent_eip,
                                    report.golden_eip_at_divergence
                                    or 0))
    else:
        lines.append("  control flow never diverged")
    if report.register_divergence:
        worst = sorted(report.register_divergence.items(),
                       key=lambda item: item[1])
        lines.append("  registers diverged: "
                     + ", ".join("%s@+%d" % item for item in worst))
    lines.append("  messages sent after divergence: %d (%d bytes)"
                 % (report.messages_after_divergence,
                    report.bytes_after_divergence))
    return "\n".join(lines)
