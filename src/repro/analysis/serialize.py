"""Campaign result serialization.

Campaigns take minutes; downstream analysis (plots, cross-machine
comparisons, regression tracking) wants the raw per-experiment records
without re-running anything.  This module round-trips
:class:`~repro.injection.campaign.CampaignResult` through plain JSON.
"""

from __future__ import annotations

import json

from ..injection.campaign import CampaignResult
from ..injection.outcomes import InjectionResult
from ..injection.targets import InjectionPoint

SCHEMA_VERSION = 1


def campaign_to_dict(campaign):
    """Plain-data snapshot of a campaign (golden run omitted: it is
    reproducible from the daemon + client name)."""
    return {
        "schema": SCHEMA_VERSION,
        "daemon": campaign.daemon_name,
        "client": campaign.client_name,
        "encoding": campaign.encoding,
        "results": [_result_to_dict(result)
                    for result in campaign.results],
    }


def _result_to_dict(result):
    point = result.point
    return {
        "address": point.instruction_address,
        "byte_offset": point.byte_offset,
        "bit": point.bit,
        "length": point.instruction_length,
        "mnemonic": point.mnemonic,
        "opcode": point.opcode,
        "kind": point.kind,
        "location": result.location,
        "outcome": result.outcome,
        "activated": result.activated,
        "activation_instret": result.activation_instret,
        "exit_kind": result.exit_kind,
        "exit_code": result.exit_code,
        "signal": result.signal,
        "crash_latency": result.crash_latency,
        "broke_in": result.broke_in,
        "detail": result.detail,
    }


def campaign_from_dict(payload):
    """Rebuild a :class:`CampaignResult` (without the golden run)."""
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError("unsupported schema %r" % payload.get("schema"))
    campaign = CampaignResult(daemon_name=payload["daemon"],
                              client_name=payload["client"],
                              encoding=payload["encoding"])
    for record in payload["results"]:
        point = InjectionPoint(
            instruction_address=record["address"],
            byte_offset=record["byte_offset"],
            bit=record["bit"],
            instruction_length=record["length"],
            mnemonic=record["mnemonic"],
            opcode=record["opcode"],
            kind=record["kind"])
        campaign.results.append(InjectionResult(
            point=point,
            location=record["location"],
            outcome=record["outcome"],
            activated=record["activated"],
            activation_instret=record["activation_instret"],
            exit_kind=record["exit_kind"],
            exit_code=record["exit_code"],
            signal=record["signal"],
            crash_latency=record["crash_latency"],
            broke_in=record["broke_in"],
            detail=record["detail"]))
    return campaign


def save_campaign(campaign, path):
    """Write a campaign to *path* as JSON."""
    with open(path, "w") as handle:
        json.dump(campaign_to_dict(campaign), handle, indent=1)


def load_campaign(path):
    """Read a campaign previously written by :func:`save_campaign`."""
    with open(path) as handle:
        return campaign_from_dict(json.load(handle))
