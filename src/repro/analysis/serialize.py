"""Campaign result serialization.

Campaigns take minutes; downstream analysis (plots, cross-machine
comparisons, regression tracking) wants the raw per-experiment records
without re-running anything.  This module round-trips
:class:`~repro.injection.campaign.CampaignResult` through plain JSON,
and exposes per-record converters (:func:`result_to_dict` /
:func:`result_from_dict`) used by the fault-tolerant runner's JSONL
journal.

Schema history: v1 had no ``crashed_after_breakin``,
``hang_eip_range`` or ``quarantined`` fields; v2 had no ``timing``;
v3's ``timing`` had no execution-engine ``perf`` counter dict (see
:class:`repro.emu.perf.PerfCounters`); v4 predates the fault-model
registry (no ``fault_model`` field, and every point record is a
branch-bit point with no ``ptype`` discriminator); v5 predates the
observability layer (no per-record ``forensics`` snapshot and no
campaign ``metrics`` registry dump -- both optional in v6 and simply
absent from older records); v6 predates equivalence-class pruning (no
per-record ``class_id``/``representative`` provenance -- optional in
v7, absent from exhaustive records).  Older payloads still load, with
the missing fields defaulted -- a v3/v4 payload loads as a
``branch-bit`` campaign, which is what it was.
"""

from __future__ import annotations

import json

from ..injection import faultmodels
from ..injection.campaign import CampaignResult, QuarantinedPoint
from ..injection.outcomes import InjectionResult

SCHEMA_VERSION = 7
_LOADABLE_SCHEMAS = (1, 2, 3, 4, 5, 6, 7)


def campaign_to_dict(campaign):
    """Plain-data snapshot of a campaign (golden run omitted: it is
    reproducible from the daemon + client name)."""
    return {
        "schema": SCHEMA_VERSION,
        "daemon": campaign.daemon_name,
        "client": campaign.client_name,
        "encoding": campaign.encoding,
        "fault_model": campaign.fault_model,
        "results": [result_to_dict(result)
                    for result in campaign.results],
        "quarantined": [quarantined_to_dict(entry)
                        for entry in campaign.quarantined],
        "timing": campaign.timing,
        "metrics": campaign.metrics,
    }


def point_to_dict(point):
    """Serialize any fault model's point.  Branch-bit points keep the
    legacy record shape (no ``ptype``); other models stamp their
    discriminator, which :func:`point_from_dict` dispatches on."""
    return faultmodels.point_to_dict(point)


def point_from_dict(record):
    return faultmodels.point_from_dict(record)


def result_to_dict(result):
    record = point_to_dict(result.point)
    record.update({
        "location": result.location,
        "outcome": result.outcome,
        "activated": result.activated,
        "activation_instret": result.activation_instret,
        "exit_kind": result.exit_kind,
        "exit_code": result.exit_code,
        "signal": result.signal,
        "crash_latency": result.crash_latency,
        "broke_in": result.broke_in,
        "crashed_after_breakin": result.crashed_after_breakin,
        "detail": result.detail,
        "hang_eip_range": (None if result.hang_eip_range is None
                           else list(result.hang_eip_range)),
    })
    # Optional and omitted when absent: journals stay one compact line
    # per record unless the campaign actually ran with forensics on.
    if result.forensics is not None:
        record["forensics"] = result.forensics
    # Same deal for pruning provenance: only multi-member equivalence
    # classes stamp it, so exhaustive journals are byte-identical to
    # pre-v7 ones (modulo the schema number).
    if result.class_id is not None:
        record["class_id"] = result.class_id
    if result.representative is not None:
        record["representative"] = result.representative
    return record


def result_from_dict(record):
    hang_eip_range = record.get("hang_eip_range")
    return InjectionResult(
        point=point_from_dict(record),
        location=record["location"],
        outcome=record["outcome"],
        activated=record["activated"],
        activation_instret=record["activation_instret"],
        exit_kind=record["exit_kind"],
        exit_code=record["exit_code"],
        signal=record["signal"],
        crash_latency=record["crash_latency"],
        broke_in=record["broke_in"],
        crashed_after_breakin=record.get("crashed_after_breakin",
                                         False),
        detail=record["detail"],
        hang_eip_range=(None if hang_eip_range is None
                        else tuple(hang_eip_range)),
        forensics=record.get("forensics"),
        class_id=record.get("class_id"),
        representative=record.get("representative"))


def quarantined_to_dict(entry):
    return {
        "point": point_to_dict(entry.point),
        "location": entry.location,
        "outcomes": list(entry.outcomes),
        "rounds": entry.rounds,
    }


def quarantined_from_dict(record):
    return QuarantinedPoint(
        point=point_from_dict(record["point"]),
        location=record["location"],
        outcomes=tuple(record["outcomes"]),
        rounds=record["rounds"])


# Pre-v3 private names, kept for callers of the old spelling.
_quarantined_to_dict = quarantined_to_dict
_quarantined_from_dict = quarantined_from_dict


def campaign_from_dict(payload):
    """Rebuild a :class:`CampaignResult` (without the golden run)."""
    if payload.get("schema") not in _LOADABLE_SCHEMAS:
        raise ValueError("unsupported schema %r" % payload.get("schema"))
    campaign = CampaignResult(daemon_name=payload["daemon"],
                              client_name=payload["client"],
                              encoding=payload["encoding"],
                              fault_model=payload.get("fault_model",
                                                      "branch-bit"))
    for record in payload["results"]:
        campaign.results.append(result_from_dict(record))
    for record in payload.get("quarantined", ()):
        campaign.quarantined.append(quarantined_from_dict(record))
    campaign.timing = payload.get("timing")
    campaign.metrics = payload.get("metrics")
    return campaign


def save_campaign(campaign, path):
    """Write a campaign to *path* as JSON."""
    with open(path, "w") as handle:
        json.dump(campaign_to_dict(campaign), handle, indent=1)


def load_campaign(path):
    """Read a campaign previously written by :func:`save_campaign`."""
    with open(path) as handle:
        return campaign_from_dict(json.load(handle))


def campaign_from_shard_journals(journal):
    """Reconstruct a :class:`CampaignResult` from the per-shard JSONL
    journals of a parallel campaign (see
    :mod:`repro.injection.parallel`).

    *journal* is either the campaign's base journal path (shard files
    are discovered as ``<journal>.shardK``) or an explicit iterable of
    shard file paths.  Results are ordered by point (address, byte,
    bit), which matches enumeration order for a contiguous auth
    section; tallies are order-independent either way.
    """
    from ..injection.parallel import (discover_shard_journals,
                                      load_shard_journals)
    if isinstance(journal, (str, bytes)) or hasattr(journal,
                                                    "__fspath__"):
        paths = discover_shard_journals(str(journal))
    else:
        paths = list(journal)
    if not paths:
        raise FileNotFoundError("no shard journals found for %r"
                                % journal)
    metas, results, quarantined = load_shard_journals(paths)
    for meta in metas[1:]:
        for field in ("daemon", "client", "encoding", "model"):
            if meta.get(field) != metas[0].get(field):
                raise ValueError(
                    "shard journals disagree on %s: %r vs %r"
                    % (field, metas[0].get(field), meta.get(field)))
    head = metas[0] if metas else {}
    campaign = CampaignResult(daemon_name=head.get("daemon", ""),
                              client_name=head.get("client", ""),
                              encoding=head.get("encoding", ""),
                              fault_model=head.get("model",
                                                   "branch-bit"))

    def point_order(record):
        return point_from_dict(record).sort_key

    for record in sorted(results.values(), key=point_order):
        campaign.results.append(result_from_dict(record))
    for record in sorted(quarantined.values(),
                         key=lambda entry: point_order(entry["point"])):
        campaign.quarantined.append(quarantined_from_dict(record))
    return campaign
