"""Self-contained HTML campaign report (``repro report``).

One journal (plus its ``.shardK`` files) in, one HTML file out: the
outcome distribution with percentages, the BRK+FSV location
breakdown, the Figure 4 crash-latency histogram, pruning statistics,
optional guest hotspots (from a ``--profile`` file) and an optional
supervision timeline (from an ``--events`` file).  The output embeds
its CSS and uses no scripts or external assets, so it can be attached
to a CI run or mailed around as a single artifact.

Everything is derived from journal record dicts -- the report never
re-runs experiments and never touches the deterministic metrics core.
"""

from __future__ import annotations

import html
import os
import time

#: canonical outcome display order (Table 1 row order).
OUTCOME_ORDER = ("NA", "NM", "FSV", "SD", "BRK", "HANG", "HF")

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 60em; color: #1a1a2e; }
h1 { border-bottom: 2px solid #1a1a2e; padding-bottom: .2em; }
h2 { margin-top: 1.6em; }
table { border-collapse: collapse; margin: .8em 0; }
th, td { border: 1px solid #bbb; padding: .25em .7em;
         text-align: right; }
th { background: #eef; }
td.label, th.label { text-align: left; }
.bar { background: #4a6fa5; display: inline-block; height: .8em; }
.muted { color: #777; font-size: .9em; }
pre { background: #f4f4f8; padding: .8em; overflow-x: auto; }
"""


def _load_journal_records(journal):
    """All result records, quarantine count, meta and unit markers
    from a base journal path and its shard files."""
    from ..injection.parallel import discover_shard_journals
    from ..injection.runner import CampaignJournal, JournalError
    paths = [journal] if os.path.exists(journal) else []
    paths += discover_shard_journals(journal)
    if not paths:
        raise FileNotFoundError("no journal at %s (or %s.shard*)"
                                % (journal, journal))
    meta = None
    records = {}
    quarantined = {}
    units = []
    for path in paths:
        try:
            shard_meta, results, shard_quarantined, report = \
                CampaignJournal.load_with_report(path, strict=False)
        except JournalError:
            continue
        if shard_meta is not None and meta is None:
            meta = shard_meta
        records.update(results)
        quarantined.update(shard_quarantined)
        units.extend(report.units)
    return meta, list(records.values()), len(quarantined), units


def _outcome_section(records, quarantined):
    tally = {}
    for record in records:
        outcome = record.get("outcome")
        tally[outcome] = tally.get(outcome, 0) + 1
    total = sum(tally.values())
    rows = []
    order = [o for o in OUTCOME_ORDER if o in tally]
    order += sorted(o for o in tally if o not in OUTCOME_ORDER)
    peak = max(tally.values()) if tally else 1
    for outcome in order:
        count = tally[outcome]
        pct = 100.0 * count / total if total else 0.0
        width = int(round(240.0 * count / peak))
        rows.append(
            "<tr><td class='label'>%s</td><td>%d</td>"
            "<td>%.1f%%</td><td class='label'>"
            "<span class='bar' style='width:%dpx'></span></td></tr>"
            % (html.escape(str(outcome)), count, pct, width))
    note = ("<p class='muted'>%d quarantined point(s) excluded from "
            "percentages.</p>" % quarantined if quarantined else "")
    return ("<h2>Outcome distribution</h2>"
            "<table><tr><th class='label'>outcome</th><th>count</th>"
            "<th>share</th><th class='label'></th></tr>%s</table>%s"
            % ("".join(rows), note))


def _location_section(records):
    tally = {}
    for record in records:
        if record.get("outcome") in ("BRK", "FSV", "HANG"):
            location = record.get("location") or "?"
            tally[location] = tally.get(location, 0) + 1
    if not tally:
        return ("<h2>BRK+FSV by location</h2>"
                "<p class='muted'>no BRK/FSV/HANG records.</p>")
    total = sum(tally.values())
    rows = "".join(
        "<tr><td class='label'>%s</td><td>%d</td><td>%.1f%%</td></tr>"
        % (html.escape(str(location)), count, 100.0 * count / total)
        for location, count in sorted(tally.items(),
                                      key=lambda kv: (-kv[1], kv[0])))
    return ("<h2>BRK+FSV by location</h2>"
            "<table><tr><th class='label'>location</th><th>count</th>"
            "<th>share</th></tr>%s</table>" % rows)


def _latency_section(records):
    from .histogram import build_histogram
    latencies = [record["crash_latency"] for record in records
                 if record.get("outcome") == "SD"
                 and record.get("crash_latency") is not None]
    if not latencies:
        return ("<h2>Crash latency (Figure 4)</h2>"
                "<p class='muted'>no SD records with a latency.</p>")
    histogram = build_histogram(latencies)
    peak = max(histogram.bins) if histogram.bins else 1
    rows = []
    for index, count in enumerate(histogram.bins):
        low = 1 if index == 0 else (1 << (index - 1)) + 1
        high = 1 << index
        width = int(round(240.0 * count / peak))
        rows.append(
            "<tr><td class='label'>%d..%d</td><td>%d</td>"
            "<td class='label'>"
            "<span class='bar' style='width:%dpx'></span></td></tr>"
            % (low, high, count, width))
    return ("<h2>Crash latency (Figure 4)</h2>"
            "<p class='muted'>instructions between activation and "
            "crash, log2 bins; %d SD crash(es), median %d.</p>"
            "<table><tr><th class='label'>instructions</th>"
            "<th>count</th><th class='label'></th></tr>%s</table>"
            % (len(latencies),
               histogram.latencies[len(histogram.latencies) // 2],
               "".join(rows)))


def _pruning_section(records):
    fanned = sum(1 for record in records if record.get("class_id"))
    executed = sum(1 for record in records
                   if record.get("class_id")
                   and record.get("representative"))
    if not fanned:
        return ("<h2>Pruning</h2><p class='muted'>exhaustive sweep "
                "(no equivalence-class records).</p>")
    synthesized = fanned - executed
    return ("<h2>Pruning</h2>"
            "<table><tr><th class='label'>records</th><th>count</th>"
            "</tr>"
            "<tr><td class='label'>in multi-member classes</td>"
            "<td>%d</td></tr>"
            "<tr><td class='label'>executed representatives</td>"
            "<td>%d</td></tr>"
            "<tr><td class='label'>synthesized members</td>"
            "<td>%d</td></tr></table>"
            "<p class='muted'>%.1f%% of classed records were "
            "synthesized from their representative.</p>"
            % (fanned, executed, synthesized,
               100.0 * synthesized / fanned))


def _hotspot_section(profile, module):
    from ..obs.sampler import resolve_samples
    samples = profile.get("samples") or {}
    parts = ["<h2>Guest hotspots</h2>",
             "<p class='muted'>deterministic EIP samples, period %d "
             "retired instruction(s).</p>"
             % profile.get("period", 0)]
    if not samples:
        parts.append("<p class='muted'>profile holds no samples.</p>")
    for phase in sorted(samples):
        counts = {int(eip_hex, 16): count
                  for eip_hex, count in samples[phase].items()}
        total = sum(counts.values())
        parts.append("<h3>%s (%d sample(s))</h3>"
                     % (html.escape(phase), total))
        if module is not None:
            rows = "".join(
                "<tr><td class='label'>%s</td><td>%d</td>"
                "<td>%.1f%%</td></tr>"
                % (html.escape(name), count, 100.0 * count / total)
                for name, count, __ in resolve_samples(
                    counts, module)[:12])
            parts.append(
                "<table><tr><th class='label'>function</th>"
                "<th>samples</th><th>share</th></tr>%s</table>" % rows)
        else:
            rows = "".join(
                "<tr><td class='label'>0x%x</td><td>%d</td></tr>"
                % (eip, count)
                for eip, count in sorted(counts.items(),
                                         key=lambda kv:
                                         (-kv[1], kv[0]))[:12])
            parts.append(
                "<table><tr><th class='label'>eip</th>"
                "<th>samples</th></tr>%s</table>"
                "<p class='muted'>(no module map available; raw "
                "addresses)</p>" % rows)
    volatile = (profile.get("volatile") or {}).get("host_seconds")
    if volatile:
        rows = "".join(
            "<tr><td class='label'>%s</td><td>%.3f</td></tr>"
            % (html.escape(name), seconds)
            for name, seconds in sorted(volatile.items()))
        parts.append("<h3>Host phases (wall seconds, volatile)</h3>"
                     "<table><tr><th class='label'>phase</th>"
                     "<th>seconds</th></tr>%s</table>" % rows)
    return "".join(parts)


_TIMELINE_TYPES = ("golden", "campaign-started", "worker-respawn",
                   "worker-backoff", "worker-retired", "checkpoint",
                   "campaign-finished")


def _timeline_section(events):
    shown = [event for event in events
             if event.get("type") in _TIMELINE_TYPES]
    if not shown:
        return ("<h2>Supervision timeline</h2><p class='muted'>no "
                "supervision events in the stream.</p>")
    base = min(event.get("ts", 0) for event in shown)
    rows = []
    for event in shown:
        detail = {key: value for key, value in event.items()
                  if key not in ("seq", "type", "campaign", "ts")}
        rows.append(
            "<tr><td>%+.2fs</td><td class='label'>%s</td>"
            "<td class='label'>%s</td><td class='label'>%s</td></tr>"
            % (event.get("ts", base) - base,
               html.escape(str(event.get("campaign"))),
               html.escape(str(event.get("type"))),
               html.escape(", ".join(
                   "%s=%s" % (key, value)
                   for key, value in sorted(detail.items())))))
    return ("<h2>Supervision timeline</h2>"
            "<table><tr><th>t</th><th class='label'>campaign</th>"
            "<th class='label'>event</th><th class='label'>detail"
            "</th></tr>%s</table>" % "".join(rows))


def _progress_section(units):
    from ..obs.top import format_eta, unit_progress
    if not units:
        return ""
    in_flight, done, total, first_ts, last_ts = unit_progress(units)
    parts = ["<h2>Work units</h2>",
             "<p>%d completed unit(s)" % done]
    if in_flight:
        parts.append(", %d still in flight (%s)"
                     % (len(in_flight),
                        html.escape(", ".join(
                            str(marker.get("unit"))
                            for marker in in_flight[:6]))))
    parts.append(".</p>")
    if first_ts is not None and last_ts is not None \
            and last_ts > first_ts:
        parts.append("<p class='muted'>marker window %s.</p>"
                     % format_eta(last_ts - first_ts))
    return "".join(parts)


def build_html_report(journal, events=None, profile=None, module=None,
                      title=None, generated=None):
    """The report as one HTML string.

    *events* is an event list (:func:`repro.obs.events
    .load_event_stream`), *profile* a profile dict
    (:func:`repro.obs.sampler.load_profile`) and *module* the compiled
    program module used to symbolize hotspots -- all optional.
    """
    meta, records, quarantined, units = _load_journal_records(journal)
    if title is None:
        if meta is not None:
            title = "%s %s (%s encoding)" % (meta.get("daemon"),
                                             meta.get("client"),
                                             meta.get("encoding"))
        else:
            title = os.path.basename(str(journal))
    generated = (time.strftime("%Y-%m-%d %H:%M:%S")
                 if generated is None else generated)
    sections = [
        "<h1>%s</h1>" % html.escape(title),
        "<p class='muted'>campaign report generated %s from %s "
        "(%d record(s)).</p>"
        % (html.escape(generated), html.escape(str(journal)),
           len(records)),
        _outcome_section(records, quarantined),
        _location_section(records),
        _latency_section(records),
        _pruning_section(records),
    ]
    if profile is not None:
        sections.append(_hotspot_section(profile, module))
    if events is not None:
        sections.append(_timeline_section(events))
    sections.append(_progress_section(units))
    return ("<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
            "<title>%s</title><style>%s</style></head>\n<body>\n"
            "%s\n</body></html>\n"
            % (html.escape(title), _STYLE, "\n".join(sections)))


def write_html_report(path, journal, events_path=None,
                      profile_path=None, module=None, title=None):
    """Build and write the report; returns *path*.

    Convenience wrapper loading the optional events / profile
    artifacts from disk (the CLI's entry point).
    """
    events = profile = None
    if events_path is not None:
        from ..obs.events import load_event_stream
        events = load_event_stream(events_path)
    if profile_path is not None:
        from ..obs.sampler import load_profile
        profile = load_profile(profile_path)
    content = build_html_report(journal, events=events,
                                profile=profile, module=module,
                                title=title)
    with open(path, "w") as handle:
        handle.write(content)
    return path
