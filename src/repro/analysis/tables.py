"""Builders for the paper's result tables.

* Table 1: outcome distribution per client (old encoding).
* Table 3: BRK+FSV breakdown by error location.
* Table 5: distributions under the new encoding plus FSV/BRK
  reduction rows.

Each builder consumes :class:`repro.injection.CampaignResult` objects
and produces plain data structures; :mod:`repro.analysis.report`
renders them in the paper's layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..injection.locations import ALL_LOCATIONS
from ..injection.outcomes import (FAIL_SILENCE_VIOLATION, NOT_ACTIVATED,
                                  NOT_MANIFESTED, SECURITY_BREAKIN,
                                  SYSTEM_DETECTION)

TABLE1_ROWS = (NOT_ACTIVATED, NOT_MANIFESTED, SYSTEM_DETECTION,
               FAIL_SILENCE_VIOLATION, SECURITY_BREAKIN)


@dataclass
class DistributionColumn:
    """One client's column in Table 1 / Table 5."""

    label: str
    counts: dict
    activated: int
    total_runs: int

    def percentage(self, outcome):
        if outcome == NOT_ACTIVATED or not self.activated:
            return None
        return 100.0 * self.counts.get(outcome, 0) / self.activated


def _short_app_name(daemon_name):
    lowered = daemon_name.lower()
    if "ftp" in lowered:
        return "FTP"
    if "ssh" in lowered:
        return "SSH"
    if "pop" in lowered:
        return "POP3"
    return daemon_name


def campaign_label(campaign):
    """Column header in the paper's style, e.g. ``"FTP Client1"``."""
    return "%s %s" % (_short_app_name(campaign.daemon_name),
                      campaign.client_name)


def distribution_column(campaign, label=None):
    """Summarise one campaign as a Table 1 column."""
    return DistributionColumn(
        label=label or campaign_label(campaign),
        counts=campaign.counts(),
        activated=campaign.activated_count,
        total_runs=campaign.total_runs)


def build_table1(campaigns):
    """Table 1: [DistributionColumn] in campaign order."""
    return [distribution_column(campaign) for campaign in campaigns]


@dataclass
class LocationColumn:
    """One client's column in Table 3 (BRK+FSV by location)."""

    label: str
    counts: dict
    total: int

    def percentage(self, location):
        if not self.total:
            return 0.0
        return 100.0 * self.counts.get(location, 0) / self.total


def build_table3(campaigns):
    """Table 3: BRK and FSV cases broken down by error location."""
    columns = []
    for campaign in campaigns:
        by_location = campaign.by_location(
            outcomes=(SECURITY_BREAKIN, FAIL_SILENCE_VIOLATION))
        total = sum(by_location.values())
        counts = {location: by_location.get(location, 0)
                  for location in ALL_LOCATIONS}
        columns.append(LocationColumn(
            label=campaign_label(campaign),
            counts=counts, total=total))
    return columns


@dataclass
class ReductionColumn:
    """Table 5 column: new-encoding distribution plus reductions."""

    label: str
    new: DistributionColumn
    old: DistributionColumn
    fsv_reduction_count: int = 0
    fsv_reduction_pct: float = 0.0
    brk_reduction_count: int = 0
    brk_reduction_pct: float = 0.0


def build_table5(pairs):
    """Table 5 from ``[(old_campaign, new_campaign)]`` pairs."""
    columns = []
    for old_campaign, new_campaign in pairs:
        old_column = distribution_column(old_campaign)
        new_column = distribution_column(new_campaign)
        old_counts = old_column.counts
        new_counts = new_column.counts
        fsv_drop = old_counts[FAIL_SILENCE_VIOLATION] \
            - new_counts[FAIL_SILENCE_VIOLATION]
        brk_drop = old_counts[SECURITY_BREAKIN] \
            - new_counts[SECURITY_BREAKIN]
        columns.append(ReductionColumn(
            label=new_column.label,
            new=new_column, old=old_column,
            fsv_reduction_count=fsv_drop,
            fsv_reduction_pct=(100.0 * fsv_drop
                               / old_counts[FAIL_SILENCE_VIOLATION]
                               if old_counts[FAIL_SILENCE_VIOLATION]
                               else 0.0),
            brk_reduction_count=brk_drop,
            brk_reduction_pct=(100.0 * brk_drop
                               / old_counts[SECURITY_BREAKIN]
                               if old_counts[SECURITY_BREAKIN] else 0.0)))
    return columns


def build_model_table(campaigns):
    """Extension table: outcome distribution per fault model.

    One :class:`DistributionColumn` per campaign, labelled by its
    fault-model name so sweeps over
    :func:`repro.injection.enumerate_specs` render side by side.  When
    several campaigns share a model (e.g. the same model over two
    daemons) the campaign label is prefixed to keep columns distinct.
    """
    from collections import Counter
    per_model = Counter(campaign.fault_model for campaign in campaigns)
    columns = []
    for campaign in campaigns:
        if per_model[campaign.fault_model] > 1:
            label = "%s %s" % (campaign_label(campaign),
                               campaign.fault_model)
        else:
            label = campaign.fault_model
        columns.append(distribution_column(campaign, label=label))
    return columns


@dataclass
class PaperComparison:
    """Paper-vs-measured record for EXPERIMENTS.md."""

    experiment: str
    metric: str
    paper_value: object
    measured_value: object
    note: str = ""


#: the paper's Table 1 percentages (of activated errors), for
#: comparison reports.
PAPER_TABLE1 = {
    ("FTP", "Client1"): {"NM": 46.80, "SD": 43.45, "FSV": 8.69,
                         "BRK": 1.07},
    ("FTP", "Client2"): {"NM": 39.12, "SD": 49.33, "FSV": 11.55,
                         "BRK": None},
    ("FTP", "Client3"): {"NM": 38.31, "SD": 55.04, "FSV": 6.65,
                         "BRK": None},
    ("FTP", "Client4"): {"NM": 30.10, "SD": 62.50, "FSV": 7.40,
                         "BRK": None},
    ("SSH", "Client1"): {"NM": 40.16, "SD": 52.42, "FSV": 5.89,
                         "BRK": 1.53},
    ("SSH", "Client2"): {"NM": 39.81, "SD": 52.47, "FSV": 7.72,
                         "BRK": None},
}

#: the paper's Table 5 reduction rows.
PAPER_TABLE5_REDUCTIONS = {
    ("FTP", "Client1"): {"FSV": 30.0, "BRK": 86.0},
    ("FTP", "Client2"): {"FSV": 40.0, "BRK": None},
    ("FTP", "Client3"): {"FSV": 21.0, "BRK": None},
    ("FTP", "Client4"): {"FSV": 30.0, "BRK": None},
    ("SSH", "Client1"): {"FSV": 38.36, "BRK": 21.05},
    ("SSH", "Client2"): {"FSV": 34.02, "BRK": None},
}
