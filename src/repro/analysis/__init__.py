"""Result analysis: table builders, Figure 4 histogram, reports."""

from .histogram import (build_histogram, format_histogram,
                        LatencyHistogram)
from .htmlreport import build_html_report, write_html_report
from .propagation import (analyze_propagation, format_propagation,
                          PropagationReport)
from .serialize import (campaign_from_dict,
                        campaign_from_shard_journals, campaign_to_dict,
                        load_campaign, point_from_dict, point_to_dict,
                        quarantined_from_dict, quarantined_to_dict,
                        result_from_dict, result_to_dict,
                        save_campaign)
from .report import (build_pruning_report, format_comparison,
                     format_forensics, format_model_table,
                     format_pruning_report, format_table1,
                     format_table3, format_table5)
from .tables import (build_model_table, build_table1, build_table3,
                     build_table5, campaign_label, DistributionColumn,
                     distribution_column, LocationColumn, PAPER_TABLE1,
                     PAPER_TABLE5_REDUCTIONS, PaperComparison,
                     ReductionColumn, TABLE1_ROWS)

__all__ = [
    "build_histogram", "format_histogram", "LatencyHistogram",
    "build_html_report", "write_html_report",
    "analyze_propagation", "format_propagation", "PropagationReport",
    "campaign_to_dict", "campaign_from_dict",
    "campaign_from_shard_journals", "save_campaign",
    "load_campaign", "result_to_dict", "result_from_dict",
    "point_to_dict", "point_from_dict", "quarantined_to_dict",
    "quarantined_from_dict",
    "format_table1", "format_table3", "format_table5",
    "format_model_table", "format_comparison", "format_forensics",
    "build_pruning_report", "format_pruning_report",
    "build_table1",
    "build_table3", "build_table5", "build_model_table",
    "campaign_label",
    "DistributionColumn", "distribution_column", "LocationColumn",
    "ReductionColumn", "PaperComparison", "PAPER_TABLE1",
    "PAPER_TABLE5_REDUCTIONS", "TABLE1_ROWS",
]
