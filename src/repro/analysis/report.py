"""ASCII rendering of the reproduced tables, in the paper's layout."""

from __future__ import annotations

from ..injection.locations import ALL_LOCATIONS
from .tables import TABLE1_ROWS


def _cell(count, percentage):
    if percentage is None:
        return "%6d      -  " % count if count else "     -      -  "
    return "%6d %6.2f%%" % (count, percentage)


def format_table1(columns, title="Result Distributions"):
    """Render Table 1 / the distribution half of Table 5."""
    header = "Type " + "".join("%15s" % column.label[-12:]
                               for column in columns)
    lines = [title, header]
    for outcome in TABLE1_ROWS:
        cells = []
        for column in columns:
            count = column.counts.get(outcome, 0)
            if outcome == "NA":
                cells.append("%6d      -  " % count)
            elif count == 0 and outcome == "BRK":
                cells.append("     -      -  ")
            else:
                cells.append(_cell(count, column.percentage(outcome)))
        lines.append("%-4s " % outcome + "".join(cells))
    lines.append("runs " + "".join("%15d" % column.total_runs
                                   for column in columns))
    return "\n".join(lines)


def format_table3(columns, title="Break-ins and Fail Silence "
                                 "Violations by Location"):
    """Render Table 3."""
    header = "Loc  " + "".join("%15s" % column.label[-12:]
                               for column in columns)
    lines = [title, header]
    for location in ALL_LOCATIONS:
        cells = []
        for column in columns:
            count = column.counts.get(location, 0)
            cells.append("%6d %6.2f%%" % (count,
                                          column.percentage(location)))
        lines.append("%-4s " % location + "".join(cells))
    lines.append("Total" + "".join("%15d" % column.total
                                   for column in columns))
    return "\n".join(lines)


def format_table5(columns, title="Results from New Encoding"):
    """Render Table 5 (distribution + reduction rows)."""
    lines = [format_table1([column.new for column in columns], title)]
    fsv_cells = []
    brk_cells = []
    for column in columns:
        fsv_cells.append("%6d %6.0f%%" % (column.fsv_reduction_count,
                                          column.fsv_reduction_pct))
        if column.old.counts.get("BRK", 0):
            brk_cells.append("%6d %6.0f%%" % (column.brk_reduction_count,
                                              column.brk_reduction_pct))
        else:
            brk_cells.append("     -      -  ")
    lines.append("FSVr " + "".join(fsv_cells))
    lines.append("BRKr " + "".join(brk_cells))
    return "\n".join(lines)


def format_model_table(columns, title="Result Distributions by "
                                      "Fault Model"):
    """Render the fault-model extension table (same layout as
    Table 1; columns come from
    :func:`repro.analysis.tables.build_model_table`)."""
    return format_table1(columns, title=title)


def build_pruning_report(campaign):
    """Summarise a campaign's equivalence-class pruning.

    Derived entirely from the journal records (``class_id`` /
    ``representative`` provenance, schema v7) plus the ``pruning.*``
    volatile counters when the campaign carries them, so it works on
    freshly-run, resumed, and deserialized campaigns alike.  Exhaustive
    campaigns yield an all-``solo`` report with a zero pruning rate.
    """
    from collections import Counter
    from ..injection.pruning import (PRUNE_BYTES, PRUNE_DEAD,
                                     PRUNE_FAULT, PRUNE_SOLO,
                                     PRUNE_SUCC)
    kind_members = Counter()
    kind_classes = Counter()
    seen_classes = set()
    fanned = 0
    for result in campaign.results:
        if result.class_id is None:
            # singleton: the point is its own (unstamped) class.
            kind_members[PRUNE_SOLO] += 1
            kind_classes[PRUNE_SOLO] += 1
            continue
        kind = result.class_id.split(":", 1)[0]
        kind_members[kind] += 1
        if result.class_id not in seen_classes:
            seen_classes.add(result.class_id)
            kind_classes[kind] += 1
        if result.representative != result.point.key:
            fanned += 1
    points = len(campaign.results)
    counters = {}
    volatile = (campaign.metrics or {}).get("volatile") or {}
    for name in sorted(volatile.get("counters") or {}):
        if name.startswith("pruning."):
            counters[name] = volatile["counters"][name]
    kinds = {}
    for kind in (PRUNE_DEAD, PRUNE_BYTES, PRUNE_FAULT, PRUNE_SUCC,
                 PRUNE_SOLO):
        kinds[kind] = {"classes": kind_classes.get(kind, 0),
                       "members": kind_members.get(kind, 0)}
    return {
        "points": points,
        "executed": points - fanned,
        "fanned_out": fanned,
        "pruned_frac": (fanned / points) if points else 0.0,
        "kinds": kinds,
        "counters": counters,
    }


def format_pruning_report(report, title="Equivalence-class pruning"):
    """Render :func:`build_pruning_report` output."""
    lines = [title, "%-6s %10s %10s" % ("kind", "classes", "members")]
    for kind, row in report["kinds"].items():
        lines.append("%-6s %10d %10d"
                     % (kind, row["classes"], row["members"]))
    lines.append("%-6s %10d %10d"
                 % ("total",
                    sum(row["classes"]
                        for row in report["kinds"].values()),
                    report["points"]))
    lines.append("executed %d of %d points (pruning rate %.1f%%)"
                 % (report["executed"], report["points"],
                    100.0 * report["pruned_frac"]))
    for name, value in report["counters"].items():
        lines.append("%-28s %10d" % (name, value))
    return "\n".join(lines)


def format_comparison(rows, title="Paper vs measured"):
    """Render PaperComparison rows for EXPERIMENTS.md."""
    lines = [title,
             "%-28s %-18s %12s %12s  %s" % ("experiment", "metric",
                                            "paper", "measured", "note")]
    for row in rows:
        lines.append("%-28s %-18s %12s %12s  %s"
                     % (row.experiment, row.metric,
                        _fmt(row.paper_value), _fmt(row.measured_value),
                        row.note))
    return "\n".join(lines)


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.2f" % value
    return str(value)


def format_forensics(campaign, limit=5,
                     title="Crash forensics (last instructions at "
                           "fault time)"):
    """Render the forensics snapshots of a campaign's SD/HANG/HF
    records (campaigns run with ``forensics=True``; see
    :mod:`repro.obs.forensics`).  Returns ``""`` when the campaign
    carries no snapshots, so callers can append unconditionally."""
    from ..obs.forensics import format_forensics_record
    captured = [result for result in campaign.results
                if result.forensics is not None]
    if not captured:
        return ""
    lines = [title]
    for result in captured[:limit]:
        lines.append("")
        lines.append("%s  %s at %s  (%s)"
                     % (result.point.key, result.outcome,
                        result.location, result.detail or "-"))
        lines.append(format_forensics_record(result.forensics))
    if len(captured) > limit:
        lines.append("")
        lines.append("... %d more snapshot(s) not shown"
                     % (len(captured) - limit))
    return "\n".join(lines)
