"""IA-32 instruction decoder (32-bit protected mode, flat model).

The decoder covers the complete one-byte opcode map and the two-byte
(0F escape) rows a 1999-era Pentium II/III implements that matter for
single-bit-flip studies: Jcc rel32, SETcc, CMOVcc, MOVZX/MOVSX, bit
tests, IMUL, BSWAP, CPUID, RDTSC and push/pop of FS/GS.  Undefined
encodings raise :class:`InvalidOpcodeError`, which the CPU turns into
SIGILL — the same visible outcome as on real hardware.

Decoding an instruction never faults for *privileged* encodings (HLT,
IN/OUT, CLI, ...): those decode fine and fault at execution time with
#GP, matching silicon behaviour.
"""

from __future__ import annotations

from .errors import InvalidOpcodeError
from .instruction import (FarPtr, Imm, Instruction, KIND_CALL,
                          KIND_COND_BRANCH, KIND_JUMP, KIND_OTHER, KIND_RET,
                          Mem, Reg, Rel, SegReg)
from .modrm import ByteReader, decode_modrm
from .opcodes import (ALL_PREFIXES, ALU_OPS, GROUP_F7, GROUP_FF,
                      MAX_INSTRUCTION_LENGTH, PREFIX_ADDRSIZE, PREFIX_LOCK,
                      PREFIX_OPSIZE, PREFIX_REP, PREFIX_REPNE,
                      SEGMENT_PREFIXES, SHIFT_OPS)
from .registers import EAX, EBP, EBX, ESP
from .flags import CONDITION_SUFFIXES


def decode(data, address=0):
    """Decode one instruction from *data* (bytes at *address*).

    Returns an :class:`Instruction`.  Raises :class:`InvalidOpcodeError`
    for undefined encodings and :class:`DecodeOutOfBytesError` when the
    buffer ends mid-instruction.
    """
    reader = ByteReader(data, 0, address)
    prefixes = []
    segment = None
    operand_size = 4
    address_size = 4
    rep = None

    while True:
        if reader.offset >= MAX_INSTRUCTION_LENGTH:
            # >15 bytes of prefixes is a #GP on real hardware; modelled
            # as an invalid opcode (same crash signal either way).
            raise InvalidOpcodeError(address, "instruction too long")
        byte = reader.read_u8()
        if byte not in ALL_PREFIXES:
            opcode = byte
            break
        prefixes.append(byte)
        if byte in SEGMENT_PREFIXES:
            segment = SEGMENT_PREFIXES[byte]
        elif byte == PREFIX_OPSIZE:
            operand_size = 2
        elif byte == PREFIX_ADDRSIZE:
            address_size = 2
        elif byte in (PREFIX_REP, PREFIX_REPNE):
            rep = byte
        # PREFIX_LOCK recorded but otherwise ignored (flat uniprocessor).

    ctx = _DecodeContext(reader, address, prefixes, segment, operand_size,
                         address_size, rep)
    if opcode == 0x0F:
        return _decode_0f(ctx)
    return _decode_one_byte(ctx, opcode)


class _DecodeContext:
    """Mutable state shared by the per-opcode decode helpers."""

    __slots__ = ("reader", "address", "prefixes", "segment", "operand_size",
                 "address_size", "rep")

    def __init__(self, reader, address, prefixes, segment, operand_size,
                 address_size, rep):
        self.reader = reader
        self.address = address
        self.prefixes = prefixes
        self.segment = segment
        self.operand_size = operand_size
        self.address_size = address_size
        self.rep = rep

    def modrm(self, size=None):
        size = self.operand_size if size is None else size
        if self.address_size == 2:
            return _decode_modrm16(self.reader, size, self.segment)
        return decode_modrm(self.reader, size, self.segment)

    def imm(self, size=None):
        size = self.operand_size if size is None else size
        if size == 1:
            return Imm(self.reader.read_u8(), 1)
        if size == 2:
            return Imm(self.reader.read_u16(), 2)
        return Imm(self.reader.read_u32(), 4)

    def rel(self, size):
        if size == 1:
            disp = self.reader.read_s8()
        elif size == 2:
            disp = self.reader.read_u16()
            disp = disp - 0x10000 if disp >= 0x8000 else disp
        else:
            disp = self.reader.read_s32()
        target = (self.address + self.reader.offset + disp) & 0xFFFFFFFF
        if self.operand_size == 2:
            # A 0x66 prefix truncates the branch target to 16 bits --
            # on a flat Linux process this lands in unmapped memory.
            target &= 0xFFFF
        return Rel(target, size)

    def finish(self, mnemonic, operands=(), opcode=0, condition=None,
               kind=KIND_OTHER):
        raw = bytes(self.reader.data[:self.reader.offset])
        if len(raw) > MAX_INSTRUCTION_LENGTH:
            raise InvalidOpcodeError(self.address, "instruction too long")
        return Instruction(address=self.address, raw=raw, mnemonic=mnemonic,
                           operands=tuple(operands), opcode=opcode,
                           condition=condition, kind=kind,
                           prefixes=tuple(self.prefixes), rep=self.rep,
                           operand_size=self.operand_size)


def _decode_modrm16(reader, operand_size, segment):
    """16-bit address-size ModRM (reached only via a corrupted 0x67)."""
    modrm = reader.read_u8()
    mod = modrm >> 6
    reg_field = (modrm >> 3) & 7
    rm = modrm & 7
    if mod == 3:
        return reg_field, Reg(rm, operand_size)
    # Base/index pairs of the 16-bit table, as (base, index) encodings.
    pairs = ((EBX, 6), (EBX, 7), (EBP, 6), (EBP, 7),
             (6, None), (7, None), (EBP, None), (EBX, None))
    base, index = pairs[rm]
    disp = 0
    if mod == 0 and rm == 6:
        base, index = None, None
        disp = reader.read_u16()
    elif mod == 1:
        disp = reader.read_s8()
    elif mod == 2:
        disp = reader.read_u16()
    return reg_field, Mem(base=base, index=index, scale=1, disp=disp,
                          size=operand_size, segment=segment)


def _invalid(ctx, message="invalid opcode"):
    raise InvalidOpcodeError(ctx.address, message)


def _decode_one_byte(ctx, opcode):
    osize = ctx.operand_size

    # --- 0x00-0x3F: the eight ALU families plus segment push/pop and
    # the BCD adjust instructions occupying the x6/x7/xE/xF columns.
    if opcode < 0x40:
        low = opcode & 7
        op_name = ALU_OPS[opcode >> 3]
        if low == 0:
            reg, rm = ctx.modrm(1)
            return ctx.finish(op_name + "b", (Reg(reg, 1), rm), opcode)
        if low == 1:
            reg, rm = ctx.modrm()
            return ctx.finish(op_name, (Reg(reg, osize), rm), opcode)
        if low == 2:
            reg, rm = ctx.modrm(1)
            return ctx.finish(op_name + "b", (rm, Reg(reg, 1)), opcode)
        if low == 3:
            reg, rm = ctx.modrm()
            return ctx.finish(op_name, (rm, Reg(reg, osize)), opcode)
        if low == 4:
            return ctx.finish(op_name + "b", (ctx.imm(1), Reg(EAX, 1)),
                              opcode)
        if low == 5:
            return ctx.finish(op_name, (ctx.imm(), Reg(EAX, osize)), opcode)
        # Columns 6/7 and E/F: segment ops / BCD / escape.
        table = {
            0x06: ("push_seg", SegReg(0)), 0x07: ("pop_seg", SegReg(0)),
            0x0E: ("push_seg", SegReg(1)),
            0x16: ("push_seg", SegReg(2)), 0x17: ("pop_seg", SegReg(2)),
            0x1E: ("push_seg", SegReg(3)), 0x1F: ("pop_seg", SegReg(3)),
            0x27: ("daa", None), 0x2F: ("das", None),
            0x37: ("aaa", None), 0x3F: ("aas", None),
        }
        if opcode in table:
            mnemonic, operand = table[opcode]
            ops = (operand,) if operand is not None else ()
            return ctx.finish(mnemonic, ops, opcode)
        return _invalid(ctx)

    if 0x40 <= opcode <= 0x47:
        return ctx.finish("inc", (Reg(opcode - 0x40, osize),), opcode)
    if 0x48 <= opcode <= 0x4F:
        return ctx.finish("dec", (Reg(opcode - 0x48, osize),), opcode)
    if 0x50 <= opcode <= 0x57:
        return ctx.finish("push", (Reg(opcode - 0x50, osize),), opcode)
    if 0x58 <= opcode <= 0x5F:
        return ctx.finish("pop", (Reg(opcode - 0x58, osize),), opcode)

    if opcode == 0x60:
        return ctx.finish("pusha", (), opcode)
    if opcode == 0x61:
        return ctx.finish("popa", (), opcode)
    if opcode == 0x62:
        reg, rm = ctx.modrm()
        if rm.kind != "mem":
            return _invalid(ctx, "bound with register operand")
        return ctx.finish("bound", (Reg(reg, osize), rm), opcode)
    if opcode == 0x63:
        reg, rm = ctx.modrm(2)
        return ctx.finish("arpl", (Reg(reg, 2), rm), opcode)
    if opcode == 0x68:
        return ctx.finish("push", (ctx.imm(),), opcode)
    if opcode == 0x69:
        reg, rm = ctx.modrm()
        return ctx.finish("imul", (ctx.imm(), rm, Reg(reg, osize)), opcode)
    if opcode == 0x6A:
        value = ctx.reader.read_s8() & 0xFFFFFFFF
        return ctx.finish("push", (Imm(value, 4),), opcode)
    if opcode == 0x6B:
        reg, rm = ctx.modrm()
        value = ctx.reader.read_s8() & 0xFFFFFFFF
        return ctx.finish("imul", (Imm(value, 4), rm, Reg(reg, osize)),
                          opcode)
    if opcode in (0x6C, 0x6D, 0x6E, 0x6F):
        names = {0x6C: "insb", 0x6D: "insd", 0x6E: "outsb", 0x6F: "outsd"}
        return ctx.finish(names[opcode], (), opcode)

    # --- 0x70-0x7F: the 2-byte conditional branch block.
    if 0x70 <= opcode <= 0x7F:
        condition = opcode & 0xF
        target = ctx.rel(1)
        return ctx.finish("j" + CONDITION_SUFFIXES[condition], (target,),
                          opcode, condition, KIND_COND_BRANCH)

    # --- 0x80-0x83: ALU immediate group.
    if opcode in (0x80, 0x82):
        reg, rm = ctx.modrm(1)
        return ctx.finish(ALU_OPS[reg] + "b", (ctx.imm(1), rm), opcode)
    if opcode == 0x81:
        reg, rm = ctx.modrm()
        return ctx.finish(ALU_OPS[reg], (ctx.imm(), rm), opcode)
    if opcode == 0x83:
        reg, rm = ctx.modrm()
        value = ctx.reader.read_s8() & 0xFFFFFFFF
        return ctx.finish(ALU_OPS[reg], (Imm(value, 4), rm), opcode)

    if opcode == 0x84:
        reg, rm = ctx.modrm(1)
        return ctx.finish("testb", (Reg(reg, 1), rm), opcode)
    if opcode == 0x85:
        reg, rm = ctx.modrm()
        return ctx.finish("test", (Reg(reg, osize), rm), opcode)
    if opcode == 0x86:
        reg, rm = ctx.modrm(1)
        return ctx.finish("xchgb", (Reg(reg, 1), rm), opcode)
    if opcode == 0x87:
        reg, rm = ctx.modrm()
        return ctx.finish("xchg", (Reg(reg, osize), rm), opcode)

    if opcode == 0x88:
        reg, rm = ctx.modrm(1)
        return ctx.finish("movb", (Reg(reg, 1), rm), opcode)
    if opcode == 0x89:
        reg, rm = ctx.modrm()
        return ctx.finish("mov", (Reg(reg, osize), rm), opcode)
    if opcode == 0x8A:
        reg, rm = ctx.modrm(1)
        return ctx.finish("movb", (rm, Reg(reg, 1)), opcode)
    if opcode == 0x8B:
        reg, rm = ctx.modrm()
        return ctx.finish("mov", (rm, Reg(reg, osize)), opcode)
    if opcode == 0x8C:
        reg, rm = ctx.modrm(2)
        if reg > 5:
            return _invalid(ctx, "mov from bad segment register")
        return ctx.finish("mov_from_seg", (SegReg(reg), rm), opcode)
    if opcode == 0x8D:
        reg, rm = ctx.modrm()
        if rm.kind != "mem":
            return _invalid(ctx, "lea with register source")
        return ctx.finish("lea", (rm, Reg(reg, osize)), opcode)
    if opcode == 0x8E:
        reg, rm = ctx.modrm(2)
        if reg > 5 or reg == 1:  # cannot load CS
            return _invalid(ctx, "mov to bad segment register")
        return ctx.finish("mov_to_seg", (rm, SegReg(reg)), opcode)
    if opcode == 0x8F:
        reg, rm = ctx.modrm()
        if reg != 0:
            return _invalid(ctx, "group 1A /%d" % reg)
        return ctx.finish("pop", (rm,), opcode)

    if opcode == 0x90:
        return ctx.finish("nop", (), opcode)
    if 0x91 <= opcode <= 0x97:
        return ctx.finish("xchg", (Reg(opcode - 0x90, osize),
                                   Reg(EAX, osize)), opcode)
    if opcode == 0x98:
        return ctx.finish("cwde" if osize == 4 else "cbw", (), opcode)
    if opcode == 0x99:
        return ctx.finish("cdq" if osize == 4 else "cwd", (), opcode)
    if opcode == 0x9A:
        offset = ctx.reader.read_u32()
        selector = ctx.reader.read_u16()
        return ctx.finish("lcall", (FarPtr(selector, offset),), opcode,
                          kind=KIND_CALL)
    if opcode == 0x9B:
        return ctx.finish("fwait", (), opcode)
    if opcode == 0x9C:
        return ctx.finish("pushf", (), opcode)
    if opcode == 0x9D:
        return ctx.finish("popf", (), opcode)
    if opcode == 0x9E:
        return ctx.finish("sahf", (), opcode)
    if opcode == 0x9F:
        return ctx.finish("lahf", (), opcode)

    # --- 0xA0-0xA3: moffs forms of mov.
    if opcode in (0xA0, 0xA1, 0xA2, 0xA3):
        if ctx.address_size == 2:
            offset = ctx.reader.read_u16()
        else:
            offset = ctx.reader.read_u32()
        size = 1 if opcode in (0xA0, 0xA2) else osize
        mem = Mem(disp=offset, size=size, segment=ctx.segment)
        accumulator = Reg(EAX, size)
        if opcode in (0xA0, 0xA1):
            return ctx.finish("movb" if size == 1 else "mov",
                              (mem, accumulator), opcode)
        return ctx.finish("movb" if size == 1 else "mov",
                          (accumulator, mem), opcode)

    string_ops = {0xA4: "movsb", 0xA5: "movsd", 0xA6: "cmpsb",
                  0xA7: "cmpsd", 0xAA: "stosb", 0xAB: "stosd",
                  0xAC: "lodsb", 0xAD: "lodsd", 0xAE: "scasb",
                  0xAF: "scasd"}
    if opcode in string_ops:
        return ctx.finish(string_ops[opcode], (), opcode)

    if opcode == 0xA8:
        return ctx.finish("testb", (ctx.imm(1), Reg(EAX, 1)), opcode)
    if opcode == 0xA9:
        return ctx.finish("test", (ctx.imm(), Reg(EAX, osize)), opcode)

    if 0xB0 <= opcode <= 0xB7:
        return ctx.finish("movb", (ctx.imm(1), Reg(opcode - 0xB0, 1)),
                          opcode)
    if 0xB8 <= opcode <= 0xBF:
        return ctx.finish("mov", (ctx.imm(), Reg(opcode - 0xB8, osize)),
                          opcode)

    # --- shift groups.
    if opcode in (0xC0, 0xC1):
        size = 1 if opcode == 0xC0 else osize
        reg, rm = ctx.modrm(size)
        count = ctx.imm(1)
        suffix = "b" if size == 1 else ""
        return ctx.finish(SHIFT_OPS[reg] + suffix, (count, rm), opcode)
    if opcode in (0xD0, 0xD1):
        size = 1 if opcode == 0xD0 else osize
        reg, rm = ctx.modrm(size)
        suffix = "b" if size == 1 else ""
        return ctx.finish(SHIFT_OPS[reg] + suffix, (Imm(1, 1), rm), opcode)
    if opcode in (0xD2, 0xD3):
        size = 1 if opcode == 0xD2 else osize
        reg, rm = ctx.modrm(size)
        suffix = "b" if size == 1 else ""
        return ctx.finish(SHIFT_OPS[reg] + suffix, (Reg(1, 1), rm), opcode)

    if opcode == 0xC2:
        return ctx.finish("ret", (ctx.imm(2),), opcode, kind=KIND_RET)
    if opcode == 0xC3:
        return ctx.finish("ret", (), opcode, kind=KIND_RET)
    if opcode in (0xC4, 0xC5):
        reg, rm = ctx.modrm()
        if rm.kind != "mem":
            return _invalid(ctx, "les/lds with register operand")
        mnemonic = "les" if opcode == 0xC4 else "lds"
        return ctx.finish(mnemonic, (rm, Reg(reg, osize)), opcode)
    if opcode == 0xC6:
        reg, rm = ctx.modrm(1)
        if reg != 0:
            return _invalid(ctx, "group 11 /%d" % reg)
        return ctx.finish("movb", (ctx.imm(1), rm), opcode)
    if opcode == 0xC7:
        reg, rm = ctx.modrm()
        if reg != 0:
            return _invalid(ctx, "group 11 /%d" % reg)
        return ctx.finish("mov", (ctx.imm(), rm), opcode)
    if opcode == 0xC8:
        alloc = ctx.imm(2)
        nesting = ctx.imm(1)
        return ctx.finish("enter", (alloc, nesting), opcode)
    if opcode == 0xC9:
        return ctx.finish("leave", (), opcode)
    if opcode == 0xCA:
        return ctx.finish("lret", (ctx.imm(2),), opcode, kind=KIND_RET)
    if opcode == 0xCB:
        return ctx.finish("lret", (), opcode, kind=KIND_RET)
    if opcode == 0xCC:
        return ctx.finish("int3", (), opcode)
    if opcode == 0xCD:
        return ctx.finish("int", (ctx.imm(1),), opcode)
    if opcode == 0xCE:
        return ctx.finish("into", (), opcode)
    if opcode == 0xCF:
        return ctx.finish("iret", (), opcode)

    if opcode == 0xD4:
        return ctx.finish("aam", (ctx.imm(1),), opcode)
    if opcode == 0xD5:
        return ctx.finish("aad", (ctx.imm(1),), opcode)
    if opcode == 0xD6:
        return ctx.finish("salc", (), opcode)  # undocumented but real
    if opcode == 0xD7:
        return ctx.finish("xlat", (), opcode)

    if 0xD8 <= opcode <= 0xDF:
        # x87 escape: operands decode normally; the emulator treats the
        # FPU as absent state but memory operands still fault on bad
        # addresses, which is the behaviour that matters here.
        reg, rm = ctx.modrm()
        return ctx.finish("fpu", (Imm(opcode, 1), Imm(reg, 1), rm), opcode)

    loop_ops = {0xE0: "loopne", 0xE1: "loope", 0xE2: "loop", 0xE3: "jecxz"}
    if opcode in loop_ops:
        target = ctx.rel(1)
        return ctx.finish(loop_ops[opcode], (target,), opcode,
                          kind=KIND_COND_BRANCH)

    if opcode in (0xE4, 0xE5):
        return ctx.finish("in", (ctx.imm(1),), opcode)
    if opcode in (0xE6, 0xE7):
        return ctx.finish("out", (ctx.imm(1),), opcode)
    if opcode in (0xEC, 0xED):
        return ctx.finish("in", (), opcode)
    if opcode in (0xEE, 0xEF):
        return ctx.finish("out", (), opcode)

    if opcode == 0xE8:
        size = 2 if osize == 2 else 4
        return ctx.finish("call", (ctx.rel(size),), opcode, kind=KIND_CALL)
    if opcode == 0xE9:
        size = 2 if osize == 2 else 4
        return ctx.finish("jmp", (ctx.rel(size),), opcode, kind=KIND_JUMP)
    if opcode == 0xEA:
        offset = ctx.reader.read_u32()
        selector = ctx.reader.read_u16()
        return ctx.finish("ljmp", (FarPtr(selector, offset),), opcode,
                          kind=KIND_JUMP)
    if opcode == 0xEB:
        return ctx.finish("jmp", (ctx.rel(1),), opcode, kind=KIND_JUMP)

    if opcode == 0xF1:
        return ctx.finish("int1", (), opcode)
    if opcode == 0xF4:
        return ctx.finish("hlt", (), opcode)
    if opcode == 0xF5:
        return ctx.finish("cmc", (), opcode)

    if opcode in (0xF6, 0xF7):
        size = 1 if opcode == 0xF6 else osize
        reg, rm = ctx.modrm(size)
        mnemonic = GROUP_F7[reg]
        suffix = "b" if size == 1 else ""
        if mnemonic == "test":
            return ctx.finish("test" + suffix, (ctx.imm(size), rm), opcode)
        return ctx.finish(mnemonic + suffix, (rm,), opcode)

    simple = {0xF8: "clc", 0xF9: "stc", 0xFA: "cli", 0xFB: "sti",
              0xFC: "cld", 0xFD: "std"}
    if opcode in simple:
        return ctx.finish(simple[opcode], (), opcode)

    if opcode == 0xFE:
        reg, rm = ctx.modrm(1)
        if reg == 0:
            return ctx.finish("incb", (rm,), opcode)
        if reg == 1:
            return ctx.finish("decb", (rm,), opcode)
        return _invalid(ctx, "group 4 /%d" % reg)
    if opcode == 0xFF:
        reg, rm = ctx.modrm()
        mnemonic = GROUP_FF[reg]
        if mnemonic is None:
            return _invalid(ctx, "group 5 /7")
        if mnemonic in ("lcall", "ljmp"):
            if rm.kind != "mem":
                return _invalid(ctx, "far transfer with register operand")
            kind = KIND_CALL if mnemonic == "lcall" else KIND_JUMP
            return ctx.finish(mnemonic + "_ind", (rm,), opcode, kind=kind)
        if mnemonic == "call":
            return ctx.finish("call_ind", (rm,), opcode, kind=KIND_CALL)
        if mnemonic == "jmp":
            return ctx.finish("jmp_ind", (rm,), opcode, kind=KIND_JUMP)
        return ctx.finish(mnemonic, (rm,), opcode)

    return _invalid(ctx)


def _decode_0f(ctx):
    second = ctx.reader.read_u8()
    opcode = 0x0F00 | second
    osize = ctx.operand_size

    # Conditional branch rel16/rel32 block.
    if 0x80 <= second <= 0x8F:
        condition = second & 0xF
        size = 2 if osize == 2 else 4
        target = ctx.rel(size)
        return ctx.finish("j" + CONDITION_SUFFIXES[condition], (target,),
                          opcode, condition, KIND_COND_BRANCH)

    # SETcc block.
    if 0x90 <= second <= 0x9F:
        condition = second & 0xF
        __, rm = ctx.modrm(1)
        return ctx.finish("set" + CONDITION_SUFFIXES[condition], (rm,),
                          opcode, condition)

    # CMOVcc block (P6 family onward).
    if 0x40 <= second <= 0x4F:
        condition = second & 0xF
        reg, rm = ctx.modrm()
        return ctx.finish("cmov" + CONDITION_SUFFIXES[condition],
                          (rm, Reg(reg, osize)), opcode, condition)

    if second in (0x00, 0x01):
        # System descriptor-table group; every member is privileged.
        reg, rm = ctx.modrm()
        return ctx.finish("lgdt", (Imm(reg, 1), rm), opcode)
    if second == 0x05:
        return _invalid(ctx, "0F 05 undefined on IA-32")
    if second == 0x06:
        return ctx.finish("clts", (), opcode)
    if second == 0x08:
        return ctx.finish("invd", (), opcode)
    if second == 0x09:
        return ctx.finish("wbinvd", (), opcode)
    if second == 0x0B:
        return _invalid(ctx, "ud2")
    if second == 0x1F:
        __, rm = ctx.modrm()
        return ctx.finish("nop", (rm,), opcode)
    if second in (0x20, 0x21, 0x22, 0x23):
        __, rm = ctx.modrm()
        mnemonic = "mov_cr" if second in (0x20, 0x22) else "mov_dr"
        return ctx.finish(mnemonic, (rm,), opcode)
    if second == 0x30:
        return ctx.finish("wrmsr", (), opcode)
    if second == 0x31:
        return ctx.finish("rdtsc", (), opcode)
    if second == 0x32:
        return ctx.finish("rdmsr", (), opcode)

    if second == 0xA0:
        return ctx.finish("push_seg", (SegReg(4),), opcode)
    if second == 0xA1:
        return ctx.finish("pop_seg", (SegReg(4),), opcode)
    if second == 0xA8:
        return ctx.finish("push_seg", (SegReg(5),), opcode)
    if second == 0xA9:
        return ctx.finish("pop_seg", (SegReg(5),), opcode)
    if second == 0xA2:
        return ctx.finish("cpuid", (), opcode)

    if second in (0xA3, 0xAB, 0xB3, 0xBB):
        names = {0xA3: "bt", 0xAB: "bts", 0xB3: "btr", 0xBB: "btc"}
        reg, rm = ctx.modrm()
        return ctx.finish(names[second], (Reg(reg, osize), rm), opcode)
    if second == 0xBA:
        reg, rm = ctx.modrm()
        if reg < 4:
            return _invalid(ctx, "group 8 /%d" % reg)
        names = {4: "bt", 5: "bts", 6: "btr", 7: "btc"}
        return ctx.finish(names[reg], (ctx.imm(1), rm), opcode)

    if second == 0xAF:
        reg, rm = ctx.modrm()
        return ctx.finish("imul2", (rm, Reg(reg, osize)), opcode)

    if second in (0xB0, 0xB1):
        size = 1 if second == 0xB0 else osize
        reg, rm = ctx.modrm(size)
        return ctx.finish("cmpxchg" + ("b" if size == 1 else ""),
                          (Reg(reg, size), rm), opcode)
    if second in (0xC0, 0xC1):
        size = 1 if second == 0xC0 else osize
        reg, rm = ctx.modrm(size)
        return ctx.finish("xadd" + ("b" if size == 1 else ""),
                          (Reg(reg, size), rm), opcode)

    if second in (0xB6, 0xB7, 0xBE, 0xBF):
        src_size = 1 if second in (0xB6, 0xBE) else 2
        signed = second in (0xBE, 0xBF)
        reg, rm = ctx.modrm(src_size)
        mnemonic = ("movsx" if signed else "movzx")
        mnemonic += "b" if src_size == 1 else "w"
        return ctx.finish(mnemonic, (rm, Reg(reg, osize)), opcode)

    if second in (0xBC, 0xBD):
        reg, rm = ctx.modrm()
        return ctx.finish("bsf" if second == 0xBC else "bsr",
                          (rm, Reg(reg, osize)), opcode)

    if 0xC8 <= second <= 0xCF:
        return ctx.finish("bswap", (Reg(second - 0xC8, 4),), opcode)

    return _invalid(ctx, "0F %02X undefined" % second)
