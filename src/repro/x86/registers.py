"""IA-32 register file definitions.

The emulator models the eight 32-bit general purpose registers, the
instruction pointer, the EFLAGS register and the six segment registers.
Register *indices* follow the hardware encoding used in ModRM / opcode
``+r`` forms (EAX=0 ... EDI=7), so the decoder can map encodings to
registers without translation tables.
"""

from __future__ import annotations

# 32-bit general purpose registers, in hardware encoding order.
EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI = range(8)

REG32_NAMES = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")

# 16-bit views share the encoding of their 32-bit parents.
REG16_NAMES = ("ax", "cx", "dx", "bx", "sp", "bp", "si", "di")

# 8-bit registers: 0-3 are the low bytes of EAX..EBX, 4-7 the high bytes
# of the same four registers (AH=4, CH=5, DH=6, BH=7).
REG8_NAMES = ("al", "cl", "dl", "bl", "ah", "ch", "dh", "bh")

AL, CL, DL, BL, AH, CH, DH, BH = range(8)

# Segment registers, in the encoding order used by ``mov sreg`` (ES=0,
# CS=1, SS=2, DS=3, FS=4, GS=5).
ES, CS, SS, DS, FS, GS = range(6)

SEG_NAMES = ("es", "cs", "ss", "ds", "fs", "gs")

# Selector values a 32-bit Linux process actually holds; loading anything
# else into a segment register raises #GP in the emulator, mirroring the
# crash a corrupted ``pop es`` would cause on real hardware.
VALID_SELECTORS = frozenset({0x0, 0x23, 0x2B, 0x33, 0x7B})

REG32_BY_NAME = {name: idx for idx, name in enumerate(REG32_NAMES)}
REG16_BY_NAME = {name: idx for idx, name in enumerate(REG16_NAMES)}
REG8_BY_NAME = {name: idx for idx, name in enumerate(REG8_NAMES)}
SEG_BY_NAME = {name: idx for idx, name in enumerate(SEG_NAMES)}


def reg32_name(index):
    """Return the canonical name of a 32-bit register encoding."""
    return REG32_NAMES[index & 7]


def reg16_name(index):
    """Return the canonical name of a 16-bit register encoding."""
    return REG16_NAMES[index & 7]


def reg8_name(index):
    """Return the canonical name of an 8-bit register encoding."""
    return REG8_NAMES[index & 7]


def seg_name(index):
    """Return the canonical name of a segment register encoding."""
    return SEG_NAMES[index % 6]
