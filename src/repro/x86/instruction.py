"""Instruction and operand models shared by the decoder, assembler,
disassembler and CPU.

Operands are small immutable objects; the CPU reads and writes them
through ``repro.emu.cpu`` accessors keyed on the operand's ``kind``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .registers import reg8_name, reg16_name, reg32_name, seg_name


@dataclass(frozen=True)
class Reg:
    """General purpose register operand (``size`` in bytes: 1, 2 or 4)."""

    index: int
    size: int = 4

    @property
    def name(self):
        if self.size == 4:
            return reg32_name(self.index)
        if self.size == 2:
            return reg16_name(self.index)
        return reg8_name(self.index)

    kind = "reg"

    def __str__(self):
        return "%" + self.name


@dataclass(frozen=True)
class SegReg:
    """Segment register operand."""

    index: int

    kind = "seg"
    size = 2

    @property
    def name(self):
        return seg_name(self.index)

    def __str__(self):
        return "%" + self.name


@dataclass(frozen=True)
class Imm:
    """Immediate operand; ``value`` is the raw unsigned encoding."""

    value: int
    size: int = 4

    kind = "imm"

    def __str__(self):
        return "$0x%x" % (self.value,)


@dataclass(frozen=True)
class Mem:
    """Memory operand: ``[base + index*scale + disp]`` with optional
    segment override.  ``size`` is the access width in bytes."""

    base: int | None = None
    index: int | None = None
    scale: int = 1
    disp: int = 0
    size: int = 4
    segment: int | None = None

    kind = "mem"

    def __str__(self):
        parts = ""
        if self.disp or (self.base is None and self.index is None):
            parts += "0x%x" % (self.disp & 0xFFFFFFFF,)
        inner = []
        if self.base is not None:
            inner.append("%" + reg32_name(self.base))
        if self.index is not None:
            inner.append("%" + reg32_name(self.index))
            inner.append(str(self.scale))
        if inner:
            parts += "(" + ",".join(inner) + ")"
        if self.segment is not None:
            parts = "%%%s:%s" % (seg_name(self.segment), parts)
        return parts


@dataclass(frozen=True)
class Rel:
    """Relative branch target; ``target`` is the absolute destination
    address, ``size`` the width of the encoded displacement."""

    target: int
    size: int = 1

    kind = "rel"

    def __str__(self):
        return "0x%x" % (self.target & 0xFFFFFFFF,)


@dataclass(frozen=True)
class FarPtr:
    """Far pointer immediate (``ljmp``/``lcall`` seg:offset)."""

    selector: int
    offset: int

    kind = "far"
    size = 6

    def __str__(self):
        return "$0x%x,$0x%x" % (self.selector, self.offset)


# Instruction classification used by injection targeting and analysis.
KIND_COND_BRANCH = "cond_branch"   # jcc, jcxz, loop*
KIND_JUMP = "jump"                 # jmp (direct or indirect)
KIND_CALL = "call"
KIND_RET = "ret"
KIND_OTHER = "other"

CONTROL_KINDS = frozenset({KIND_COND_BRANCH, KIND_JUMP, KIND_CALL, KIND_RET})


@dataclass(frozen=True)
class Instruction:
    """A fully decoded instruction.

    ``opcode`` is the primary opcode: the raw byte for one-byte opcodes
    or ``0x0F00 | second_byte`` for two-byte (0F-escape) opcodes.
    ``condition`` is the 4-bit condition code for Jcc/SETcc, else None.
    """

    address: int
    raw: bytes
    mnemonic: str
    operands: tuple = ()
    opcode: int = 0
    condition: int | None = None
    kind: str = KIND_OTHER
    prefixes: tuple = ()
    rep: int | None = None          # 0xF2 / 0xF3 when present
    operand_size: int = 4           # 2 when a 0x66 prefix is active

    @property
    def length(self):
        return len(self.raw)

    @property
    def end(self):
        return self.address + len(self.raw)

    def __str__(self):
        if not self.operands:
            return self.mnemonic
        rendered = ", ".join(str(op) for op in self.operands)
        return "%s %s" % (self.mnemonic, rendered)
