"""Exception types raised while decoding or assembling IA-32 code."""

from __future__ import annotations


class X86Error(Exception):
    """Base class for ISA-level errors."""


class InvalidOpcodeError(X86Error):
    """The byte stream does not decode to a defined instruction (#UD)."""

    def __init__(self, address, message="invalid opcode"):
        super().__init__("%s at 0x%x" % (message, address))
        self.address = address


class DecodeOutOfBytesError(X86Error):
    """The instruction runs past the end of the decodable region."""

    def __init__(self, address):
        super().__init__("instruction at 0x%x runs out of bytes" % (address,))
        self.address = address


class AssemblerError(X86Error):
    """Malformed assembly source."""

    def __init__(self, message, line=None):
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)
        self.line = line
