"""Linear-sweep disassembler built on the decoder.

Used by the injection layer to enumerate branch instructions inside the
target functions (the "selected segments" of the paper) and by reports
to show what a corrupted byte stream decodes to.
"""

from __future__ import annotations

from .decoder import decode
from .errors import X86Error
from .instruction import Instruction


def disassemble_range(data, base_address, start, end):
    """Disassemble [start, end) inside *data* mapped at *base_address*.

    Returns a list of :class:`Instruction`.  Undecodable bytes are
    represented as pseudo ``(bad)`` instructions of length 1 so that a
    sweep never stalls; with compiler-produced code this only happens
    for inline data.
    """
    instructions = []
    address = start
    while address < end:
        offset = address - base_address
        window = data[offset:offset + 15]
        try:
            instruction = decode(window, address)
        except X86Error:
            instruction = Instruction(address=address,
                                      raw=bytes(window[:1]),
                                      mnemonic="(bad)")
        instructions.append(instruction)
        address += max(1, instruction.length)
    return instructions


def format_listing(instructions):
    """Render instructions as an objdump-style listing."""
    lines = []
    for instruction in instructions:
        hex_bytes = " ".join("%02x" % b for b in instruction.raw)
        lines.append("%8x:\t%-21s\t%s"
                     % (instruction.address, hex_bytes, instruction))
    return "\n".join(lines)
