"""Two-pass IA-32 assembler for an AT&T-flavoured syntax.

The assembler exists so that the mini-C compiler (and hand-written
runtime stubs) can be turned into *real machine code* that the fault
injector flips bits in.  It emits the same encodings gcc -O0/-O1 used
in 1999: ``push %reg`` as ``0x50+r``, ALU immediates through the
0x83/0x81 group, and conditional branches relaxed between the 2-byte
(``0x7cc``) and 6-byte (``0x0F 0x8cc``) forms -- the two blocks whose
Hamming-distance-1 layout the paper analyses.

Supported directives: ``.text``, ``.data``, ``.global``, ``.align``,
``.byte``, ``.word``, ``.long``, ``.asciz``, ``.ascii``, ``.space``.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass, field

from .errors import AssemblerError
from .flags import CONDITION_BY_SUFFIX
from .instruction import Imm, Mem, Reg
from .modrm import encode_modrm
from .opcodes import ALU_OPS, GROUP_F7, SHIFT_OPS
from .registers import (EAX, ECX, REG8_BY_NAME, REG16_BY_NAME,
                        REG32_BY_NAME, SEG_BY_NAME)

_ALU_INDEX = {name: i for i, name in enumerate(ALU_OPS)}
_SHIFT_INDEX = {"rol": 0, "ror": 1, "rcl": 2, "rcr": 3,
                "shl": 4, "sal": 4, "shr": 5, "sar": 7}
_GROUP_F7_INDEX = {"not": 2, "neg": 3, "mul": 4, "imul1": 5,
                   "div": 6, "idiv": 7}

_STRING_OPS = {"movsb": 0xA4, "movsd": 0xA5, "cmpsb": 0xA6, "cmpsd": 0xA7,
               "stosb": 0xAA, "stosd": 0xAB, "lodsb": 0xAC, "lodsd": 0xAD,
               "scasb": 0xAE, "scasd": 0xAF}

_SIMPLE_OPS = {"nop": b"\x90", "ret": b"\xC3", "leave": b"\xC9",
               "cdq": b"\x99", "cwde": b"\x98", "pushf": b"\x9C",
               "popf": b"\x9D", "sahf": b"\x9E", "lahf": b"\x9F",
               "cltd": b"\x99", "cbtw": b"\x98",
               "daa": b"\x27", "das": b"\x2F",
               "aaa": b"\x37", "aas": b"\x3F",
               "cli": b"\xFA", "sti": b"\xFB",
               "in": b"\xEC", "out": b"\xEE",
               "lret": b"\xCB", "iret": b"\xCF", "int1": b"\xF1",
               "clc": b"\xF8", "stc": b"\xF9", "cmc": b"\xF5",
               "cld": b"\xFC", "std": b"\xFD", "hlt": b"\xF4",
               "int3": b"\xCC", "pusha": b"\x60", "popa": b"\x61",
               "xlat": b"\xD7", "salc": b"\xD6"}

_REP_PREFIXES = {"rep": 0xF3, "repe": 0xF3, "repz": 0xF3,
                 "repne": 0xF2, "repnz": 0xF2}


@dataclass
class Symbol:
    """A resolved assembler symbol."""

    name: str
    section: str
    address: int
    is_global: bool = False


@dataclass
class Module:
    """Assembled output: raw section bytes plus the symbol table."""

    text: bytes
    data: bytes
    text_base: int
    data_base: int
    symbols: dict = field(default_factory=dict)
    #: instruction address -> assembly source line (1-based), the
    #: "debug info" the sampling profiler resolves hot EIPs against.
    #: Defaulted for back-compat with pre-recorded modules.
    lines: dict = field(default_factory=dict)

    def address_of(self, name):
        return self.symbols[name].address

    def function_symbols(self):
        """Non-local symbols living in .text, sorted by address.

        Labels starting with ``.`` are compiler-local (``.L42``) and do
        not delimit functions, matching how a linker treats them.
        """
        in_text = [s for s in self.symbols.values()
                   if s.section == "text" and not s.name.startswith(".")]
        return sorted(in_text, key=lambda s: s.address)

    def function_range(self, name):
        """Return ``(start, end)`` addresses of the function *name*.

        The end is the address of the next text symbol (or end of
        .text), mirroring how a debugger derives function extents from
        an ELF symbol table.
        """
        ordered = self.function_symbols()
        for position, symbol in enumerate(ordered):
            if symbol.name == name:
                if position + 1 < len(ordered):
                    return symbol.address, ordered[position + 1].address
                return symbol.address, self.text_base + len(self.text)
        raise KeyError(name)


class _Expr:
    """Deferred symbol+offset expression resolved in the final pass."""

    __slots__ = ("symbol", "offset")

    def __init__(self, symbol, offset=0):
        self.symbol = symbol
        self.offset = offset

    def resolve(self, symbols, line):
        if self.symbol not in symbols:
            raise AssemblerError("undefined symbol %r" % self.symbol, line)
        return symbols[self.symbol] + self.offset


@dataclass
class _Statement:
    kind: str              # "label" | "insn" | directive name
    section: str
    mnemonic: str = ""
    operands: tuple = ()
    line: int = 0
    payload: object = None
    # Relaxation state for branch statements: True once forced long.
    long_form: bool = False
    size: int = 0
    address: int = 0


_NUMBER_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+)$")
_SYMBOL_RE = re.compile(r"^\.?[A-Za-z_][A-Za-z0-9_.$]*$")


def _parse_number(token):
    return int(token, 0)


def _split_operands(text):
    """Split an operand string on commas not inside parentheses or
    quotes."""
    parts = []
    depth = 0
    current = []
    in_string = False
    for char in text:
        if in_string:
            current.append(char)
            if char == '"':
                in_string = False
            continue
        if char == '"':
            in_string = True
            current.append(char)
        elif char == "(":
            depth += 1
            current.append(char)
        elif char == ")":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class Assembler:
    """Assemble AT&T-lite source into a :class:`Module`.

    ``force_long_branches`` disables rel8 relaxation so every
    conditional branch uses the 6-byte ``0F 8x`` form (used by the
    ablation benchmark that measures how the 2-byte/6-byte mix shifts
    Table 3's error-location distribution).
    """

    def __init__(self, text_base=0x08048000, data_base=0x0804C000,
                 force_long_branches=False):
        self.text_base = text_base
        self.data_base = data_base
        self.force_long_branches = force_long_branches

    def assemble(self, source):
        statements = self._parse(source)
        self._relax(statements)
        return self._emit(statements)

    # ------------------------------------------------------------------
    # Parsing

    def _parse(self, source):
        statements = []
        section = "text"
        for line_number, raw_line in enumerate(source.splitlines(), 1):
            line = self._strip_comment(raw_line).strip()
            if not line:
                continue
            # A line may carry "label: insn".
            while True:
                match = re.match(r"^(\.?[A-Za-z_][A-Za-z0-9_.$]*)\s*:\s*",
                                 line)
                if not match:
                    break
                statements.append(_Statement("label", section,
                                             payload=match.group(1),
                                             line=line_number))
                line = line[match.end():]
            if not line:
                continue
            if line.startswith("."):
                section = self._parse_directive(line, section, statements,
                                                line_number)
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operand_text = parts[1] if len(parts) > 1 else ""
            operands = tuple(_split_operands(operand_text))
            statements.append(_Statement("insn", section, mnemonic,
                                         operands, line_number))
        return statements

    @staticmethod
    def _strip_comment(line):
        out = []
        in_string = False
        escaped = False
        for char in line:
            if in_string:
                if escaped:
                    escaped = False
                elif char == "\\":
                    escaped = True
                elif char == '"':
                    in_string = False
            elif char == '"':
                in_string = True
            elif char == "#":
                break
            out.append(char)
        return "".join(out)

    def _parse_directive(self, line, section, statements, line_number):
        parts = line.split(None, 1)
        name = parts[0]
        argument = parts[1].strip() if len(parts) > 1 else ""
        if name == ".text":
            return "text"
        if name == ".data":
            return "data"
        if name in (".global", ".globl"):
            statements.append(_Statement("global", section,
                                         payload=argument,
                                         line=line_number))
            return section
        if name in (".byte", ".word", ".long", ".asciz", ".ascii",
                    ".space", ".align"):
            statements.append(_Statement(name, section, payload=argument,
                                         line=line_number))
            return section
        raise AssemblerError("unknown directive %s" % name, line_number)

    # ------------------------------------------------------------------
    # Relaxation: compute sizes, expanding short branches as needed.

    _BRANCH_MNEMONICS = None  # built lazily

    def _is_relaxable_branch(self, mnemonic):
        if mnemonic == "jmp":
            return True
        if mnemonic.startswith("j") and mnemonic[1:] in CONDITION_BY_SUFFIX:
            return True
        return False

    def _relax(self, statements):
        if self.force_long_branches:
            for statement in statements:
                if statement.kind == "insn" and self._is_relaxable_branch(
                        statement.mnemonic):
                    statement.long_form = True
        # Iterate until no short branch needs expanding.  Start with
        # everything short; each round recomputes the layout.
        for _round in range(64):
            symbols = self._layout(statements)
            changed = False
            for statement in statements:
                if statement.kind != "insn":
                    continue
                if statement.long_form:
                    continue
                mnemonic = statement.mnemonic
                if not self._is_relaxable_branch(mnemonic):
                    continue
                target_token = statement.operands[0]
                if target_token.startswith("*"):
                    continue  # indirect: not relaxable
                if _NUMBER_RE.match(target_token):
                    target = _parse_number(target_token)
                else:
                    if target_token not in symbols:
                        # Unknown until emit; treat as long to be safe.
                        statement.long_form = True
                        changed = True
                        continue
                    target = symbols[target_token]
                displacement = target - (statement.address + statement.size)
                if not -128 <= displacement <= 127:
                    statement.long_form = True
                    changed = True
            if not changed:
                return
        raise AssemblerError("branch relaxation did not converge")

    def _layout(self, statements):
        """Assign addresses and sizes; return the symbol table so far."""
        symbols = {}
        cursors = {"text": self.text_base, "data": self.data_base}
        for statement in statements:
            address = cursors[statement.section]
            statement.address = address
            if statement.kind == "label":
                symbols[statement.payload] = address
                statement.size = 0
            elif statement.kind == "insn":
                statement.size = self._insn_size(statement)
            elif statement.kind == "global":
                statement.size = 0
            else:
                statement.size = self._directive_size(statement)
            cursors[statement.section] += statement.size
        return symbols

    def _insn_size(self, statement):
        mnemonic = statement.mnemonic
        if self._is_relaxable_branch(mnemonic) and not statement.operands[
                0].startswith("*"):
            if statement.long_form:
                return 5 if mnemonic == "jmp" else 6
            return 2
        # Everything else encodes identically in every round; encode
        # with a dummy symbol resolver to learn the length.
        encoded = self._encode_insn(statement, _SizingSymbols(), final=False)
        return len(encoded)

    def _directive_size(self, statement):
        name, payload = statement.kind, statement.payload
        if name == ".byte":
            return len(_split_operands(payload))
        if name == ".word":
            return 2 * len(_split_operands(payload))
        if name == ".long":
            return 4 * len(_split_operands(payload))
        if name in (".asciz", ".ascii"):
            value = _parse_string_literal(payload, statement.line)
            return len(value) + (1 if name == ".asciz" else 0)
        if name == ".space":
            return _parse_number(payload)
        if name == ".align":
            alignment = _parse_number(payload)
            remainder = statement.address % alignment
            return (alignment - remainder) % alignment
        raise AssemblerError("unhandled directive %s" % name,
                             statement.line)

    # ------------------------------------------------------------------
    # Final emission

    def _emit(self, statements):
        symbols = self._layout(statements)
        sections = {"text": bytearray(), "data": bytearray()}
        line_map = {}
        globals_ = set()
        symbol_sections = {}
        for statement in statements:
            if statement.kind == "label":
                symbol_sections[statement.payload] = statement.section
        for statement in statements:
            if statement.kind == "label":
                continue
            if statement.kind == "global":
                globals_.add(statement.payload)
                continue
            if statement.kind == "insn":
                blob = self._encode_insn(statement, symbols, final=True)
                if statement.section == "text":
                    line_map[statement.address] = statement.line
            else:
                blob = self._encode_directive(statement, symbols)
            expected = statement.size
            if len(blob) != expected:
                raise AssemblerError(
                    "size drift for %r: laid out %d, emitted %d"
                    % (statement.mnemonic or statement.kind, expected,
                       len(blob)), statement.line)
            sections[statement.section] += blob
        table = {}
        for name, address in symbols.items():
            table[name] = Symbol(name, symbol_sections.get(name, "text"),
                                 address, name in globals_)
        return Module(bytes(sections["text"]), bytes(sections["data"]),
                      self.text_base, self.data_base, table, line_map)

    def _encode_directive(self, statement, symbols):
        name, payload, line = (statement.kind, statement.payload,
                               statement.line)
        out = bytearray()
        if name == ".byte":
            for token in _split_operands(payload):
                out.append(self._resolve_scalar(token, symbols, line) & 0xFF)
        elif name == ".word":
            for token in _split_operands(payload):
                out += struct.pack(
                    "<H", self._resolve_scalar(token, symbols, line)
                    & 0xFFFF)
        elif name == ".long":
            for token in _split_operands(payload):
                out += struct.pack(
                    "<I", self._resolve_scalar(token, symbols, line)
                    & 0xFFFFFFFF)
        elif name in (".asciz", ".ascii"):
            out += _parse_string_literal(payload, line)
            if name == ".asciz":
                out.append(0)
        elif name == ".space":
            out += bytes(_parse_number(payload))
        elif name == ".align":
            out += b"\x90" * statement.size
        return bytes(out)

    def _resolve_scalar(self, token, symbols, line):
        token = token.strip()
        if _NUMBER_RE.match(token):
            return _parse_number(token)
        expr = _parse_symbol_expression(token, line)
        if isinstance(symbols, _SizingSymbols):
            return 0
        return expr.resolve(symbols, line)

    # ------------------------------------------------------------------
    # Instruction encoding

    def _encode_insn(self, statement, symbols, final):
        mnemonic = statement.mnemonic
        operands = statement.operands
        line = statement.line
        try:
            return self._encode_insn_inner(statement, mnemonic, operands,
                                           symbols, final, line)
        except AssemblerError:
            raise
        except (KeyError, ValueError, IndexError) as exc:
            raise AssemblerError("cannot encode '%s %s' (%s)"
                                 % (mnemonic, ", ".join(operands), exc),
                                 line)

    def _encode_insn_inner(self, statement, mnemonic, operands, symbols,
                           final, line):
        if mnemonic in _SIMPLE_OPS and not operands:
            return _SIMPLE_OPS[mnemonic]
        if mnemonic in _STRING_OPS:
            return bytes([_STRING_OPS[mnemonic]])
        if mnemonic in _REP_PREFIXES:
            # "rep movsb" style: the remainder is a string instruction.
            inner = operands[0] if operands else ""
            if inner not in _STRING_OPS:
                raise AssemblerError("rep with non-string op %r" % inner,
                                     line)
            return bytes([_REP_PREFIXES[mnemonic], _STRING_OPS[inner]])

        # Branches and calls -------------------------------------------------
        if mnemonic == "call":
            return self._encode_call_jmp(statement, symbols, final,
                                         is_call=True)
        if mnemonic == "jmp":
            return self._encode_call_jmp(statement, symbols, final,
                                         is_call=False)
        if mnemonic.startswith("j") and mnemonic[1:] in CONDITION_BY_SUFFIX:
            return self._encode_jcc(statement, symbols, final)
        if mnemonic in ("loop", "loope", "loopz", "loopne", "loopnz",
                        "jecxz"):
            return self._encode_loop(statement, symbols, final)
        if mnemonic.startswith("set") and (mnemonic[3:]
                                           in CONDITION_BY_SUFFIX):
            condition = CONDITION_BY_SUFFIX[mnemonic[3:]]
            operand = self._parse_operand(operands[0], symbols, line, size=1)
            return (bytes([0x0F, 0x90 | condition])
                    + encode_modrm(0, operand))
        if mnemonic.startswith("cmov") and (mnemonic[4:]
                                            in CONDITION_BY_SUFFIX):
            condition = CONDITION_BY_SUFFIX[mnemonic[4:]]
            src = self._parse_operand(operands[0], symbols, line)
            dst = self._parse_operand(operands[1], symbols, line)
            if dst.kind != "reg":
                raise AssemblerError("cmov destination must be register",
                                     line)
            return (bytes([0x0F, 0x40 | condition])
                    + encode_modrm(dst.index, src))

        if mnemonic == "int":
            value = self._immediate_value(operands[0], symbols, line)
            return bytes([0xCD, value & 0xFF])
        if mnemonic in ("aam", "aad"):
            value = self._immediate_value(operands[0], symbols, line) \
                if operands else 10
            opcode = 0xD4 if mnemonic == "aam" else 0xD5
            return bytes([opcode, value & 0xFF])
        if mnemonic == "enter":
            alloc = self._immediate_value(operands[0], symbols, line)
            nesting = self._immediate_value(operands[1], symbols, line)
            return (b"\xC8" + struct.pack("<H", alloc & 0xFFFF)
                    + struct.pack("<B", nesting & 0xFF))
        if mnemonic == "bswap":
            operand = self._parse_operand(operands[0], symbols, line)
            if operand.kind != "reg" or operand.size != 4:
                raise AssemblerError("bswap needs a 32-bit register",
                                     line)
            return bytes([0x0F, 0xC8 + operand.index])
        if mnemonic == "push" or mnemonic == "pushl":
            return self._encode_push(operands[0], symbols, line)
        if mnemonic == "pop" or mnemonic == "popl":
            return self._encode_pop(operands[0], symbols, line)

        normalized, size = _normalize_mnemonic(mnemonic)
        if normalized in _ALU_INDEX:
            return self._encode_alu(normalized, size, operands, symbols,
                                    line)
        if normalized == "mov":
            return self._encode_mov(size, operands, symbols, line)
        if normalized == "test":
            return self._encode_test(size, operands, symbols, line)
        if normalized == "lea":
            src = self._parse_operand(operands[0], symbols, line)
            dst = self._parse_operand(operands[1], symbols, line)
            if src.kind != "mem" or dst.kind != "reg":
                raise AssemblerError("lea needs mem, reg", line)
            return b"\x8D" + encode_modrm(dst.index, src)
        if normalized in ("inc", "dec"):
            return self._encode_incdec(normalized, size, operands, symbols,
                                       line)
        if normalized in _GROUP_F7_INDEX or normalized == "imul":
            return self._encode_group_f7(normalized, size, operands,
                                         symbols, line)
        if normalized in _SHIFT_INDEX:
            return self._encode_shift(normalized, size, operands, symbols,
                                      line)
        if normalized == "xchg":
            first = self._parse_operand(operands[0], symbols, line,
                                        size=size)
            second = self._parse_operand(operands[1], symbols, line,
                                         size=size)
            opcode = 0x86 if size == 1 else 0x87
            if first.kind == "reg":
                return bytes([opcode]) + encode_modrm(first.index, second)
            if second.kind == "reg":
                return bytes([opcode]) + encode_modrm(second.index, first)
            raise AssemblerError("xchg needs a register operand", line)
        if normalized in ("movzb", "movzw", "movsb_", "movsw_"):
            table = {"movzb": (0xB6, 1), "movzw": (0xB7, 2),
                     "movsb_": (0xBE, 1), "movsw_": (0xBF, 2)}
            second_byte, src_size = table[normalized]
            src = self._parse_operand(operands[0], symbols, line,
                                      size=src_size)
            dst = self._parse_operand(operands[1], symbols, line)
            return (bytes([0x0F, second_byte])
                    + encode_modrm(dst.index, src))
        if normalized == "ret":
            value = self._immediate_value(operands[0], symbols, line)
            return b"\xC2" + struct.pack("<H", value & 0xFFFF)
        raise AssemblerError("unknown mnemonic %r" % mnemonic, line)

    def _encode_call_jmp(self, statement, symbols, final, is_call):
        token = statement.operands[0]
        line = statement.line
        if token.startswith("*"):
            operand = self._parse_operand(token[1:], symbols, line)
            reg_field = 2 if is_call else 4
            return b"\xFF" + encode_modrm(reg_field, operand)
        target = self._branch_target(token, symbols, line, final)
        if is_call:
            displacement = target - (statement.address + 5)
            return b"\xE8" + struct.pack("<i", displacement)
        if statement.long_form:
            displacement = target - (statement.address + 5)
            return b"\xE9" + struct.pack("<i", displacement)
        displacement = target - (statement.address + 2)
        return b"\xEB" + struct.pack("<b", displacement)

    def _encode_jcc(self, statement, symbols, final):
        mnemonic = statement.mnemonic
        line = statement.line
        condition = CONDITION_BY_SUFFIX[mnemonic[1:]]
        target = self._branch_target(statement.operands[0], symbols, line,
                                     final)
        if statement.long_form:
            displacement = target - (statement.address + 6)
            return (bytes([0x0F, 0x80 | condition])
                    + struct.pack("<i", displacement))
        displacement = target - (statement.address + 2)
        return bytes([0x70 | condition]) + struct.pack("<b", displacement)

    def _encode_loop(self, statement, symbols, final):
        opcodes = {"loopne": 0xE0, "loopnz": 0xE0, "loope": 0xE1,
                   "loopz": 0xE1, "loop": 0xE2, "jecxz": 0xE3}
        target = self._branch_target(statement.operands[0], symbols,
                                     statement.line, final)
        displacement = target - (statement.address + 2)
        if final and not -128 <= displacement <= 127:
            raise AssemblerError("loop target out of rel8 range",
                                 statement.line)
        return (bytes([opcodes[statement.mnemonic]])
                + struct.pack("<b", displacement if final else 0))

    def _branch_target(self, token, symbols, line, final):
        if _NUMBER_RE.match(token):
            return _parse_number(token)
        if not final or isinstance(symbols, _SizingSymbols):
            return symbols[token] if (not isinstance(symbols,
                                                     _SizingSymbols)
                                      and token in symbols) else 0
        if token not in symbols:
            raise AssemblerError("undefined label %r" % token, line)
        return symbols[token]

    def _encode_push(self, token, symbols, line):
        operand = self._parse_operand(token, symbols, line)
        if operand.kind == "reg":
            return bytes([0x50 + operand.index])
        if operand.kind == "imm":
            # Numeric immediates resolve identically in the sizing and
            # final passes; symbol immediates resolve to a worst-case
            # large value under sizing, so the form never shrinks.
            value = operand.value
            signed = value - 0x100000000 if value >= 0x80000000 else value
            if -128 <= signed <= 127:
                return b"\x6A" + struct.pack("<b", signed)
            return b"\x68" + struct.pack("<I", value & 0xFFFFFFFF)
        return b"\xFF" + encode_modrm(6, operand)

    def _encode_pop(self, token, symbols, line):
        operand = self._parse_operand(token, symbols, line)
        if operand.kind == "reg":
            return bytes([0x58 + operand.index])
        return b"\x8F" + encode_modrm(0, operand)

    def _encode_alu(self, op_name, size, operands, symbols, line):
        index = _ALU_INDEX[op_name]
        src = self._parse_operand(operands[0], symbols, line, size=size)
        dst = self._parse_operand(operands[1], symbols, line, size=size)
        if src.kind == "imm":
            if size == 1:
                return (bytes([0x80]) + encode_modrm(index, dst)
                        + struct.pack("<B", src.value & 0xFF))
            signed = (src.value - 0x100000000
                      if src.value >= 0x80000000 else src.value)
            if -128 <= signed <= 127:
                return (b"\x83" + encode_modrm(index, dst)
                        + struct.pack("<b", signed))
            return (b"\x81" + encode_modrm(index, dst)
                    + struct.pack("<I", src.value & 0xFFFFFFFF))
        base = index << 3
        if src.kind == "reg":
            opcode = base | (0x00 if size == 1 else 0x01)
            return bytes([opcode]) + encode_modrm(src.index, dst)
        if dst.kind == "reg":
            opcode = base | (0x02 if size == 1 else 0x03)
            return bytes([opcode]) + encode_modrm(dst.index, src)
        raise AssemblerError("memory-to-memory %s" % op_name, line)

    def _encode_mov(self, size, operands, symbols, line):
        src = self._parse_operand(operands[0], symbols, line, size=size)
        dst = self._parse_operand(operands[1], symbols, line, size=size)
        if src.kind == "imm":
            if dst.kind == "reg":
                if size == 1:
                    return (bytes([0xB0 + dst.index])
                            + struct.pack("<B", src.value & 0xFF))
                return (bytes([0xB8 + dst.index])
                        + struct.pack("<I", src.value & 0xFFFFFFFF))
            if size == 1:
                return (b"\xC6" + encode_modrm(0, dst)
                        + struct.pack("<B", src.value & 0xFF))
            return (b"\xC7" + encode_modrm(0, dst)
                    + struct.pack("<I", src.value & 0xFFFFFFFF))
        if src.kind == "reg":
            opcode = 0x88 if size == 1 else 0x89
            return bytes([opcode]) + encode_modrm(src.index, dst)
        if dst.kind == "reg":
            opcode = 0x8A if size == 1 else 0x8B
            return bytes([opcode]) + encode_modrm(dst.index, src)
        raise AssemblerError("memory-to-memory mov", line)

    def _encode_test(self, size, operands, symbols, line):
        src = self._parse_operand(operands[0], symbols, line, size=size)
        dst = self._parse_operand(operands[1], symbols, line, size=size)
        if src.kind == "imm":
            opcode = 0xF6 if size == 1 else 0xF7
            packed = (struct.pack("<B", src.value & 0xFF) if size == 1
                      else struct.pack("<I", src.value & 0xFFFFFFFF))
            return bytes([opcode]) + encode_modrm(0, dst) + packed
        if src.kind == "reg":
            opcode = 0x84 if size == 1 else 0x85
            return bytes([opcode]) + encode_modrm(src.index, dst)
        if dst.kind == "reg":
            opcode = 0x84 if size == 1 else 0x85
            return bytes([opcode]) + encode_modrm(dst.index, src)
        raise AssemblerError("memory-to-memory test", line)

    def _encode_incdec(self, op_name, size, operands, symbols, line):
        operand = self._parse_operand(operands[0], symbols, line, size=size)
        if operand.kind == "reg" and size == 4:
            base = 0x40 if op_name == "inc" else 0x48
            return bytes([base + operand.index])
        reg_field = 0 if op_name == "inc" else 1
        opcode = 0xFE if size == 1 else 0xFF
        return bytes([opcode]) + encode_modrm(reg_field, operand)

    def _encode_group_f7(self, op_name, size, operands, symbols, line):
        if op_name == "imul":
            if len(operands) == 1:
                op_name = "imul1"
            elif len(operands) == 2:
                src = self._parse_operand(operands[0], symbols, line)
                dst = self._parse_operand(operands[1], symbols, line)
                return b"\x0F\xAF" + encode_modrm(dst.index, src)
            else:
                imm = self._parse_operand(operands[0], symbols, line)
                src = self._parse_operand(operands[1], symbols, line)
                dst = self._parse_operand(operands[2], symbols, line)
                return (b"\x69" + encode_modrm(dst.index, src)
                        + struct.pack("<I", imm.value & 0xFFFFFFFF))
        reg_field = _GROUP_F7_INDEX[op_name]
        operand = self._parse_operand(operands[0], symbols, line, size=size)
        opcode = 0xF6 if size == 1 else 0xF7
        return bytes([opcode]) + encode_modrm(reg_field, operand)

    def _encode_shift(self, op_name, size, operands, symbols, line):
        reg_field = _SHIFT_INDEX[op_name]
        count = self._parse_operand(operands[0], symbols, line, size=1)
        target = self._parse_operand(operands[1], symbols, line, size=size)
        if count.kind == "imm":
            if count.value == 1:
                opcode = 0xD0 if size == 1 else 0xD1
                return bytes([opcode]) + encode_modrm(reg_field, target)
            opcode = 0xC0 if size == 1 else 0xC1
            return (bytes([opcode]) + encode_modrm(reg_field, target)
                    + struct.pack("<B", count.value & 0xFF))
        if count.kind == "reg" and count.index == ECX and count.size == 1:
            opcode = 0xD2 if size == 1 else 0xD3
            return bytes([opcode]) + encode_modrm(reg_field, target)
        raise AssemblerError("shift count must be imm or %cl", line)

    # ------------------------------------------------------------------
    # Operand parsing

    def _parse_operand(self, token, symbols, line, size=4):
        token = token.strip()
        if token.startswith("%"):
            name = token[1:].lower()
            if name in REG32_BY_NAME:
                return Reg(REG32_BY_NAME[name], 4)
            if name in REG8_BY_NAME:
                return Reg(REG8_BY_NAME[name], 1)
            if name in REG16_BY_NAME:
                return Reg(REG16_BY_NAME[name], 2)
            if name in SEG_BY_NAME:
                raise AssemblerError("segment register operands are not "
                                     "assemblable here", line)
            raise AssemblerError("unknown register %r" % token, line)
        if token.startswith("$"):
            value = self._immediate_value(token[1:], symbols, line)
            return Imm(value & 0xFFFFFFFF, 4)
        return self._parse_memory(token, symbols, line, size)

    def _immediate_value(self, text, symbols, line):
        text = text.strip()
        if text.startswith("$"):
            text = text[1:].strip()
        if _NUMBER_RE.match(text):
            return _parse_number(text)
        expr = _parse_symbol_expression(text, line)
        if isinstance(symbols, _SizingSymbols):
            return 0x7FFFFFFF  # force imm32 sizing for symbols
        return expr.resolve(symbols, line)

    def _parse_memory(self, token, symbols, line, size):
        match = re.match(r"^([^()]*)(\((.*)\))?$", token.strip())
        if not match:
            raise AssemblerError("cannot parse operand %r" % token, line)
        disp_text = match.group(1).strip()
        inner = match.group(3)
        disp = 0
        if disp_text:
            if _NUMBER_RE.match(disp_text):
                disp = _parse_number(disp_text)
            else:
                expr = _parse_symbol_expression(disp_text, line)
                if isinstance(symbols, _SizingSymbols):
                    disp = 0x10000000  # force disp32 sizing
                else:
                    disp = expr.resolve(symbols, line)
        base = index = None
        scale = 1
        if inner is not None:
            pieces = [piece.strip() for piece in inner.split(",")]
            if pieces and pieces[0]:
                base = self._register_index(pieces[0], line)
            if len(pieces) > 1 and pieces[1]:
                index = self._register_index(pieces[1], line)
            if len(pieces) > 2 and pieces[2]:
                scale = _parse_number(pieces[2])
        return Mem(base=base, index=index, scale=scale, disp=disp,
                   size=size)

    @staticmethod
    def _register_index(token, line):
        token = token.strip()
        if not token.startswith("%"):
            raise AssemblerError("expected register, got %r" % token, line)
        name = token[1:].lower()
        if name not in REG32_BY_NAME:
            raise AssemblerError("bad base/index register %r" % token, line)
        return REG32_BY_NAME[name]


class _SizingSymbols(dict):
    """Symbol table stand-in for the sizing pass: every lookup resolves
    to a worst-case address so layout never shrinks later."""

    def __contains__(self, key):
        return True

    def __getitem__(self, key):
        return 0x7FFFFFFF


def _normalize_mnemonic(mnemonic):
    """Map an AT&T mnemonic (+size suffix) to (base_name, size)."""
    special = {"movzbl": ("movzb", 4), "movzwl": ("movzw", 4),
               "movsbl": ("movsb_", 4), "movswl": ("movsw_", 4),
               "cbtw": ("cbw", 4), "cltd": ("cdq", 4)}
    if mnemonic in special:
        return special[mnemonic]
    for base in ("mov", "test", "lea", "inc", "dec", "not", "neg", "mul",
                 "imul", "div", "idiv", "xchg", "ret", "add", "or", "adc",
                 "sbb", "and", "sub", "xor", "cmp", "rol", "ror", "rcl",
                 "rcr", "shl", "sal", "shr", "sar"):
        if mnemonic == base:
            return base, 4
        if mnemonic == base + "l":
            return base, 4
        if mnemonic == base + "b":
            return base, 1
    raise KeyError(mnemonic)


def _parse_symbol_expression(text, line):
    match = re.match(r"^(\.?[A-Za-z_][A-Za-z0-9_.$]*)\s*([+-]\s*\d+)?$",
                     text.strip())
    if not match:
        raise AssemblerError("cannot parse expression %r" % text, line)
    offset = 0
    if match.group(2):
        offset = int(match.group(2).replace(" ", ""))
    return _Expr(match.group(1), offset)


def _parse_string_literal(text, line):
    text = text.strip()
    if not (text.startswith('"') and text.endswith('"')):
        raise AssemblerError("expected string literal", line)
    body = text[1:-1]
    out = bytearray()
    i = 0
    while i < len(body):
        char = body[i]
        if char == "\\" and i + 1 < len(body):
            escape = body[i + 1]
            mapping = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92,
                       '"': 34}
            if escape in mapping:
                out.append(mapping[escape])
                i += 2
                continue
            if escape == "x":
                out.append(int(body[i + 2:i + 4], 16))
                i += 4
                continue
        out.append(ord(char))
        i += 1
    return bytes(out)


def assemble(source, text_base=0x08048000, data_base=0x0804C000):
    """Convenience wrapper: assemble *source* into a :class:`Module`."""
    return Assembler(text_base, data_base).assemble(source)
