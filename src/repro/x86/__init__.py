"""IA-32 subset ISA: decoder, assembler, disassembler and tables.

This package reproduces, at the byte-encoding level, the part of the
Intel architecture the DSN 2001 study depends on -- most importantly
the contiguous conditional-branch opcode blocks (0x70-0x7F and
0F 80-0F 8F) whose Hamming-distance-1 layout is the root cause of the
measured security break-ins.
"""

from .assembler import Assembler, Module, Symbol, assemble
from .decoder import decode
from .disassembler import disassemble_range, format_listing
from .errors import (AssemblerError, DecodeOutOfBytesError,
                     InvalidOpcodeError, X86Error)
from .instruction import (CONTROL_KINDS, FarPtr, Imm, Instruction,
                          KIND_CALL, KIND_COND_BRANCH, KIND_JUMP,
                          KIND_OTHER, KIND_RET, Mem, Reg, Rel, SegReg)

__all__ = [
    "Assembler", "Module", "Symbol", "assemble", "decode",
    "disassemble_range", "format_listing", "AssemblerError",
    "DecodeOutOfBytesError", "InvalidOpcodeError", "X86Error",
    "CONTROL_KINDS", "FarPtr", "Imm", "Instruction", "KIND_CALL",
    "KIND_COND_BRANCH", "KIND_JUMP", "KIND_OTHER", "KIND_RET", "Mem",
    "Reg", "Rel", "SegReg",
]
