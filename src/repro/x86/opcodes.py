"""Shared IA-32 opcode tables.

The experiment's validity rests on the *real* x86 opcode layout: a
single-bit flip in a ``je`` (0x74) must land on exactly the neighbours
it has on silicon (``jne`` 0x75, ``jna`` 0x76, ``jo`` 0x70, ``jl`` 0x7C,
the ``fs`` prefix 0x64, ``push %esp`` 0x54, ``xor $imm8,%al`` 0x34 and
``hlt`` 0xF4).  These tables pin that layout down in one place for the
decoder, the assembler and the analysis code.
"""

from __future__ import annotations

# Arithmetic/logic family selected by bits 5-3 of opcodes 0x00-0x3F and
# by the reg field of the 0x80-0x83 immediate group.
ALU_OPS = ("add", "or", "adc", "sbb", "and", "sub", "xor", "cmp")

# Shift/rotate family selected by the reg field of 0xC0-0xC1, 0xD0-0xD3.
SHIFT_OPS = ("rol", "ror", "rcl", "rcr", "shl", "shr", "shl", "sar")

# Unary group selected by the reg field of 0xF6/0xF7.
GROUP_F7 = ("test", "test", "not", "neg", "mul", "imul", "div", "idiv")

# Group selected by the reg field of 0xFF ("/7" is undefined).
GROUP_FF = ("inc", "dec", "call", "lcall", "jmp", "ljmp", "push", None)

# Opcode ranges of the conditional branch blocks the paper studies.
JCC_REL8_BASE = 0x70         # 0x70 - 0x7F
JCC_REL32_ESCAPE_BASE = 0x80  # 0F 80 - 0F 8F
SETCC_ESCAPE_BASE = 0x90      # 0F 90 - 0F 9F
CMOV_ESCAPE_BASE = 0x40       # 0F 40 - 0F 4F

# One-byte prefixes.
SEGMENT_PREFIXES = {0x26: 0, 0x2E: 1, 0x36: 2, 0x3E: 3, 0x64: 4, 0x65: 5}
PREFIX_OPSIZE = 0x66
PREFIX_ADDRSIZE = 0x67
PREFIX_LOCK = 0xF0
PREFIX_REPNE = 0xF2
PREFIX_REP = 0xF3
ALL_PREFIXES = (frozenset(SEGMENT_PREFIXES)
                | {PREFIX_OPSIZE, PREFIX_ADDRSIZE,
                   PREFIX_LOCK, PREFIX_REPNE, PREFIX_REP})

# Instructions that execute but immediately fault with #GP in ring 3 at
# IOPL 0 (Linux default).  A flip landing on one of these crashes the
# process with SIGSEGV, exactly like the paper's "hlt" neighbours.
PRIVILEGED_MNEMONICS = frozenset({
    "hlt", "cli", "sti", "in", "out", "insb", "insd", "outsb", "outsd",
    "clts", "invd", "wbinvd", "wrmsr", "rdmsr", "lgdt", "lidt", "lmsw",
    "ltr", "lldt", "mov_cr", "mov_dr", "iret",
})

MAX_INSTRUCTION_LENGTH = 15


def is_jcc_rel8(opcode):
    """True for the 2-byte conditional branch block 0x70-0x7F."""
    return 0x70 <= opcode <= 0x7F


def is_jcc_rel32(opcode):
    """True for the 6-byte conditional branch block 0F 80 - 0F 8F.

    *opcode* is the decoder's combined form ``0x0F00 | second_byte``.
    """
    return 0x0F80 <= opcode <= 0x0F8F


def jcc_condition(opcode):
    """Extract the 4-bit condition code from a Jcc opcode (either form)."""
    return opcode & 0xF


def describe_opcode_byte(byte):
    """Human label for a one-byte opcode value (analysis/reporting)."""
    if byte in SEGMENT_PREFIXES:
        return "seg-prefix"
    if byte in (PREFIX_OPSIZE, PREFIX_ADDRSIZE):
        return "size-prefix"
    if byte in (PREFIX_LOCK, PREFIX_REPNE, PREFIX_REP):
        return "lock/rep-prefix"
    if is_jcc_rel8(byte):
        return "jcc-rel8"
    if 0x50 <= byte <= 0x57:
        return "push-reg"
    if 0x58 <= byte <= 0x5F:
        return "pop-reg"
    if 0x40 <= byte <= 0x47:
        return "inc-reg"
    if 0x48 <= byte <= 0x4F:
        return "dec-reg"
    if byte < 0x40 and (byte & 7) < 6:
        return ALU_OPS[byte >> 3]
    if 0xB8 <= byte <= 0xBF:
        return "mov-reg-imm32"
    if 0xB0 <= byte <= 0xB7:
        return "mov-reg-imm8"
    return "0x%02X" % byte
