"""ModRM / SIB byte decoding and encoding for 32-bit addressing mode.

Only the 32-bit address-size form is implemented; the emulator raises a
fault when a corrupted 0x67 prefix requests 16-bit addressing (see
``repro.emu.cpu``), which matches how such an instruction would behave
in practice on a flat 32-bit Linux process: the 16-bit effective address
would point into unmapped low memory.
"""

from __future__ import annotations

import struct

from .errors import DecodeOutOfBytesError
from .instruction import Mem, Reg
from .registers import EBP, ESP


class ByteReader:
    """Sequential byte reader over a buffer with bounds checking."""

    def __init__(self, data, offset=0, address=0):
        self.data = data
        self.offset = offset
        self.address = address  # address of the first instruction byte

    def remaining(self):
        return len(self.data) - self.offset

    def read_u8(self):
        if self.offset >= len(self.data):
            raise DecodeOutOfBytesError(self.address)
        value = self.data[self.offset]
        self.offset += 1
        return value

    def read_u16(self):
        if self.offset + 2 > len(self.data):
            raise DecodeOutOfBytesError(self.address)
        value = struct.unpack_from("<H", self.data, self.offset)[0]
        self.offset += 2
        return value

    def read_u32(self):
        if self.offset + 4 > len(self.data):
            raise DecodeOutOfBytesError(self.address)
        value = struct.unpack_from("<I", self.data, self.offset)[0]
        self.offset += 4
        return value

    def read_s8(self):
        value = self.read_u8()
        return value - 0x100 if value >= 0x80 else value

    def read_s32(self):
        value = self.read_u32()
        return value - 0x100000000 if value >= 0x80000000 else value


def sign32(value):
    """Interpret *value* as a signed 32-bit integer."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


def decode_modrm(reader, operand_size=4, segment=None):
    """Decode a ModRM byte (plus SIB/displacement) from *reader*.

    Returns ``(reg_field, rm_operand)`` where ``reg_field`` is the 3-bit
    reg/opcode-extension field and ``rm_operand`` is a :class:`Reg` or
    :class:`Mem` of width *operand_size*.
    """
    modrm = reader.read_u8()
    mod = modrm >> 6
    reg_field = (modrm >> 3) & 7
    rm = modrm & 7

    if mod == 3:
        return reg_field, Reg(rm, operand_size)

    base = None
    index = None
    scale = 1
    disp = 0

    if rm == 4:  # SIB byte follows
        sib = reader.read_u8()
        scale = 1 << (sib >> 6)
        index_field = (sib >> 3) & 7
        base_field = sib & 7
        if index_field != ESP:     # ESP cannot be an index
            index = index_field
        if base_field == EBP and mod == 0:
            disp = reader.read_s32()
        else:
            base = base_field
    elif rm == EBP and mod == 0:   # disp32, no base
        disp = reader.read_s32()
    else:
        base = rm

    if mod == 1:
        disp += reader.read_s8()
    elif mod == 2:
        disp += reader.read_s32()

    return reg_field, Mem(base=base, index=index, scale=scale,
                          disp=disp, size=operand_size, segment=segment)


def encode_modrm(reg_field, operand):
    """Encode *operand* (Reg or Mem) with the given reg field.

    Returns the bytes of ModRM [+ SIB] [+ displacement].  The encoder
    picks the shortest displacement form, mirroring what gcc emits.
    """
    if operand.kind == "reg":
        return bytes([0xC0 | (reg_field << 3) | operand.index])

    base, index, scale, disp = (operand.base, operand.index,
                                operand.scale, operand.disp)
    out = bytearray()

    need_sib = index is not None or base == ESP
    if base is None and index is None:
        # Absolute disp32: mod=00 rm=101.
        out.append((reg_field << 3) | 0x05)
        out += struct.pack("<i", sign32(disp))
        return bytes(out)

    if base is None and index is not None:
        # Index without base requires SIB with base=EBP, mod=00, disp32.
        out.append((reg_field << 3) | 0x04)
        out.append(_sib(scale, index, EBP))
        out += struct.pack("<i", sign32(disp))
        return bytes(out)

    # Choose mod by displacement width; base EBP cannot use mod=00.
    if disp == 0 and base != EBP:
        mod = 0
    elif -128 <= disp <= 127:
        mod = 1
    else:
        mod = 2

    rm = 0x04 if need_sib else base
    out.append((mod << 6) | (reg_field << 3) | rm)
    if need_sib:
        out.append(_sib(scale, index if index is not None else ESP, base))
    if mod == 1:
        out += struct.pack("<b", disp)
    elif mod == 2:
        out += struct.pack("<i", sign32(disp))
    return bytes(out)


def _sib(scale, index, base):
    scale_bits = {1: 0, 2: 1, 4: 2, 8: 3}[scale]
    return (scale_bits << 6) | (index << 3) | base
