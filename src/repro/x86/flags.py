"""EFLAGS register model and condition-code evaluation.

The study revolves around conditional branches, so all sixteen IA-32
condition codes (``jo`` ... ``jg``, encodings 0x0 ... 0xF) are modelled
faithfully, including parity (PF) and adjust (AF) flags: a single-bit
flip can legitimately turn ``je`` into ``jp``, and the outcome of that
run depends on PF being computed correctly.
"""

from __future__ import annotations

CF = 1 << 0   # carry
PF = 1 << 2   # parity (of least significant result byte)
AF = 1 << 4   # adjust (BCD carry out of bit 3)
ZF = 1 << 6   # zero
SF = 1 << 7   # sign
TF = 1 << 8   # trap (single step)
IF = 1 << 9   # interrupt enable (always set in user mode)
DF = 1 << 10  # direction (string ops)
OF = 1 << 11  # overflow

# Bit 1 of EFLAGS is architecturally fixed to 1.
FLAGS_FIXED_ONES = 0x2
# Bits user code may actually modify via popf/sahf on Linux.
FLAGS_USER_MASK = CF | PF | AF | ZF | SF | DF | OF
STATUS_FLAGS = CF | PF | AF | ZF | SF | OF

FLAG_NAMES = {CF: "CF", PF: "PF", AF: "AF", ZF: "ZF", SF: "SF",
              TF: "TF", IF: "IF", DF: "DF", OF: "OF"}

# Parity of each byte value, precomputed: PF is set when the low result
# byte has an *even* number of one bits.
_PARITY_EVEN = tuple(bin(value).count("1") % 2 == 0 for value in range(256))


def parity_flag(result):
    """Return PF if the low byte of *result* has even parity, else 0."""
    return PF if _PARITY_EVEN[result & 0xFF] else 0


# Condition code mnemonic suffixes in hardware encoding order; entry i is
# the suffix of the Jcc/SETcc instruction with condition field i.
CONDITION_SUFFIXES = (
    "o", "no", "b", "ae", "e", "ne", "be", "a",
    "s", "ns", "p", "np", "l", "ge", "le", "g",
)

CONDITION_BY_SUFFIX = {}
for _index, _suffix in enumerate(CONDITION_SUFFIXES):
    CONDITION_BY_SUFFIX[_suffix] = _index
# Common mnemonic aliases (Intel manual, table B-1).
CONDITION_BY_SUFFIX.update({
    "c": 2, "nae": 2, "nb": 3, "nc": 3, "z": 4, "nz": 5,
    "na": 6, "nbe": 7, "pe": 10, "po": 11, "nge": 12, "nl": 13,
    "ng": 14, "nle": 15,
})


def condition_met(condition, flags):
    """Evaluate condition code *condition* (0-15) against *flags*.

    Implements the IA-32 condition table; odd condition codes are the
    negation of the preceding even code.
    """
    base = condition & 0xE
    if base == 0x0:          # o / no
        result = bool(flags & OF)
    elif base == 0x2:        # b / ae
        result = bool(flags & CF)
    elif base == 0x4:        # e / ne
        result = bool(flags & ZF)
    elif base == 0x6:        # be / a
        result = bool(flags & (CF | ZF))
    elif base == 0x8:        # s / ns
        result = bool(flags & SF)
    elif base == 0xA:        # p / np
        result = bool(flags & PF)
    elif base == 0xC:        # l / ge
        result = bool(flags & SF) != bool(flags & OF)
    else:                    # le / g
        result = bool(flags & ZF) or (bool(flags & SF) != bool(flags & OF))
    if condition & 1:
        result = not result
    return result


def describe_flags(flags):
    """Render set flags as a compact string, e.g. ``"ZF|PF"``."""
    names = [name for bit, name in sorted(FLAG_NAMES.items()) if flags & bit]
    return "|".join(names) if names else "-"
