"""CPU fault model and its mapping to Linux signals.

The paper classifies a run as *System Detection* (SD) when the server
process crashes, "usually caused by an illegal instruction or
segmentation violation".  Faults raised by the emulator carry the same
distinctions so campaign reports can break crashes down by signal, just
like NFTAPE's logs did.
"""

from __future__ import annotations


class CpuFault(Exception):
    """Base class for architectural faults that kill a user process."""

    #: Linux signal delivered for this fault.
    signal = "SIGSEGV"
    #: Intel mnemonic of the exception vector.
    vector = "#GP"

    def __init__(self, address, detail=""):
        self.address = address
        self.detail = detail
        text = "%s at eip=0x%x" % (self.vector, address)
        if detail:
            text += " (%s)" % detail
        super().__init__(text)


class InvalidOpcodeFault(CpuFault):
    """#UD: undefined opcode -> SIGILL."""

    signal = "SIGILL"
    vector = "#UD"


class GeneralProtectionFault(CpuFault):
    """#GP: privileged instruction, bad selector, bad int -> SIGSEGV."""

    signal = "SIGSEGV"
    vector = "#GP"


class PageFault(CpuFault):
    """#PF: access to unmapped memory or write to read-only -> SIGSEGV."""

    signal = "SIGSEGV"
    vector = "#PF"

    def __init__(self, address, access="read", target=0):
        self.access = access
        self.target = target
        super().__init__(address, "%s of 0x%x" % (access, target))


class DivideErrorFault(CpuFault):
    """#DE: divide by zero / quotient overflow -> SIGFPE."""

    signal = "SIGFPE"
    vector = "#DE"


class BoundRangeFault(CpuFault):
    """#BR: BOUND check failed -> SIGSEGV."""

    signal = "SIGSEGV"
    vector = "#BR"


class BreakpointTrap(CpuFault):
    """#BP: int3 executed without a debugger -> SIGTRAP."""

    signal = "SIGTRAP"
    vector = "#BP"


class OverflowTrap(CpuFault):
    """#OF: INTO with OF set -> SIGSEGV (Linux delivers SIGSEGV)."""

    signal = "SIGSEGV"
    vector = "#OF"


class DebugTrap(CpuFault):
    """#DB: icebp / int1 -> SIGTRAP."""

    signal = "SIGTRAP"
    vector = "#DB"
