"""Flag-accurate integer ALU helpers.

Every routine returns ``(result, flags)`` where *flags* contains the
six status flags (CF PF AF ZF SF OF) computed exactly as IA-32 defines
them for the given operand width.  Correct flags matter unusually much
here: a single-bit opcode flip can turn ``je`` into ``jp`` or ``js``,
and whether the corrupted branch is taken -- hence whether a run is NM,
FSV or BRK -- depends on parity and sign bits most emulators skimp on.
"""

from __future__ import annotations

from ..x86.flags import AF, CF, OF, PF, SF, ZF, parity_flag

_MASKS = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFFFFFF}
_SIGN_BITS = {1: 0x80, 2: 0x8000, 4: 0x80000000}


def _szp(result, size):
    """SF/ZF/PF for a masked result."""
    flags = parity_flag(result)
    if result == 0:
        flags |= ZF
    if result & _SIGN_BITS[size]:
        flags |= SF
    return flags


def add(a, b, size, carry_in=0):
    mask = _MASKS[size]
    sign = _SIGN_BITS[size]
    a &= mask
    b &= mask
    total = a + b + carry_in
    result = total & mask
    flags = _szp(result, size)
    if total > mask:
        flags |= CF
    if ((a ^ result) & (b ^ result)) & sign:
        flags |= OF
    if ((a ^ b ^ result) & 0x10):
        flags |= AF
    return result, flags


def sub(a, b, size, borrow_in=0):
    mask = _MASKS[size]
    sign = _SIGN_BITS[size]
    a &= mask
    b &= mask
    total = a - b - borrow_in
    result = total & mask
    flags = _szp(result, size)
    if total < 0:
        flags |= CF
    if ((a ^ b) & (a ^ result)) & sign:
        flags |= OF
    if ((a ^ b ^ result) & 0x10):
        flags |= AF
    return result, flags


def logic(result, size):
    """Flags for AND/OR/XOR/TEST: CF=OF=0, AF undefined (cleared)."""
    return result & _MASKS[size], _szp(result & _MASKS[size], size)


def inc(a, size, old_flags):
    """INC preserves CF."""
    result, flags = add(a, 1, size)
    return result, (flags & ~CF) | (old_flags & CF)


def dec(a, size, old_flags):
    """DEC preserves CF."""
    result, flags = sub(a, 1, size)
    return result, (flags & ~CF) | (old_flags & CF)


def neg(a, size):
    result, flags = sub(0, a, size)
    # CF is set unless the operand was zero.
    if a & _MASKS[size]:
        flags |= CF
    else:
        flags &= ~CF
    return result, flags


def shl(a, count, size, old_flags):
    mask = _MASKS[size]
    sign = _SIGN_BITS[size]
    count &= 0x1F
    if count == 0:
        return a & mask, old_flags
    a &= mask
    result = (a << count) & mask
    flags = _szp(result, size)
    carry_out = (a >> (_bits(size) - count)) & 1 if count <= _bits(size) \
        else 0
    if carry_out:
        flags |= CF
    # OF defined only for count == 1: set if sign changed.
    if count == 1 and ((a ^ result) & sign):
        flags |= OF
    return result, flags


def shr(a, count, size, old_flags):
    mask = _MASKS[size]
    count &= 0x1F
    if count == 0:
        return a & mask, old_flags
    a &= mask
    result = (a >> count) & mask
    flags = _szp(result, size)
    if (a >> (count - 1)) & 1:
        flags |= CF
    if count == 1 and (a & _SIGN_BITS[size]):
        flags |= OF
    return result, flags


def sar(a, count, size, old_flags):
    mask = _MASKS[size]
    sign = _SIGN_BITS[size]
    count &= 0x1F
    if count == 0:
        return a & mask, old_flags
    a &= mask
    signed = a - (sign << 1) if a & sign else a
    result = (signed >> count) & mask
    flags = _szp(result, size)
    if (signed >> (count - 1)) & 1:
        flags |= CF
    return result, flags


def rol(a, count, size, old_flags):
    bits = _bits(size)
    mask = _MASKS[size]
    count &= 0x1F
    effective = count % bits
    a &= mask
    if count == 0:
        return a, old_flags
    result = ((a << effective) | (a >> (bits - effective))) & mask \
        if effective else a
    flags = old_flags & ~(CF | OF)
    if result & 1:
        flags |= CF
    if count == 1 and ((result ^ a) & _SIGN_BITS[size]):
        flags |= OF
    return result, flags


def ror(a, count, size, old_flags):
    bits = _bits(size)
    mask = _MASKS[size]
    count &= 0x1F
    effective = count % bits
    a &= mask
    if count == 0:
        return a, old_flags
    result = ((a >> effective) | (a << (bits - effective))) & mask \
        if effective else a
    flags = old_flags & ~(CF | OF)
    if result & _SIGN_BITS[size]:
        flags |= CF
    if count == 1:
        top = bool(result & _SIGN_BITS[size])
        next_top = bool(result & (_SIGN_BITS[size] >> 1))
        if top != next_top:
            flags |= OF
    return result, flags


def rcl(a, count, size, old_flags):
    bits = _bits(size) + 1
    mask = _MASKS[size]
    count = (count & 0x1F) % bits
    a &= mask
    carry = 1 if old_flags & CF else 0
    wide = (carry << _bits(size)) | a
    if count:
        wide = ((wide << count) | (wide >> (bits - count))) \
            & ((1 << bits) - 1)
    result = wide & mask
    carry_out = (wide >> _bits(size)) & 1
    flags = old_flags & ~(CF | OF)
    if carry_out:
        flags |= CF
    return result, flags


def rcr(a, count, size, old_flags):
    bits = _bits(size) + 1
    mask = _MASKS[size]
    count = (count & 0x1F) % bits
    a &= mask
    carry = 1 if old_flags & CF else 0
    wide = (carry << _bits(size)) | a
    if count:
        wide = ((wide >> count) | (wide << (bits - count))) \
            & ((1 << bits) - 1)
    result = wide & mask
    carry_out = (wide >> _bits(size)) & 1
    flags = old_flags & ~(CF | OF)
    if carry_out:
        flags |= CF
    return result, flags


def _bits(size):
    return size * 8


def signed(value, size):
    """Two's-complement interpretation of *value* at width *size*."""
    mask = _MASKS[size]
    sign = _SIGN_BITS[size]
    value &= mask
    return value - (mask + 1) if value & sign else value
