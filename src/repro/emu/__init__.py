"""CPU emulator: memory, faults, execution engine, process images."""

from .cpu import CPU
from .machine_exceptions import (BoundRangeFault, BreakpointTrap, CpuFault,
                                 DebugTrap, DivideErrorFault,
                                 GeneralProtectionFault, InvalidOpcodeFault,
                                 OverflowTrap, PageFault)
from .memory import Memory, PAGE_SHIFT, PAGE_SIZE, Region
from .perf import PerfCounters
from .process import (DEFAULT_MAX_INSTRUCTIONS, ExitStatus, Process,
                      STACK_SIZE, STACK_TOP)

__all__ = [
    "CPU", "Memory", "Region", "PAGE_SIZE", "PAGE_SHIFT",
    "Process", "ExitStatus", "PerfCounters",
    "DEFAULT_MAX_INSTRUCTIONS", "STACK_SIZE", "STACK_TOP", "CpuFault",
    "InvalidOpcodeFault", "GeneralProtectionFault", "PageFault",
    "DivideErrorFault", "BoundRangeFault", "BreakpointTrap",
    "OverflowTrap", "DebugTrap",
]
