"""Process images: loading an assembled module into memory and running
it to completion, crash, or instruction-budget exhaustion.

A :class:`Process` is the unit the fault injector works on.  Its layout
matches a statically linked 2001 Linux i386 binary:

* text at the module's text base (read-only + executable),
* data + bss immediately after the module's data,
* a stack just under 0xC0000000 (writable *and* executable -- IA-32
  had no NX bit in 2001, and wild jumps into the stack are one of the
  crash modes the study observes).

The paper's *permanent vulnerability window* arises because a fault in
a text page persists for every subsequent ``fork()``ed connection
handler until the page is reloaded.  That is modelled by keeping one
:class:`Memory` per server lifetime and spawning a fresh
:class:`Process` view per connection that shares the text region (see
:meth:`Process.clone_for_connection`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .cpu import CPU
from .memory import Memory

STACK_TOP = 0xBFFFF000
STACK_SIZE = 0x20000
DEFAULT_BSS_SIZE = 0x8000
DEFAULT_MAX_INSTRUCTIONS = 2_000_000


@dataclass
class ExitStatus:
    """How a run ended.

    ``kind`` is ``"exit"`` (voluntary), ``"crash"`` (fault/signal) or
    ``"limit"`` (instruction budget exhausted -- the emulator's stand-in
    for a hung process that a client-side timeout would eventually
    notice).
    """

    kind: str
    exit_code: int = 0
    signal: str = ""
    vector: str = ""
    fault_eip: int = 0
    fault_detail: str = ""
    instret: int = 0

    @property
    def crashed(self):
        return self.kind == "crash"

    def __str__(self):
        if self.kind == "exit":
            return "exit(%d) after %d instructions" % (self.exit_code,
                                                       self.instret)
        if self.kind == "crash":
            return "%s (%s) at eip=0x%x after %d instructions" \
                % (self.signal, self.vector, self.fault_eip, self.instret)
        return "instruction limit reached (%d)" % self.instret


class Process:
    """A loaded program plus the CPU that executes it."""

    def __init__(self, module, kernel=None, bss_size=DEFAULT_BSS_SIZE,
                 entry_symbol="_start", memory=None):
        self.module = module
        self.kernel = kernel
        if memory is None:
            memory = Memory()
            memory.map_region("text", module.text_base, module.text,
                              writable=False)
            data_blob = bytearray(module.data) + bytearray(bss_size)
            memory.map_region("data", module.data_base, data_blob)
            memory.map_region("stack", STACK_TOP - STACK_SIZE, STACK_SIZE)
        self.memory = memory
        self.cpu = CPU(memory, kernel)
        text = memory.region_named("text")
        self.cpu.cacheable = (text.start, text.end)
        self.entry = module.symbols[entry_symbol].address
        self.reset_cpu()

    def reset_cpu(self):
        """Point the CPU at the entry with a fresh stack (used when one
        server image handles several sequential connections)."""
        self.cpu.regs = [0] * 8
        self.cpu.regs[4] = STACK_TOP - 16  # ESP
        self.cpu.eip = self.entry
        self.cpu.halted = False
        self.cpu.instret = 0
        if hasattr(self.cpu, "exit_code"):
            del self.cpu.exit_code

    def clone_for_connection(self, kernel=None):
        """Fork-like: new process state sharing this image's *text*
        (including any injected fault) but with fresh data and stack.

        Real wu-ftpd/sshd fork a child per connection; the child shares
        the parent's corrupted text page.  Data pages are copy-on-write
        and effectively fresh for the authentication path.
        """
        memory = Memory()
        text = self.memory.region_named("text")
        memory.map_region("text", text.start, bytes(text.data),
                          writable=False)
        data_blob = (bytearray(self.module.data)
                     + bytearray(DEFAULT_BSS_SIZE))
        memory.map_region("data", self.module.data_base, data_blob)
        memory.map_region("stack", STACK_TOP - STACK_SIZE, STACK_SIZE)
        clone = Process.__new__(Process)
        clone.module = self.module
        clone.kernel = kernel if kernel is not None else self.kernel
        clone.memory = memory
        clone.cpu = CPU(memory, clone.kernel)
        clone.cpu.cacheable = (text.start, text.end)
        clone.entry = self.entry
        clone.reset_cpu()
        return clone

    # ------------------------------------------------------------------
    # Fault injection hooks (the debugger-style interface NFTAPE used)

    def flip_bit(self, address, bit):
        """Flip one bit of one byte, permissions ignored (POKETEXT)."""
        original = self.memory.peek(address)
        self.memory.poke(address, original ^ (1 << bit))
        self.cpu.invalidate_cache(address)
        return original

    def restore_byte(self, address, value):
        self.memory.poke(address, value)
        self.cpu.invalidate_cache(address)

    # ------------------------------------------------------------------

    def run(self, max_instructions=DEFAULT_MAX_INSTRUCTIONS):
        outcome, payload = self.cpu.run(max_instructions)
        return self._status(outcome, payload)

    def run_until(self, address, max_instructions=DEFAULT_MAX_INSTRUCTIONS):
        outcome, payload = self.cpu.run_until(address, max_instructions)
        if outcome == "breakpoint":
            return ExitStatus(kind="breakpoint", instret=self.cpu.instret)
        return self._status(outcome, payload)

    def run_watched(self, watch, max_instructions=DEFAULT_MAX_INSTRUCTIONS):
        outcome, payload = self.cpu.run_watched(watch, max_instructions)
        if outcome == "watched":
            return ExitStatus(kind="watched", instret=self.cpu.instret)
        return self._status(outcome, payload)

    def _status(self, outcome, payload):
        if outcome == "exit":
            return ExitStatus(kind="exit", exit_code=payload,
                              instret=self.cpu.instret)
        if outcome == "crash":
            return ExitStatus(kind="crash", signal=payload.signal,
                              vector=payload.vector,
                              fault_eip=payload.address,
                              fault_detail=payload.detail,
                              instret=self.cpu.instret)
        return ExitStatus(kind="limit", instret=self.cpu.instret)
