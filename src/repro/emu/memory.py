"""Flat 32-bit paged memory with region permissions.

The address-space layout mirrors a 2001-era Linux i386 process: text at
0x08048000, data/bss above it, stack below 0xC0000000.  There is no NX
bit (IA-32 gained one only in 2004), so *any* mapped page is
executable -- a wild jump into the stack or data executes whatever
bytes are there until something faults, which is exactly the crash
behaviour the paper's SD category captures.

Writes to the text region fault (#PF) as they would through a
copy-on-write read-only mapping; the fault injector bypasses the
permission check via :meth:`Memory.poke`, playing the role of
ptrace(POKETEXT).
"""

from __future__ import annotations

import struct

from .machine_exceptions import PageFault

# Pre-bound Struct methods: the emulator calls these on every 16/32-bit
# memory access, and a bound Struct method skips the per-call format
# parse of the module-level struct functions.
_unpack_u16 = struct.Struct("<H").unpack_from
_unpack_u32 = struct.Struct("<I").unpack_from
_pack_u16 = struct.Struct("<H").pack_into
_pack_u32 = struct.Struct("<I").pack_into

#: Fixed page granularity for dirty tracking.  4 KiB matches the i386
#: hardware page size the emulated processes believe they run on, and
#: keeps the restore unit large enough that the per-store bookkeeping
#: (one set.add) stays cheap relative to the work it saves.
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT


class Region:
    """A contiguous mapped range of the address space.

    ``end`` is precomputed: regions never resize after mapping
    (snapshot restores replace ``data`` contents in place), and the
    bound is checked on every memory access in the emulator hot loop.

    ``dirty`` holds region-relative page indices touched by any store
    (including permission-bypassing :meth:`Memory.poke`) since the last
    :meth:`Memory.clear_dirty`.  Snapshot restore writes back only
    these pages instead of the whole region.
    """

    __slots__ = ("name", "start", "data", "writable", "end", "dirty")

    def __init__(self, name, start, size_or_data, writable=True):
        self.name = name
        self.start = start
        # bytearray() accepts both an int (zero-filled size) and a
        # buffer (copied contents), so one construction covers both.
        self.data = bytearray(size_or_data)
        self.writable = writable
        self.end = start + len(self.data)
        self.dirty = set()

    def contains(self, address):
        return self.start <= address < self.end

    def page_count(self):
        return (len(self.data) + PAGE_SIZE - 1) >> PAGE_SHIFT


class Memory:
    """Sparse region-based memory map."""

    def __init__(self):
        self.regions = []
        self._last = None  # most-recently-hit region (locality cache)

    def map_region(self, name, start, size_or_data, writable=True):
        region = Region(name, start, size_or_data, writable)
        for existing in self.regions:
            if region.start < existing.end and existing.start < region.end:
                raise ValueError("region %s overlaps %s"
                                 % (name, existing.name))
        self.regions.append(region)
        self.regions.sort(key=lambda r: r.start)
        self._last = region
        return region

    def region_named(self, name):
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(name)

    def _find(self, address):
        last = self._last
        if last is not None and last.start <= address < last.end:
            return last
        for region in self.regions:
            if region.start <= address < region.end:
                self._last = region
                return region
        return None

    # -- reads ---------------------------------------------------------
    #
    # The locality cache check is inlined into each accessor: the
    # emulator's hot loop issues one of these per memory operand, and a
    # ``_find`` call on every access is measurable.  On a miss (or a
    # region-boundary straddle) they fall back to the general path.

    def read8(self, address, eip=0):
        address &= 0xFFFFFFFF
        region = self._last
        if region is None or not (region.start <= address < region.end):
            region = self._find(address)
            if region is None:
                raise PageFault(eip, "read", address)
        return region.data[address - region.start]

    def read16(self, address, eip=0):
        address &= 0xFFFFFFFF
        region = self._last
        if (region is None or address < region.start
                or address + 2 > region.end):
            region = self._find(address)
            if region is None or address + 2 > region.end:
                return self._slow_read(address, 2, eip)
        return _unpack_u16(region.data, address - region.start)[0]

    def read32(self, address, eip=0):
        address &= 0xFFFFFFFF
        region = self._last
        if (region is None or address < region.start
                or address + 4 > region.end):
            region = self._find(address)
            if region is None or address + 4 > region.end:
                return self._slow_read(address, 4, eip)
        return _unpack_u32(region.data, address - region.start)[0]

    def _slow_read(self, address, width, eip):
        value = 0
        for i in range(width):
            value |= self.read8(address + i, eip) << (8 * i)
        return value

    def read_bytes(self, address, count, eip=0):
        out = bytearray()
        for i in range(count):
            out.append(self.read8(address + i, eip))
        return bytes(out)

    def read_cstring(self, address, limit=4096, eip=0):
        """Read a NUL-terminated string (kernel copy_from_user style)."""
        out = bytearray()
        for i in range(limit):
            byte = self.read8(address + i, eip)
            if byte == 0:
                break
            out.append(byte)
        return bytes(out)

    # -- writes --------------------------------------------------------

    def write8(self, address, value, eip=0):
        address &= 0xFFFFFFFF
        region = self._last
        if region is None or not (region.start <= address < region.end):
            region = self._find(address)
            if region is None:
                raise PageFault(eip, "write", address)
        if not region.writable:
            raise PageFault(eip, "write", address)
        offset = address - region.start
        region.dirty.add(offset >> PAGE_SHIFT)
        region.data[offset] = value & 0xFF

    def write16(self, address, value, eip=0):
        address &= 0xFFFFFFFF
        region = self._last
        if (region is None or address < region.start
                or address + 2 > region.end or not region.writable):
            region = self._find(address)
            if (region is None or not region.writable
                    or address + 2 > region.end):
                self._slow_write(address, value, 2, eip)
                return
        offset = address - region.start
        page = offset >> PAGE_SHIFT
        region.dirty.add(page)
        if (offset + 1) >> PAGE_SHIFT != page:
            region.dirty.add(page + 1)
        _pack_u16(region.data, offset, value & 0xFFFF)

    def write32(self, address, value, eip=0):
        address &= 0xFFFFFFFF
        region = self._last
        if (region is None or address < region.start
                or address + 4 > region.end or not region.writable):
            region = self._find(address)
            if (region is None or not region.writable
                    or address + 4 > region.end):
                self._slow_write(address, value, 4, eip)
                return
        offset = address - region.start
        page = offset >> PAGE_SHIFT
        region.dirty.add(page)
        if (offset + 3) >> PAGE_SHIFT != page:
            region.dirty.add(page + 1)
        _pack_u32(region.data, offset, value & 0xFFFFFFFF)

    def _slow_write(self, address, value, width, eip):
        for i in range(width):
            self.write8(address + i, (value >> (8 * i)) & 0xFF, eip)

    def write_bytes(self, address, blob, eip=0):
        for i, byte in enumerate(blob):
            self.write8(address + i, byte, eip)

    # -- special -------------------------------------------------------

    def poke(self, address, value):
        """Write one byte ignoring permissions (ptrace POKETEXT)."""
        region = self._find(address & 0xFFFFFFFF)
        if region is None:
            raise PageFault(0, "poke", address)
        offset = (address & 0xFFFFFFFF) - region.start
        region.dirty.add(offset >> PAGE_SHIFT)
        region.data[offset] = value & 0xFF

    # -- dirty-page tracking -------------------------------------------

    def dirty_pages(self):
        """Map of region name -> sorted region-relative dirty pages."""
        return {region.name: sorted(region.dirty)
                for region in self.regions if region.dirty}

    def clear_dirty(self):
        for region in self.regions:
            region.dirty.clear()

    def peek(self, address):
        """Read one byte ignoring permissions (ptrace PEEKTEXT)."""
        region = self._find(address & 0xFFFFFFFF)
        if region is None:
            raise PageFault(0, "peek", address)
        return region.data[(address & 0xFFFFFFFF) - region.start]

    def fetch_window(self, address, count=15):
        """Return up to *count* bytes for instruction fetch.

        Raises :class:`PageFault` (an instruction-fetch fault) when the
        first byte is unmapped; a window truncated by a region boundary
        is returned short and the decoder faults if the instruction
        needs the missing bytes.
        """
        address &= 0xFFFFFFFF
        region = self._find(address)
        if region is None:
            raise PageFault(address, "exec", address)
        offset = address - region.start
        return bytes(region.data[offset:offset + count])
