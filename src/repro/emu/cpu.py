"""IA-32 CPU execution engine.

Executes instructions decoded by :mod:`repro.x86.decoder` against a
:class:`repro.emu.memory.Memory`.  The engine favours architectural
fidelity over speed in semantics, but the hot loop is built for the
exhaustive injection campaigns (see ``DESIGN.md`` section 10):

* a **prepared-op cache** over the text segment: each cached entry is
  ``(callable, instruction, fall-through eip)``, so a retire costs one
  dict probe and one call instead of re-hashing the mnemonic and
  re-walking operands; the most frequent instruction forms get
  specialised closures with their operand accessors pre-resolved;
* **lazy EFLAGS**: ALU fast paths record the last op's operands
  instead of computing SF/ZF/PF/AF/OF/CF; the flags materialise only
  when something actually reads ``cpu.eflags`` (a Jcc, ``pushf``, a
  snapshot, a test) -- flags clobbered unread are never computed;
* **basic-block supersteps**: ``run``/``run_until`` execute
  straight-line runs of prepared ops without per-instruction
  breakpoint/budget bookkeeping between branch boundaries.

The reference path (:meth:`CPU.slow_step`) keeps the original
decode-and-dispatch semantics and is differentially tested against
the fast path.  Perf counters live on :attr:`CPU.perf`.

Anything a corrupted byte stream can decode into is executable here:
BCD adjusts, rotate-through-carry, string ops, segment pops, x87
escapes -- and the privileged instructions fault with #GP exactly as
they would in ring 3, which is what turns many flipped bits into the
paper's SD (crash) category rather than silent corruption.
"""

from __future__ import annotations

from ..x86 import decoder as x86_decoder
from ..x86.errors import DecodeOutOfBytesError, InvalidOpcodeError
from ..x86.flags import (AF, CF, DF, FLAGS_FIXED_ONES, FLAGS_USER_MASK, IF,
                         OF, PF, SF, STATUS_FLAGS, ZF, condition_met,
                         parity_flag)
from ..x86.instruction import CONTROL_KINDS, Mem
from ..x86.registers import (EAX, EBP, EBX, ECX, EDI, EDX, ESI, ESP,
                             VALID_SELECTORS)
from . import alu
from .machine_exceptions import (BoundRangeFault, BreakpointTrap, CpuFault,
                                 DebugTrap, DivideErrorFault,
                                 GeneralProtectionFault, InvalidOpcodeFault,
                                 OverflowTrap, PageFault)
from .perf import PerfCounters

_ALU_NAMES = ("add", "or", "adc", "sbb", "and", "sub", "xor", "cmp")
_SHIFT_NAMES = ("rol", "ror", "rcl", "rcr", "shl", "shr", "sar")
_JCC_SUFFIXES = ("o", "no", "b", "ae", "e", "ne", "be", "a",
                 "s", "ns", "p", "np", "l", "ge", "le", "g")

# Linux i386 user-mode selector values.
_INITIAL_SEGMENTS = [0x2B, 0x23, 0x2B, 0x2B, 0x0, 0x33]

#: mnemonics that end a basic block even though their ``kind`` is not a
#: control kind: they can halt the CPU, trap, or loop, so the run loop
#: must regain control right after them.
_BLOCK_TERMINATORS = frozenset({
    "int3", "int1", "into", "iret", "hlt",
    "loop", "loope", "loopne", "jecxz",
})

#: mnemonics that may never join a block at all: they read or write
#: ``instret`` mid-execution (``int 0x80`` hands the kernel a CPU whose
#: retire count must be exact, ``rdtsc`` returns it, the string ops
#: self-adjust it per iteration), so they only run through
#: :meth:`CPU.step`, whose accounting is per-instruction.
#: Rep-prefixed instructions are excluded for the same reason (their
#: ``instret`` contribution is data-dependent).
_BLOCK_EXCLUDED = frozenset({
    "int", "rdtsc",
    "movsb", "movsd", "cmpsb", "cmpsd",
    "stosb", "stosd", "lodsb", "lodsd", "scasb", "scasd",
})

_MASK32 = 0xFFFFFFFF


class CPU:
    """One hardware thread executing a user-mode process image."""

    def __init__(self, memory, kernel=None):
        self.memory = memory
        self.kernel = kernel
        self.regs = [0] * 8
        self.eip = 0
        self.perf = PerfCounters()
        self._lazy = None         # pending lazy-EFLAGS record
        self._eflags = FLAGS_FIXED_ONES | IF
        self.segments = list(_INITIAL_SEGMENTS)
        self.instret = 0          # instructions retired
        self.halted = False
        self.decode_cache = {}
        self.prepared = {}        # address -> (fn, instruction, next_eip)
        self.blocks = {}          # address -> basic block of prepared ops
        #: eviction index: address bucket -> set of block start
        #: addresses whose byte span touches that bucket.  Lets a
        #: single-address invalidation check a handful of candidate
        #: blocks instead of scanning the whole block cache -- the
        #: invalidation runs once per experiment restore, so it is on
        #: the campaign hot path.  Entries may be stale (block already
        #: evicted or rebuilt shorter); they are dropped lazily.
        self.block_index = {}
        #: optional list of cache-insert start addresses (decodes,
        #: prepared ops, blocks) since last drained.  ``None`` (the
        #: default) disables logging; the snapshot injector enables it
        #: so a restore can evict exactly the entries built from
        #: modified text (see :meth:`evict_suspect_decodes`).
        self.decode_log = None
        self.cacheable = None     # (start, end) range eligible for caching
        self.coverage = None      # optional set of executed EIPs
        self.trace_hook = None    # optional fn(cpu, instruction) per step
        #: optional forensic EIP ring (:mod:`repro.obs.forensics`).
        #: ``None`` keeps the plain fast loops byte-for-byte untouched
        #: (zero overhead); a ring switches :meth:`run` to the
        #: forensic loop, which appends at basic-block granularity --
        #: whole ``block[3]`` address tuples, no per-instruction
        #: bookkeeping -- and single EIPs on the step path.  The ring
        #: ends with the *faulting* instruction after a crash (it did
        #: not retire; ``instret`` stays exact).
        self.forensic_ring = None
        #: optional sampling profiler (:mod:`repro.obs.sampler`).
        #: Same zero-overhead contract as the forensic ring: ``None``
        #: leaves the plain loops untouched; a sampler switches
        #: :meth:`run` to the sampling loop, which counts down whole
        #: supersteps and indexes ``block[3]`` for sampled EIPs.
        #: When both a ring and a sampler are attached the forensic
        #: loop wins (crash evidence outranks profiling).
        self.sampler = None
        self._next_eip = 0
        self._dispatch = self._build_dispatch()

    # ------------------------------------------------------------------
    # Register access

    def read_reg(self, index, size=4):
        if size == 4:
            return self.regs[index]
        if size == 2:
            return self.regs[index] & 0xFFFF
        if index < 4:
            return self.regs[index] & 0xFF
        return (self.regs[index - 4] >> 8) & 0xFF

    def write_reg(self, index, value, size=4):
        if size == 4:
            self.regs[index] = value & 0xFFFFFFFF
        elif size == 2:
            self.regs[index] = (self.regs[index] & 0xFFFF0000) \
                | (value & 0xFFFF)
        elif index < 4:
            self.regs[index] = (self.regs[index] & 0xFFFFFF00) \
                | (value & 0xFF)
        else:
            self.regs[index - 4] = (self.regs[index - 4] & 0xFFFF00FF) \
                | ((value & 0xFF) << 8)

    # ------------------------------------------------------------------
    # Operand access

    def effective_address(self, operand):
        address = operand.disp
        if operand.base is not None:
            address += self.regs[operand.base]
        if operand.index is not None:
            address += self.regs[operand.index] * operand.scale
        return address & 0xFFFFFFFF

    def read_operand(self, operand):
        kind = operand.kind
        if kind == "reg":
            return self.read_reg(operand.index, operand.size)
        if kind == "imm":
            return operand.value
        if kind == "mem":
            address = self.effective_address(operand)
            if operand.size == 1:
                return self.memory.read8(address, self.eip)
            if operand.size == 2:
                return self.memory.read16(address, self.eip)
            return self.memory.read32(address, self.eip)
        if kind == "rel":
            return operand.target
        raise InvalidOpcodeFault(self.eip, "unreadable operand")

    def write_operand(self, operand, value):
        kind = operand.kind
        if kind == "reg":
            self.write_reg(operand.index, value, operand.size)
            return
        if kind == "mem":
            address = self.effective_address(operand)
            if operand.size == 1:
                self.memory.write8(address, value, self.eip)
            elif operand.size == 2:
                self.memory.write16(address, value, self.eip)
            else:
                self.memory.write32(address, value, self.eip)
            return
        raise InvalidOpcodeFault(self.eip, "unwritable operand")

    # ------------------------------------------------------------------
    # Stack

    def push32(self, value):
        esp = (self.regs[ESP] - 4) & 0xFFFFFFFF
        self.memory.write32(esp, value, self.eip)
        self.regs[ESP] = esp

    def pop32(self):
        esp = self.regs[ESP]
        value = self.memory.read32(esp, self.eip)
        self.regs[ESP] = (esp + 4) & 0xFFFFFFFF
        return value

    # ------------------------------------------------------------------
    # Flag helpers (lazy EFLAGS materialisation)
    #
    # The fast-path ALU closures do not compute status flags; they
    # stash ``("add"|"sub"|"logic", operands...)`` in ``_lazy`` and the
    # flags are computed -- through the same :mod:`repro.emu.alu`
    # routines the eager path uses -- only when ``eflags`` is read.  A
    # record overwritten before any read is counted as elided.

    @property
    def eflags(self):
        if self._lazy is not None:
            self._materialise_flags()
        return self._eflags

    @eflags.setter
    def eflags(self, value):
        if self._lazy is not None:
            self._lazy = None
            self.perf.flags_elided += 1
        self._eflags = value

    def _materialise_flags(self):
        lazy = self._lazy
        self._lazy = None
        kind = lazy[0]
        if kind == "sub":
            __, flags = alu.sub(lazy[1], lazy[2], lazy[3], lazy[4])
        elif kind == "add":
            __, flags = alu.add(lazy[1], lazy[2], lazy[3], lazy[4])
        else:  # logic
            __, flags = alu.logic(lazy[1], lazy[2])
        self._eflags = (self._eflags & ~STATUS_FLAGS) | flags
        self.perf.flags_forced += 1

    def set_status_flags(self, new_flags, mask=STATUS_FLAGS):
        if self._lazy is not None:
            if mask & STATUS_FLAGS == STATUS_FLAGS:
                # Every lazily pending bit is about to be overwritten:
                # the record can be dropped unmaterialised.
                self._lazy = None
                self.perf.flags_elided += 1
            else:
                self._materialise_flags()
        self._eflags = (self._eflags & ~mask) | (new_flags & mask)

    # ------------------------------------------------------------------
    # Execution loop

    def fetch_decode(self, address):
        cached = self.decode_cache.get(address)
        if cached is not None:
            return cached
        try:
            window = self.memory.fetch_window(address, 15)
            instruction = x86_decoder.decode(window, address)
        except InvalidOpcodeError as exc:
            raise InvalidOpcodeFault(address, str(exc)) from exc
        except DecodeOutOfBytesError as exc:
            raise PageFault(address, "exec", address) from exc
        if self.cacheable and (self.cacheable[0] <= address
                               < self.cacheable[1]):
            self.decode_cache[address] = instruction
            if self.decode_log is not None:
                self.decode_log.append(address)
        return instruction

    #: longest encodable IA-32 instruction; a cached decode starting
    #: up to this many bytes before a modified address may cover it.
    MAX_INSTRUCTION_LENGTH = 15

    def invalidate_cache(self, address=None):
        """Drop cached decodes, prepared ops and basic blocks after a
        text-segment modification.

        With no *address* every cache is dropped (arbitrary bytes may
        have changed).  With an *address*, only cached entries whose
        byte range covers that address are evicted -- a single-bit
        flip then costs a handful of evictions instead of a full
        re-decode of the auth section on every experiment.  Blocks are
        range-checked against their whole byte span, so a block is
        evicted whenever any of its member instructions is.
        """
        if address is None:
            self.decode_cache.clear()
            self.prepared.clear()
            self.blocks.clear()
            self.block_index.clear()
            return
        cache = self.decode_cache
        prepared = self.prepared
        for start in range(address - self.MAX_INSTRUCTION_LENGTH + 1,
                           address + 1):
            cached = cache.get(start)
            if cached is not None and start + len(cached.raw) > address:
                del cache[start]
            entry = prepared.get(start)
            if entry is not None \
                    and start + len(entry[1].raw) > address:
                del prepared[start]
        candidates = self.block_index.get(
            address >> self.BLOCK_BUCKET_SHIFT)
        if candidates:
            blocks = self.blocks
            for start in [s for s in candidates
                          if blocks.get(s) is None
                          or s <= address < blocks[s][2]]:
                candidates.discard(start)
                blocks.pop(start, None)

    def evict_suspect_decodes(self, addresses):
        """Drop cache entries decoded from since-restored text bytes.

        After a snapshot restore reverts the text segment, the only
        stale entries are ones *inserted while the bytes at
        `addresses` were modified* and whose span covers one of those
        bytes -- everything older was decoded from the identical clean
        image.  With :attr:`decode_log` enabled those inserts are
        known exactly, so the steady-state cost is a couple of span
        checks instead of a 15-byte range scan per modified address;
        entries decoded from clean suffix code stay warm.  Without a
        log this falls back to :meth:`invalidate_cache` per address.
        """
        log = self.decode_log
        if log is None:
            for address in addresses:
                self.invalidate_cache(address)
            return
        if log and addresses:
            cache = self.decode_cache
            prepared = self.prepared
            blocks = self.blocks
            addrs = tuple(addresses)
            for start in set(log):
                end = start
                cached = cache.get(start)
                if cached is not None:
                    end = start + len(cached.raw)
                entry = prepared.get(start)
                if entry is not None:
                    span = start + len(entry[1].raw)
                    if span > end:
                        end = span
                block = blocks.get(start)
                if block is not None and block[2] > end:
                    end = block[2]
                for address in addrs:
                    if start <= address < end:
                        cache.pop(start, None)
                        prepared.pop(start, None)
                        blocks.pop(start, None)
                        break
        del log[:]

    # -- prepared-op fast path -----------------------------------------

    def _prepare(self, address):
        """Build the prepared entry ``(fn, instruction, next_eip)`` for
        the instruction at *address*.

        ``fn()`` performs the instruction's full architectural effect
        -- including advancing ``eip`` to the fall-through or branch
        target -- but not the ``instret``/coverage/trace bookkeeping,
        which stays with the caller.  On a fault ``fn`` raises with
        ``eip`` still at *address*, exactly like the reference path.

        Raises the same :class:`CpuFault` the reference path would for
        undecodable or unimplemented instructions.
        """
        instruction = self.fetch_decode(address)
        next_eip = address + len(instruction.raw)
        builder = _SPECIALISERS.get(instruction.mnemonic)
        fn = None
        if builder is not None:
            fn = builder(self, instruction, address, next_eip)
        if fn is None:
            handler = self._dispatch.get(instruction.mnemonic)
            if handler is None:
                raise InvalidOpcodeFault(address, "unimplemented %s"
                                         % instruction.mnemonic)

            def fn(handler=handler, instruction=instruction,
                   next_eip=next_eip):
                self._next_eip = next_eip
                handler(instruction)
                self.eip = self._next_eip
        entry = (fn, instruction, next_eip)
        self.perf.prepared_misses += 1
        if self.cacheable and (self.cacheable[0] <= address
                               < self.cacheable[1]):
            self.prepared[address] = entry
            if self.decode_log is not None:
                self.decode_log.append(address)
        return entry

    #: basic blocks stop growing at this many instructions; bounds the
    #: cost of an eviction and of an over-long straight-line run.
    MAX_BLOCK_INSTRUCTIONS = 128

    #: granularity of :attr:`block_index` buckets (64-byte lines: a
    #: typical block spans one or two, keeping candidate sets tiny).
    BLOCK_BUCKET_SHIFT = 6

    def _block_at(self, address):
        """Build (and cache) the basic block starting at *address*.

        A block is ``(fns, inner_addresses, end_address, addresses)``:
        a tuple of prepared callables for a straight-line run, the set
        of member instruction addresses after the first (the ones a
        breakpoint check must consult), the end of the block's byte
        range (for eviction), and the per-op address tuple (used to
        recover the retired count when a mid-block op faults, since
        every op raises with ``eip`` still at its own address).
        Returns ``None`` outside the cacheable range, or when the
        first instruction may not join a block.

        The block ends at the first control transfer, block-terminating
        mnemonic (traps / ``loop`` family), undecodable tail
        instruction, or cacheable-range boundary.  ``int``/``rdtsc``
        and rep-prefixed string ops never join a block at all -- they
        observe or adjust ``instret`` mid-execution, so they only run
        through :meth:`step`, whose accounting is exact per
        instruction.
        """
        cacheable = self.cacheable
        if not cacheable or not (cacheable[0] <= address < cacheable[1]):
            return None
        fns = []
        addrs = []
        pc = address
        end = address
        limit = cacheable[1]
        entry = self.prepared.get(pc)
        if entry is None:
            entry = self._prepare(pc)      # first decode fault escapes
        while True:
            fn, instruction, next_eip = entry
            if (instruction.mnemonic in _BLOCK_EXCLUDED
                    or instruction.rep is not None):
                break
            fns.append(fn)
            addrs.append(pc)
            end = next_eip
            if (instruction.kind in CONTROL_KINDS
                    or instruction.mnemonic in _BLOCK_TERMINATORS
                    or next_eip >= limit
                    or len(fns) >= self.MAX_BLOCK_INSTRUCTIONS):
                break
            pc = next_eip
            entry = self.prepared.get(pc)
            if entry is None:
                try:
                    entry = self._prepare(pc)
                except CpuFault:
                    # A later instruction is undecodable: end the block
                    # before it and let step() raise it naturally, with
                    # eip/instret reflecting the instructions before.
                    break
        if not fns:
            return None
        block = (tuple(fns), frozenset(addrs[1:]), end, tuple(addrs))
        self.blocks[address] = block
        index = self.block_index
        for bucket in range(address >> self.BLOCK_BUCKET_SHIFT,
                            ((end - 1) >> self.BLOCK_BUCKET_SHIFT) + 1):
            index.setdefault(bucket, set()).add(address)
        if self.decode_log is not None:
            self.decode_log.append(address)
        return block

    def step(self):
        """Execute one instruction; raises CpuFault on a crash."""
        if self.coverage is not None or self.trace_hook is not None:
            return self.slow_step()
        entry = self.prepared.get(self.eip)
        if entry is None:
            entry = self._prepare(self.eip)
        else:
            self.perf.prepared_hits += 1
        entry[0]()
        self.instret += 1

    def slow_step(self):
        """Reference path: decode-and-dispatch one instruction with no
        prepared-op involvement.  Kept both as the executable spec the
        fast path is differentially tested against and as the path
        that honours ``coverage``/``trace_hook`` instrumentation.
        """
        eip = self.eip
        if self.coverage is not None:
            self.coverage.add(eip)
        instruction = self.fetch_decode(eip)
        self._next_eip = eip + len(instruction.raw)
        handler = self._dispatch.get(instruction.mnemonic)
        if handler is None:
            raise InvalidOpcodeFault(eip, "unimplemented %s"
                                     % instruction.mnemonic)
        handler(instruction)
        self.eip = self._next_eip
        self.instret += 1
        if self.trace_hook is not None:
            self.trace_hook(self, instruction)

    def run(self, max_instructions):
        """Run until exit, fault, or the instruction budget is spent.

        Returns ``("exit", code)``, ``("crash", fault)`` or
        ``("limit", None)``.
        """
        if self.coverage is not None or self.trace_hook is not None:
            return self._run_stepwise(max_instructions)
        if self.forensic_ring is not None:
            return self._run_forensic(max_instructions)
        if self.sampler is not None:
            return self._run_sampled(max_instructions)
        perf = self.perf
        blocks = self.blocks
        try:
            while not self.halted:
                remaining = max_instructions - self.instret
                if remaining <= 0:
                    return ("limit", None)
                block = blocks.get(self.eip)
                if block is None:
                    block = self._block_at(self.eip)
                if block is not None and len(block[0]) <= remaining:
                    fns = block[0]
                    try:
                        for fn in fns:
                            fn()
                    except BaseException:
                        # Every op raises with eip still at its own
                        # address, so eip identifies the faulting op;
                        # retire exactly the ones before it.
                        executed = block[3].index(self.eip)
                        self.instret += executed
                        perf.superstep_entries += 1
                        perf.superstep_instructions += executed
                        perf.prepared_hits += executed
                        raise
                    count = len(fns)
                    self.instret += count
                    perf.superstep_entries += 1
                    perf.superstep_instructions += count
                    perf.prepared_hits += count
                    continue
                self.step()
        except CpuFault as fault:
            return ("crash", fault)
        return ("exit", getattr(self, "exit_code", 0))

    def _run_forensic(self, max_instructions):
        """:meth:`run` with the forensic ring attached.

        A separate loop (rather than an in-loop ``if ring``) so the
        plain fast path pays nothing when forensics is off.  Ring
        appends reuse the block's prebuilt ``block[3]`` address tuple
        -- one append per superstep, no tuple construction -- and a
        mid-block fault truncates the final entry to the ops up to and
        including the faulting one, so the ring always ends at the
        instruction the crash report points at.
        """
        perf = self.perf
        blocks = self.blocks
        ring = self.forensic_ring
        ring_append = ring.append
        try:
            while not self.halted:
                remaining = max_instructions - self.instret
                if remaining <= 0:
                    return ("limit", None)
                block = blocks.get(self.eip)
                if block is None:
                    block = self._block_at(self.eip)
                if block is not None and len(block[0]) <= remaining:
                    fns = block[0]
                    ring_append(block[3])
                    try:
                        for fn in fns:
                            fn()
                    except BaseException:
                        executed = block[3].index(self.eip)
                        ring[-1] = block[3][:executed + 1]
                        self.instret += executed
                        perf.superstep_entries += 1
                        perf.superstep_instructions += executed
                        perf.prepared_hits += executed
                        raise
                    count = len(fns)
                    self.instret += count
                    perf.superstep_entries += 1
                    perf.superstep_instructions += count
                    perf.prepared_hits += count
                    continue
                ring_append(self.eip)
                self.step()
        except CpuFault as fault:
            return ("crash", fault)
        return ("exit", getattr(self, "exit_code", 0))

    def _run_sampled(self, max_instructions):
        """:meth:`run` with a sampling profiler attached.

        A separate loop (same discipline as :meth:`_run_forensic`) so
        the plain fast path pays nothing when profiling is off.
        ``skip`` counts instructions until the next sample; a whole
        superstep is usually skipped with one comparison and one
        subtraction, and sampled EIPs come from the prebuilt
        ``block[3]`` address tuple.  Sampling is in *retired
        instructions*, so a mid-block fault samples only the ops that
        retired before the faulting one -- the profile stays exact
        and deterministic.
        """
        perf = self.perf
        blocks = self.blocks
        sampler = self.sampler
        samples = sampler.samples
        period = sampler.period
        skip = sampler.skip
        try:
            while not self.halted:
                remaining = max_instructions - self.instret
                if remaining <= 0:
                    return ("limit", None)
                block = blocks.get(self.eip)
                if block is None:
                    block = self._block_at(self.eip)
                if block is not None and len(block[0]) <= remaining:
                    fns = block[0]
                    try:
                        for fn in fns:
                            fn()
                    except BaseException:
                        addrs = block[3]
                        executed = addrs.index(self.eip)
                        while skip < executed:
                            eip = addrs[skip]
                            samples[eip] = samples.get(eip, 0) + 1
                            skip += period
                        skip -= executed
                        self.instret += executed
                        perf.superstep_entries += 1
                        perf.superstep_instructions += executed
                        perf.prepared_hits += executed
                        raise
                    count = len(fns)
                    if skip < count:
                        addrs = block[3]
                        while skip < count:
                            eip = addrs[skip]
                            samples[eip] = samples.get(eip, 0) + 1
                            skip += period
                    skip -= count
                    self.instret += count
                    perf.superstep_entries += 1
                    perf.superstep_instructions += count
                    perf.prepared_hits += count
                    continue
                if skip == 0:
                    eip = self.eip
                    samples[eip] = samples.get(eip, 0) + 1
                    skip = period
                self.step()
                skip -= 1
        except CpuFault as fault:
            return ("crash", fault)
        finally:
            sampler.skip = skip
        return ("exit", getattr(self, "exit_code", 0))

    def _run_stepwise(self, max_instructions):
        """Reference run loop (used whenever instrumentation needs a
        hook between every instruction)."""
        try:
            while not self.halted:
                if self.instret >= max_instructions:
                    return ("limit", None)
                self.slow_step()
        except CpuFault as fault:
            return ("crash", fault)
        return ("exit", getattr(self, "exit_code", 0))

    def run_until(self, breakpoint_address, max_instructions):
        """Run until EIP equals *breakpoint_address* (before executing
        it), mirroring a debugger breakpoint.  Returns one of
        ``("breakpoint", None)``, ``("exit", code)``,
        ``("crash", fault)``, ``("limit", None)``.
        """
        if self.coverage is not None or self.trace_hook is not None:
            return self._run_until_stepwise(breakpoint_address,
                                            max_instructions)
        perf = self.perf
        blocks = self.blocks
        try:
            while not self.halted:
                eip = self.eip
                if eip == breakpoint_address:
                    return ("breakpoint", None)
                if self.instret >= max_instructions:
                    return ("limit", None)
                block = blocks.get(eip)
                if block is None:
                    block = self._block_at(eip)
                if (block is not None
                        and len(block[0]) <= max_instructions
                        - self.instret
                        and breakpoint_address not in block[1]):
                    fns = block[0]
                    try:
                        for fn in fns:
                            fn()
                    except BaseException:
                        executed = block[3].index(self.eip)
                        self.instret += executed
                        perf.superstep_entries += 1
                        perf.superstep_instructions += executed
                        perf.prepared_hits += executed
                        raise
                    count = len(fns)
                    self.instret += count
                    perf.superstep_entries += 1
                    perf.superstep_instructions += count
                    perf.prepared_hits += count
                    continue
                self.step()
        except CpuFault as fault:
            return ("crash", fault)
        return ("exit", getattr(self, "exit_code", 0))

    def _run_until_stepwise(self, breakpoint_address, max_instructions):
        try:
            while not self.halted:
                if self.eip == breakpoint_address:
                    return ("breakpoint", None)
                if self.instret >= max_instructions:
                    return ("limit", None)
                self.slow_step()
        except CpuFault as fault:
            return ("crash", fault)
        return ("exit", getattr(self, "exit_code", 0))

    def run_watched(self, watch, max_instructions):
        """Run until EIP lands on any address in the *watch* set (before
        executing it).  A set-valued :meth:`run_until`: supersteps skip
        the check only for blocks provably disjoint from the watch set,
        so the fast path keeps its throughput.  Returns one of
        ``("watched", None)``, ``("exit", code)``, ``("crash", fault)``,
        ``("limit", None)``.
        """
        if self.coverage is not None or self.trace_hook is not None:
            return self._run_watched_stepwise(watch, max_instructions)
        perf = self.perf
        blocks = self.blocks
        try:
            while not self.halted:
                eip = self.eip
                if eip in watch:
                    return ("watched", None)
                if self.instret >= max_instructions:
                    return ("limit", None)
                block = blocks.get(eip)
                if block is None:
                    block = self._block_at(eip)
                if (block is not None
                        and len(block[0]) <= max_instructions
                        - self.instret
                        and watch.isdisjoint(block[1])):
                    fns = block[0]
                    try:
                        for fn in fns:
                            fn()
                    except BaseException:
                        executed = block[3].index(self.eip)
                        self.instret += executed
                        perf.superstep_entries += 1
                        perf.superstep_instructions += executed
                        perf.prepared_hits += executed
                        raise
                    count = len(fns)
                    self.instret += count
                    perf.superstep_entries += 1
                    perf.superstep_instructions += count
                    perf.prepared_hits += count
                    continue
                self.step()
        except CpuFault as fault:
            return ("crash", fault)
        return ("exit", getattr(self, "exit_code", 0))

    def _run_watched_stepwise(self, watch, max_instructions):
        try:
            while not self.halted:
                if self.eip in watch:
                    return ("watched", None)
                if self.instret >= max_instructions:
                    return ("limit", None)
                self.slow_step()
        except CpuFault as fault:
            return ("crash", fault)
        return ("exit", getattr(self, "exit_code", 0))

    # ------------------------------------------------------------------
    # Dispatch table construction

    def _build_dispatch(self):
        table = {}
        for name in _ALU_NAMES:
            table[name] = self._make_alu(name)
            table[name + "b"] = table[name]
        for name in _SHIFT_NAMES:
            table[name] = self._make_shift(name)
            table[name + "b"] = table[name]
        for suffix in _JCC_SUFFIXES:
            table["j" + suffix] = self._op_jcc
            table["set" + suffix] = self._op_setcc
            table["cmov" + suffix] = self._op_cmovcc
        table.update({
            "mov": self._op_mov, "movb": self._op_mov,
            "lea": self._op_lea,
            "push": self._op_push, "pop": self._op_pop,
            "pusha": self._op_pusha, "popa": self._op_popa,
            "push_seg": self._op_push_seg, "pop_seg": self._op_pop_seg,
            "mov_from_seg": self._op_mov_from_seg,
            "mov_to_seg": self._op_mov_to_seg,
            "test": self._op_test, "testb": self._op_test,
            "xchg": self._op_xchg, "xchgb": self._op_xchg,
            "inc": self._op_inc, "incb": self._op_inc,
            "dec": self._op_dec, "decb": self._op_dec,
            "not": self._op_not, "notb": self._op_not,
            "neg": self._op_neg, "negb": self._op_neg,
            "mul": self._op_mul, "mulb": self._op_mul,
            "imul": self._op_imul, "imulb": self._op_imul,
            "imul2": self._op_imul2,
            "div": self._op_div, "divb": self._op_div,
            "idiv": self._op_idiv, "idivb": self._op_idiv,
            "call": self._op_call, "call_ind": self._op_call_ind,
            "jmp": self._op_jmp, "jmp_ind": self._op_jmp_ind,
            "ret": self._op_ret, "lret": self._op_privileged_ret,
            "lcall": self._op_far_transfer, "ljmp": self._op_far_transfer,
            "lcall_ind": self._op_far_transfer_ind,
            "ljmp_ind": self._op_far_transfer_ind,
            "loop": self._op_loop, "loope": self._op_loop,
            "loopne": self._op_loop, "jecxz": self._op_jecxz,
            "enter": self._op_enter, "leave": self._op_leave,
            "int": self._op_int, "int3": self._op_int3,
            "into": self._op_into, "int1": self._op_int1,
            "iret": self._op_privileged,
            "nop": self._op_nop, "fwait": self._op_nop,
            "fpu": self._op_fpu,
            "cwde": self._op_cwde, "cbw": self._op_cbw,
            "cdq": self._op_cdq, "cwd": self._op_cwd,
            "pushf": self._op_pushf, "popf": self._op_popf,
            "sahf": self._op_sahf, "lahf": self._op_lahf,
            "clc": self._op_clc, "stc": self._op_stc, "cmc": self._op_cmc,
            "cld": self._op_cld, "std": self._op_std,
            "daa": self._op_daa, "das": self._op_das,
            "aaa": self._op_aaa, "aas": self._op_aas,
            "aam": self._op_aam, "aad": self._op_aad,
            "salc": self._op_salc, "xlat": self._op_xlat,
            "bound": self._op_bound, "arpl": self._op_arpl,
            "les": self._op_lseg, "lds": self._op_lseg,
            "movsb": self._op_movs, "movsd": self._op_movs,
            "cmpsb": self._op_cmps, "cmpsd": self._op_cmps,
            "stosb": self._op_stos, "stosd": self._op_stos,
            "lodsb": self._op_lods, "lodsd": self._op_lods,
            "scasb": self._op_scas, "scasd": self._op_scas,
            "movzxb": self._op_movzx, "movzxw": self._op_movzx,
            "movsxb": self._op_movsx, "movsxw": self._op_movsx,
            "bt": self._op_bt, "bts": self._op_bt, "btr": self._op_bt,
            "btc": self._op_bt,
            "bsf": self._op_bsf, "bsr": self._op_bsr,
            "bswap": self._op_bswap,
            "xadd": self._op_xadd, "xaddb": self._op_xadd,
            "cmpxchg": self._op_cmpxchg, "cmpxchgb": self._op_cmpxchg,
            "cpuid": self._op_cpuid, "rdtsc": self._op_rdtsc,
            # Privileged: decode fine, fault at execution (ring 3).
            "hlt": self._op_privileged, "cli": self._op_privileged,
            "sti": self._op_privileged, "in": self._op_privileged,
            "out": self._op_privileged, "insb": self._op_privileged,
            "insd": self._op_privileged, "outsb": self._op_privileged,
            "outsd": self._op_privileged, "clts": self._op_privileged,
            "invd": self._op_privileged, "wbinvd": self._op_privileged,
            "wrmsr": self._op_privileged, "rdmsr": self._op_privileged,
            "lgdt": self._op_privileged, "mov_cr": self._op_privileged,
            "mov_dr": self._op_privileged,
        })
        return table

    # ------------------------------------------------------------------
    # ALU ops

    def _make_alu(self, name):
        def handler(instruction, _name=name):
            src, dst = instruction.operands
            size = dst.size
            a = self.read_operand(dst)
            b = self.read_operand(src)
            if _name == "add":
                result, flags = alu.add(a, b, size)
            elif _name == "adc":
                result, flags = alu.add(a, b, size,
                                        1 if self.eflags & CF else 0)
            elif _name == "sub":
                result, flags = alu.sub(a, b, size)
            elif _name == "sbb":
                result, flags = alu.sub(a, b, size,
                                        1 if self.eflags & CF else 0)
            elif _name == "cmp":
                result, flags = alu.sub(a, b, size)
                self.set_status_flags(flags)
                return
            elif _name == "and":
                result, flags = alu.logic(a & b, size)
            elif _name == "or":
                result, flags = alu.logic(a | b, size)
            else:  # xor
                result, flags = alu.logic(a ^ b, size)
            self.set_status_flags(flags)
            self.write_operand(dst, result)
        return handler

    def _make_shift(self, name):
        routine = getattr(alu, name)

        def handler(instruction, _routine=routine):
            count_op, target = instruction.operands
            count = self.read_operand(count_op) & 0xFF
            value = self.read_operand(target)
            result, flags = _routine(value, count, target.size, self.eflags)
            if (count & 0x1F) != 0:
                self.set_status_flags(flags)
            self.write_operand(target, result)
        return handler

    # ------------------------------------------------------------------
    # Data movement

    def _op_mov(self, instruction):
        src, dst = instruction.operands
        self.write_operand(dst, self.read_operand(src))

    def _op_lea(self, instruction):
        src, dst = instruction.operands
        self.write_reg(dst.index, self.effective_address(src), dst.size)

    def _op_push(self, instruction):
        value = self.read_operand(instruction.operands[0])
        if instruction.operand_size == 2:
            esp = (self.regs[ESP] - 2) & 0xFFFFFFFF
            self.memory.write16(esp, value, self.eip)
            self.regs[ESP] = esp
        else:
            self.push32(value)

    def _op_pop(self, instruction):
        if instruction.operand_size == 2:
            esp = self.regs[ESP]
            value = self.memory.read16(esp, self.eip)
            self.regs[ESP] = (esp + 2) & 0xFFFFFFFF
        else:
            value = self.pop32()
        self.write_operand(instruction.operands[0], value)

    def _op_pusha(self, instruction):
        esp = self.regs[ESP]
        for index in (EAX, ECX, EDX, EBX):
            self.push32(self.regs[index])
        self.push32(esp)
        for index in (EBP, ESI, EDI):
            self.push32(self.regs[index])

    def _op_popa(self, instruction):
        for index in (EDI, ESI, EBP):
            self.regs[index] = self.pop32()
        self.pop32()  # ESP image discarded
        for index in (EBX, EDX, ECX, EAX):
            self.regs[index] = self.pop32()

    def _op_push_seg(self, instruction):
        self.push32(self.segments[instruction.operands[0].index])

    def _op_pop_seg(self, instruction):
        value = self.pop32() & 0xFFFF
        self._load_segment(instruction.operands[0].index, value)

    def _op_mov_from_seg(self, instruction):
        seg, dst = instruction.operands
        value = self.segments[seg.index]
        if dst.kind == "reg":
            self.write_reg(dst.index, value, 4)  # zero-extends on P6
        else:
            self.write_operand(dst, value)

    def _op_mov_to_seg(self, instruction):
        src, seg = instruction.operands
        self._load_segment(seg.index, self.read_operand(src) & 0xFFFF)

    def _load_segment(self, index, selector):
        if selector not in VALID_SELECTORS:
            raise GeneralProtectionFault(self.eip,
                                         "bad selector 0x%x" % selector)
        self.segments[index] = selector

    def _op_xchg(self, instruction):
        first, second = instruction.operands
        a = self.read_operand(first)
        b = self.read_operand(second)
        self.write_operand(first, b)
        self.write_operand(second, a)

    def _op_movzx(self, instruction):
        src, dst = instruction.operands
        self.write_reg(dst.index, self.read_operand(src), dst.size)

    def _op_movsx(self, instruction):
        src, dst = instruction.operands
        value = alu.signed(self.read_operand(src), src.size)
        self.write_reg(dst.index, value & 0xFFFFFFFF, dst.size)

    def _op_bswap(self, instruction):
        reg = instruction.operands[0]
        value = self.regs[reg.index]
        self.regs[reg.index] = int.from_bytes(
            value.to_bytes(4, "little"), "big")

    # ------------------------------------------------------------------
    # Test / inc / dec / unary

    def _op_test(self, instruction):
        src, dst = instruction.operands
        result, flags = alu.logic(self.read_operand(dst)
                                  & self.read_operand(src), dst.size)
        self.set_status_flags(flags)

    def _op_inc(self, instruction):
        operand = instruction.operands[0]
        result, flags = alu.inc(self.read_operand(operand), operand.size,
                                self.eflags)
        self.set_status_flags(flags)
        self.write_operand(operand, result)

    def _op_dec(self, instruction):
        operand = instruction.operands[0]
        result, flags = alu.dec(self.read_operand(operand), operand.size,
                                self.eflags)
        self.set_status_flags(flags)
        self.write_operand(operand, result)

    def _op_not(self, instruction):
        operand = instruction.operands[0]
        mask = (1 << (operand.size * 8)) - 1
        self.write_operand(operand, ~self.read_operand(operand) & mask)

    def _op_neg(self, instruction):
        operand = instruction.operands[0]
        result, flags = alu.neg(self.read_operand(operand), operand.size)
        self.set_status_flags(flags)
        self.write_operand(operand, result)

    # ------------------------------------------------------------------
    # Multiply / divide

    def _op_mul(self, instruction):
        operand = instruction.operands[0]
        size = operand.size
        a = self.read_reg(EAX, size)
        product = a * self.read_operand(operand)
        self._write_product(product, size, signed=False)

    def _op_imul(self, instruction):
        operands = instruction.operands
        if len(operands) == 3:  # imm, src, dst
            imm, src, dst = operands
            product = alu.signed(self.read_operand(src), src.size) \
                * alu.signed(imm.value, 4)
            self.write_reg(dst.index, product & 0xFFFFFFFF, 4)
            self._set_mul_flags(product, 4)
            return
        operand = operands[0]
        size = operand.size
        product = alu.signed(self.read_reg(EAX, size), size) \
            * alu.signed(self.read_operand(operand), size)
        self._write_product(product & ((1 << (size * 16)) - 1), size,
                            signed=True, raw_product=product)

    def _op_imul2(self, instruction):
        src, dst = instruction.operands
        product = alu.signed(self.read_operand(src), src.size) \
            * alu.signed(self.read_reg(dst.index, dst.size), dst.size)
        self.write_reg(dst.index, product & 0xFFFFFFFF, dst.size)
        self._set_mul_flags(product, dst.size)

    def _write_product(self, product, size, signed, raw_product=None):
        if size == 1:
            self.write_reg(EAX, product & 0xFFFF, 2)
        else:
            bits = size * 8
            self.write_reg(EAX, product & ((1 << bits) - 1), size)
            self.write_reg(EDX, (product >> bits) & ((1 << bits) - 1), size)
        check = raw_product if raw_product is not None else product
        self._set_mul_flags(check, size)

    def _set_mul_flags(self, product, size):
        bits = size * 8
        low = product & ((1 << bits) - 1)
        # CF/OF clear only when the full product fits in the low half
        # (signed view for imul, unsigned view for mul).
        overflow = product != alu.signed(low, size) and product != low
        if overflow:
            self.eflags |= CF | OF
        else:
            self.eflags &= ~(CF | OF)

    def _op_div(self, instruction):
        operand = instruction.operands[0]
        size = operand.size
        divisor = self.read_operand(operand)
        if divisor == 0:
            raise DivideErrorFault(self.eip, "divide by zero")
        bits = size * 8
        if size == 1:
            dividend = self.read_reg(EAX, 2)
        else:
            dividend = (self.read_reg(EDX, size) << bits) \
                | self.read_reg(EAX, size)
        quotient = dividend // divisor
        remainder = dividend % divisor
        if quotient >= (1 << bits):
            raise DivideErrorFault(self.eip, "quotient overflow")
        if size == 1:
            self.write_reg(EAX, (remainder << 8) | quotient, 2)
        else:
            self.write_reg(EAX, quotient, size)
            self.write_reg(EDX, remainder, size)

    def _op_idiv(self, instruction):
        operand = instruction.operands[0]
        size = operand.size
        divisor = alu.signed(self.read_operand(operand), size)
        if divisor == 0:
            raise DivideErrorFault(self.eip, "divide by zero")
        bits = size * 8
        if size == 1:
            dividend = alu.signed(self.read_reg(EAX, 2), 2)
        else:
            raw = (self.read_reg(EDX, size) << bits) \
                | self.read_reg(EAX, size)
            dividend = raw - (1 << (bits * 2)) \
                if raw & (1 << (bits * 2 - 1)) else raw
        quotient = int(dividend / divisor)  # truncate toward zero
        remainder = dividend - quotient * divisor
        if not (-(1 << (bits - 1)) <= quotient < (1 << (bits - 1))):
            raise DivideErrorFault(self.eip, "quotient overflow")
        if size == 1:
            self.write_reg(EAX, ((remainder & 0xFF) << 8)
                           | (quotient & 0xFF), 2)
        else:
            self.write_reg(EAX, quotient & ((1 << bits) - 1), size)
            self.write_reg(EDX, remainder & ((1 << bits) - 1), size)

    # ------------------------------------------------------------------
    # Control transfer

    def _op_jcc(self, instruction):
        if condition_met(instruction.condition, self.eflags):
            self._next_eip = instruction.operands[0].target

    def _op_setcc(self, instruction):
        met = condition_met(instruction.condition, self.eflags)
        self.write_operand(instruction.operands[0], 1 if met else 0)

    def _op_cmovcc(self, instruction):
        src, dst = instruction.operands
        value = self.read_operand(src)  # source read unconditionally
        if condition_met(instruction.condition, self.eflags):
            self.write_reg(dst.index, value, dst.size)

    def _op_call(self, instruction):
        self.push32(self._next_eip)
        self._next_eip = instruction.operands[0].target

    def _op_call_ind(self, instruction):
        target = self.read_operand(instruction.operands[0])
        self.push32(self._next_eip)
        self._next_eip = target & 0xFFFFFFFF

    def _op_jmp(self, instruction):
        self._next_eip = instruction.operands[0].target

    def _op_jmp_ind(self, instruction):
        self._next_eip = self.read_operand(instruction.operands[0]) \
            & 0xFFFFFFFF

    def _op_ret(self, instruction):
        self._next_eip = self.pop32()
        if instruction.operands:
            self.regs[ESP] = (self.regs[ESP]
                              + instruction.operands[0].value) & 0xFFFFFFFF

    def _op_privileged_ret(self, instruction):
        # Far return pops EIP and a CS selector; corrupted code never
        # pushed a valid one, so this faults like real hardware would.
        self._next_eip = self.pop32()
        selector = self.pop32() & 0xFFFF
        if selector not in VALID_SELECTORS:
            raise GeneralProtectionFault(self.eip,
                                         "lret to selector 0x%x" % selector)

    def _op_far_transfer(self, instruction):
        pointer = instruction.operands[0]
        if pointer.selector not in VALID_SELECTORS:
            raise GeneralProtectionFault(
                self.eip, "far transfer to selector 0x%x" % pointer.selector)
        if instruction.mnemonic == "lcall":
            self.push32(self.segments[1])
            self.push32(self._next_eip)
        self._next_eip = pointer.offset

    def _op_far_transfer_ind(self, instruction):
        mem = instruction.operands[0]
        address = self.effective_address(mem)
        offset = self.memory.read32(address, self.eip)
        selector = self.memory.read16(address + 4, self.eip)
        if selector not in VALID_SELECTORS:
            raise GeneralProtectionFault(
                self.eip, "far transfer to selector 0x%x" % selector)
        if instruction.mnemonic == "lcall_ind":
            self.push32(self.segments[1])
            self.push32(self._next_eip)
        self._next_eip = offset

    def _op_loop(self, instruction):
        count = (self.regs[ECX] - 1) & 0xFFFFFFFF
        self.regs[ECX] = count
        take = count != 0
        if instruction.mnemonic == "loope":
            take = take and bool(self.eflags & ZF)
        elif instruction.mnemonic == "loopne":
            take = take and not (self.eflags & ZF)
        if take:
            self._next_eip = instruction.operands[0].target

    def _op_jecxz(self, instruction):
        if self.regs[ECX] == 0:
            self._next_eip = instruction.operands[0].target

    def _op_enter(self, instruction):
        alloc, nesting = instruction.operands
        level = nesting.value % 32
        self.push32(self.regs[EBP])
        frame = self.regs[ESP]
        if level:
            for __ in range(1, level):
                self.regs[EBP] = (self.regs[EBP] - 4) & 0xFFFFFFFF
                self.push32(self.memory.read32(self.regs[EBP], self.eip))
            self.push32(frame)
        self.regs[EBP] = frame
        self.regs[ESP] = (self.regs[ESP] - alloc.value) & 0xFFFFFFFF

    def _op_leave(self, instruction):
        self.regs[ESP] = self.regs[EBP]
        self.regs[EBP] = self.pop32()

    # ------------------------------------------------------------------
    # Interrupts and traps

    def _op_int(self, instruction):
        vector = instruction.operands[0].value
        if vector == 0x80 and self.kernel is not None:
            self.perf.syscalls += 1
            self.kernel.syscall(self)
            return
        # int n into an unprimed IDT entry -> #GP(selector) -> SIGSEGV.
        raise GeneralProtectionFault(self.eip, "int 0x%x" % vector)

    def _op_int3(self, instruction):
        raise BreakpointTrap(self.eip)

    def _op_int1(self, instruction):
        raise DebugTrap(self.eip)

    def _op_into(self, instruction):
        if self.eflags & OF:
            raise OverflowTrap(self.eip)

    def _op_privileged(self, instruction):
        raise GeneralProtectionFault(self.eip,
                                     "%s in ring 3" % instruction.mnemonic)

    # ------------------------------------------------------------------
    # Converts / flags / misc

    def _op_cwde(self, instruction):
        self.regs[EAX] = alu.signed(self.regs[EAX] & 0xFFFF, 2) & 0xFFFFFFFF

    def _op_cbw(self, instruction):
        value = alu.signed(self.regs[EAX] & 0xFF, 1)
        self.write_reg(EAX, value & 0xFFFF, 2)

    def _op_cdq(self, instruction):
        self.regs[EDX] = 0xFFFFFFFF if self.regs[EAX] & 0x80000000 else 0

    def _op_cwd(self, instruction):
        high = 0xFFFF if self.regs[EAX] & 0x8000 else 0
        self.write_reg(EDX, high, 2)

    def _op_pushf(self, instruction):
        self.push32(self.eflags)

    def _op_popf(self, instruction):
        value = self.pop32()
        self.eflags = (self.eflags & ~FLAGS_USER_MASK) \
            | (value & FLAGS_USER_MASK) | FLAGS_FIXED_ONES | IF

    def _op_sahf(self, instruction):
        ah = self.read_reg(4, 1)  # AH
        mask = CF | PF | AF | ZF | SF
        self.eflags = (self.eflags & ~mask) | (ah & mask) | FLAGS_FIXED_ONES

    def _op_lahf(self, instruction):
        mask = CF | PF | AF | ZF | SF
        self.write_reg(4, (self.eflags & mask) | 0x02, 1)

    def _op_clc(self, instruction):
        self.eflags &= ~CF

    def _op_stc(self, instruction):
        self.eflags |= CF

    def _op_cmc(self, instruction):
        self.eflags ^= CF

    def _op_cld(self, instruction):
        self.eflags &= ~DF

    def _op_std(self, instruction):
        self.eflags |= DF

    def _op_nop(self, instruction):
        pass

    def _op_fpu(self, instruction):
        # x87 data state is not modelled; memory operands are touched so
        # corrupted escapes still fault on wild addresses.
        rm = instruction.operands[2]
        if rm.kind == "mem":
            self.read_operand(rm)

    def _op_salc(self, instruction):
        self.write_reg(EAX, 0xFF if self.eflags & CF else 0x00, 1)

    def _op_xlat(self, instruction):
        address = (self.regs[EBX] + self.read_reg(EAX, 1)) & 0xFFFFFFFF
        self.write_reg(EAX, self.memory.read8(address, self.eip), 1)

    # ------------------------------------------------------------------
    # BCD adjusts (faithful per Intel SDM)

    def _op_daa(self, instruction):
        al = self.read_reg(EAX, 1)
        old_al, old_cf = al, bool(self.eflags & CF)
        carry = False
        if (al & 0x0F) > 9 or self.eflags & AF:
            al = (al + 6) & 0xFF
            carry = old_cf or (old_al + 6) > 0xFF
            self.eflags |= AF
        else:
            self.eflags &= ~AF
        if old_al > 0x99 or old_cf:
            al = (al + 0x60) & 0xFF
            carry = True
        self.write_reg(EAX, al, 1)
        self._set_bcd_flags(al, carry)

    def _op_das(self, instruction):
        al = self.read_reg(EAX, 1)
        old_al, old_cf = al, bool(self.eflags & CF)
        carry = False
        if (al & 0x0F) > 9 or self.eflags & AF:
            al = (al - 6) & 0xFF
            carry = old_cf or old_al < 6
            self.eflags |= AF
        else:
            self.eflags &= ~AF
        if old_al > 0x99 or old_cf:
            al = (al - 0x60) & 0xFF
            carry = True
        self.write_reg(EAX, al, 1)
        self._set_bcd_flags(al, carry)

    def _set_bcd_flags(self, al, carry):
        mask = CF | PF | ZF | SF
        flags = parity_flag(al)
        if al == 0:
            flags |= ZF
        if al & 0x80:
            flags |= SF
        if carry:
            flags |= CF
        self.eflags = (self.eflags & ~mask) | flags

    def _op_aaa(self, instruction):
        al = self.read_reg(EAX, 1)
        if (al & 0x0F) > 9 or self.eflags & AF:
            self.write_reg(EAX, (self.regs[EAX] + 0x106) & 0xFFFF, 2)
            self.eflags |= AF | CF
        else:
            self.eflags &= ~(AF | CF)
        self.write_reg(EAX, self.read_reg(EAX, 1) & 0x0F, 1)

    def _op_aas(self, instruction):
        al = self.read_reg(EAX, 1)
        if (al & 0x0F) > 9 or self.eflags & AF:
            self.write_reg(EAX, (self.regs[EAX] - 6) & 0xFFFF, 2)
            self.write_reg(4, (self.read_reg(4, 1) - 1) & 0xFF, 1)
            self.eflags |= AF | CF
        else:
            self.eflags &= ~(AF | CF)
        self.write_reg(EAX, self.read_reg(EAX, 1) & 0x0F, 1)

    def _op_aam(self, instruction):
        base = instruction.operands[0].value
        if base == 0:
            raise DivideErrorFault(self.eip, "aam 0")
        al = self.read_reg(EAX, 1)
        self.write_reg(4, al // base, 1)
        self.write_reg(EAX, al % base, 1)
        self._set_bcd_flags(al % base, bool(self.eflags & CF))

    def _op_aad(self, instruction):
        base = instruction.operands[0].value
        al = self.read_reg(EAX, 1)
        ah = self.read_reg(4, 1)
        result = (al + ah * base) & 0xFF
        self.write_reg(EAX, result, 1)
        self.write_reg(4, 0, 1)
        self._set_bcd_flags(result, bool(self.eflags & CF))

    # ------------------------------------------------------------------
    # Segment-load / protection oddities

    def _op_bound(self, instruction):
        reg, mem = instruction.operands
        index = alu.signed(self.read_reg(reg.index, reg.size), reg.size)
        address = self.effective_address(mem)
        lower = alu.signed(self.memory.read32(address, self.eip), 4)
        upper = alu.signed(self.memory.read32(address + 4, self.eip), 4)
        if index < lower or index > upper:
            raise BoundRangeFault(self.eip, "bound %d not in [%d, %d]"
                                  % (index, lower, upper))

    def _op_arpl(self, instruction):
        src, dst = instruction.operands
        dest_value = self.read_operand(dst)
        src_value = self.read_operand(src)
        if (dest_value & 3) < (src_value & 3):
            self.write_operand(dst, (dest_value & ~3) | (src_value & 3))
            self.eflags |= ZF
        else:
            self.eflags &= ~ZF

    def _op_lseg(self, instruction):
        mem, dst = instruction.operands
        address = self.effective_address(mem)
        offset = self.memory.read32(address, self.eip)
        selector = self.memory.read16(address + 4, self.eip)
        seg_index = 0 if instruction.mnemonic == "les" else 3
        self._load_segment(seg_index, selector)
        self.write_reg(dst.index, offset, dst.size)

    # ------------------------------------------------------------------
    # String operations

    def _string_width(self, instruction):
        return 1 if instruction.mnemonic.endswith("b") else 4

    def _string_step(self):
        return -1 if self.eflags & DF else 1

    def _rep_iterations(self, instruction):
        if instruction.rep is None:
            return None
        return self.regs[ECX]

    def _op_movs(self, instruction):
        width = self._string_width(instruction)
        delta = self._string_step() * width
        count = self._rep_iterations(instruction)
        iterations = 1 if count is None else count
        for __ in range(iterations):
            value = (self.memory.read8(self.regs[ESI], self.eip)
                     if width == 1
                     else self.memory.read32(self.regs[ESI], self.eip))
            if width == 1:
                self.memory.write8(self.regs[EDI], value, self.eip)
            else:
                self.memory.write32(self.regs[EDI], value, self.eip)
            self.regs[ESI] = (self.regs[ESI] + delta) & 0xFFFFFFFF
            self.regs[EDI] = (self.regs[EDI] + delta) & 0xFFFFFFFF
            self.instret += 1
        if count is not None:
            self.regs[ECX] = 0
            self.instret -= 1  # the final iteration is the retired insn

    def _op_stos(self, instruction):
        width = self._string_width(instruction)
        delta = self._string_step() * width
        count = self._rep_iterations(instruction)
        iterations = 1 if count is None else count
        value = self.read_reg(EAX, width)
        for __ in range(iterations):
            if width == 1:
                self.memory.write8(self.regs[EDI], value, self.eip)
            else:
                self.memory.write32(self.regs[EDI], value, self.eip)
            self.regs[EDI] = (self.regs[EDI] + delta) & 0xFFFFFFFF
            self.instret += 1
        if count is not None:
            self.regs[ECX] = 0
            self.instret -= 1

    def _op_lods(self, instruction):
        width = self._string_width(instruction)
        delta = self._string_step() * width
        count = self._rep_iterations(instruction)
        iterations = 1 if count is None else count
        for __ in range(iterations):
            value = (self.memory.read8(self.regs[ESI], self.eip)
                     if width == 1
                     else self.memory.read32(self.regs[ESI], self.eip))
            self.write_reg(EAX, value, width)
            self.regs[ESI] = (self.regs[ESI] + delta) & 0xFFFFFFFF
            self.instret += 1
        if count is not None:
            self.regs[ECX] = 0
            self.instret -= 1

    def _op_cmps(self, instruction):
        width = self._string_width(instruction)
        delta = self._string_step() * width
        repeat = instruction.rep
        count = self.regs[ECX] if repeat is not None else 1
        executed = 0
        flags = None
        while count > 0:
            a = (self.memory.read8(self.regs[ESI], self.eip) if width == 1
                 else self.memory.read32(self.regs[ESI], self.eip))
            b = (self.memory.read8(self.regs[EDI], self.eip) if width == 1
                 else self.memory.read32(self.regs[EDI], self.eip))
            __, flags = alu.sub(a, b, width)
            self.regs[ESI] = (self.regs[ESI] + delta) & 0xFFFFFFFF
            self.regs[EDI] = (self.regs[EDI] + delta) & 0xFFFFFFFF
            count -= 1
            executed += 1
            if repeat == 0xF3 and not flags & ZF:   # repe: stop on NE
                break
            if repeat == 0xF2 and flags & ZF:       # repne: stop on EQ
                break
            if repeat is None:
                break
        if flags is not None:
            self.set_status_flags(flags)
        if repeat is not None:
            self.regs[ECX] = count
            self.instret += max(0, executed - 1)

    def _op_scas(self, instruction):
        width = self._string_width(instruction)
        delta = self._string_step() * width
        repeat = instruction.rep
        count = self.regs[ECX] if repeat is not None else 1
        accumulator = self.read_reg(EAX, width)
        executed = 0
        flags = None
        while count > 0:
            value = (self.memory.read8(self.regs[EDI], self.eip)
                     if width == 1
                     else self.memory.read32(self.regs[EDI], self.eip))
            __, flags = alu.sub(accumulator, value, width)
            self.regs[EDI] = (self.regs[EDI] + delta) & 0xFFFFFFFF
            count -= 1
            executed += 1
            if repeat == 0xF3 and not flags & ZF:
                break
            if repeat == 0xF2 and flags & ZF:
                break
            if repeat is None:
                break
        if flags is not None:
            self.set_status_flags(flags)
        if repeat is not None:
            self.regs[ECX] = count
            self.instret += max(0, executed - 1)

    # ------------------------------------------------------------------
    # Bit operations

    def _op_bt(self, instruction):
        src, dst = instruction.operands
        offset = self.read_operand(src)
        bits = dst.size * 8
        if dst.kind == "mem":
            # Memory form addresses the bit string beyond the operand.
            byte_offset = alu.signed(offset, src.size
                                     if src.kind == "reg" else 4) // 8
            address = (self.effective_address(dst) + byte_offset) \
                & 0xFFFFFFFF
            bit = offset % 8
            value = self.memory.read8(address, self.eip)
            selected = (value >> bit) & 1
            new_value = value
        else:
            bit = offset % bits
            value = self.read_operand(dst)
            selected = (value >> bit) & 1
            new_value = value
            address = None
        if selected:
            self.eflags |= CF
        else:
            self.eflags &= ~CF
        mnemonic = instruction.mnemonic
        if mnemonic == "bt":
            return
        if mnemonic == "bts":
            new_value |= (1 << bit)
        elif mnemonic == "btr":
            new_value &= ~(1 << bit)
        else:  # btc
            new_value ^= (1 << bit)
        if address is not None:
            self.memory.write8(address, new_value, self.eip)
        else:
            self.write_operand(dst, new_value)

    def _op_bsf(self, instruction):
        src, dst = instruction.operands
        value = self.read_operand(src)
        if value == 0:
            self.eflags |= ZF
            return
        self.eflags &= ~ZF
        self.write_reg(dst.index, (value & -value).bit_length() - 1,
                       dst.size)

    def _op_bsr(self, instruction):
        src, dst = instruction.operands
        value = self.read_operand(src)
        if value == 0:
            self.eflags |= ZF
            return
        self.eflags &= ~ZF
        self.write_reg(dst.index, value.bit_length() - 1, dst.size)

    def _op_xadd(self, instruction):
        src, dst = instruction.operands
        a = self.read_operand(dst)
        b = self.read_operand(src)
        result, flags = alu.add(a, b, dst.size)
        self.set_status_flags(flags)
        self.write_operand(src, a)
        self.write_operand(dst, result)

    def _op_cmpxchg(self, instruction):
        src, dst = instruction.operands
        size = dst.size
        accumulator = self.read_reg(EAX, size)
        current = self.read_operand(dst)
        __, flags = alu.sub(accumulator, current, size)
        self.set_status_flags(flags)
        if accumulator == current:
            self.write_operand(dst, self.read_operand(src))
        else:
            self.write_reg(EAX, current, size)

    # ------------------------------------------------------------------
    # Processor identification

    def _op_cpuid(self, instruction):
        leaf = self.regs[EAX]
        if leaf == 0:
            self.regs[EAX] = 1
            self.regs[EBX] = 0x756E6547  # "Genu"
            self.regs[EDX] = 0x49656E69  # "ineI"
            self.regs[ECX] = 0x6C65746E  # "ntel"
        else:
            self.regs[EAX] = 0x00000673  # P-III family/model/stepping
            self.regs[EBX] = 0
            self.regs[ECX] = 0
            self.regs[EDX] = 0x0383F9FF
    def _op_rdtsc(self, instruction):
        self.regs[EAX] = self.instret & 0xFFFFFFFF
        self.regs[EDX] = (self.instret >> 32) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# Fast-path closure specialisers
#
# Each builder receives ``(cpu, instruction, address, next_eip)`` and
# returns a zero-argument closure implementing the instruction with
# its operand accessors pre-resolved, or ``None`` to fall back to the
# generic dispatch wrapper.  Two aliasing rules shape every closure:
#
# * ``cpu.regs`` is REBOUND by ``Process.reset_cpu`` and by
#   ``BreakpointSession._restore`` (``cpu.regs = list(regs)``), so a
#   closure must fetch ``cpu.regs`` at call time, never capture the
#   list itself;
# * ``cpu.memory`` is never rebound (snapshots restore region bytes in
#   place), so bound methods like ``memory.read32`` may be captured.
#
# The instruction's own address is baked in as the fault PC, which is
# correct because a prepared op only ever runs with ``eip`` equal to
# the address it was prepared at.

def _ea_closure(cpu, mem):
    """Pre-resolved effective-address calculator for a Mem operand."""
    base, index, scale, disp = mem.base, mem.index, mem.scale, mem.disp
    if index is None:
        if base is None:
            fixed = disp & _MASK32
            return lambda: fixed
        return lambda: (cpu.regs[base] + disp) & _MASK32
    if base is None:
        return lambda: (cpu.regs[index] * scale + disp) & _MASK32
    return lambda: (cpu.regs[base] + cpu.regs[index] * scale
                    + disp) & _MASK32


def _value_closure(cpu, operand, address):
    """Pre-resolved value reader for a reg4/imm/mem4 source operand,
    or ``None`` when the operand shape is not specialised."""
    if operand.kind == "reg" and operand.size == 4:
        si = operand.index
        return lambda: cpu.regs[si]
    if operand.kind == "imm":
        value = operand.value
        return lambda: value
    if operand.kind == "mem" and operand.size == 4:
        ea = _ea_closure(cpu, operand)
        read32 = cpu.memory.read32
        return lambda: read32(ea(), address)
    return None


def _spec_mov(cpu, ins, address, next_eip):
    src, dst = ins.operands
    if dst.kind == "reg" and dst.size == 4:
        di = dst.index
        if src.kind == "reg" and src.size == 4:
            si = src.index

            def fn():
                cpu.regs[di] = cpu.regs[si]
                cpu.eip = next_eip
            return fn
        if src.kind == "imm":
            value = src.value & _MASK32

            def fn():
                cpu.regs[di] = value
                cpu.eip = next_eip
            return fn
        if src.kind == "mem" and src.size == 4:
            ea = _ea_closure(cpu, src)
            read32 = cpu.memory.read32

            def fn():
                cpu.regs[di] = read32(ea(), address)
                cpu.eip = next_eip
            return fn
        return None
    if dst.kind == "mem" and dst.size == 4:
        ea = _ea_closure(cpu, dst)
        write32 = cpu.memory.write32
        if src.kind == "reg" and src.size == 4:
            si = src.index

            def fn():
                write32(ea(), cpu.regs[si], address)
                cpu.eip = next_eip
            return fn
        if src.kind == "imm":
            value = src.value & _MASK32

            def fn():
                write32(ea(), value, address)
                cpu.eip = next_eip
            return fn
    return None


def _spec_lea(cpu, ins, address, next_eip):
    src, dst = ins.operands
    if dst.size != 4 or src.kind != "mem":
        return None
    di = dst.index
    ea = _ea_closure(cpu, src)

    def fn():
        cpu.regs[di] = ea()
        cpu.eip = next_eip
    return fn


def _spec_push(cpu, ins, address, next_eip):
    if ins.operand_size == 2:
        return None
    op = ins.operands[0]
    write32 = cpu.memory.write32
    if op.kind == "reg" and op.size == 4:
        si = op.index

        def fn():
            regs = cpu.regs
            esp = (regs[ESP] - 4) & _MASK32
            write32(esp, regs[si], address)
            regs[ESP] = esp
            cpu.eip = next_eip
        return fn
    if op.kind == "imm":
        value = op.value & _MASK32

        def fn():
            regs = cpu.regs
            esp = (regs[ESP] - 4) & _MASK32
            write32(esp, value, address)
            regs[ESP] = esp
            cpu.eip = next_eip
        return fn
    return None


def _spec_pop(cpu, ins, address, next_eip):
    op = ins.operands[0]
    # pop %esp writes the popped value into the register that the
    # ESP update would then clobber; leave that rarity to the
    # reference-ordered generic handler.
    if (ins.operand_size == 2 or op.kind != "reg" or op.size != 4
            or op.index == ESP):
        return None
    di = op.index
    read32 = cpu.memory.read32

    def fn():
        regs = cpu.regs
        esp = regs[ESP]
        regs[di] = read32(esp, address)
        regs[ESP] = (esp + 4) & _MASK32
        cpu.eip = next_eip
    return fn


def _alu_specialiser(kind):
    """Builder family for the lazy-flag ALU fast paths (32-bit
    register destinations; cmp/test also take memory destinations
    since they write nothing back)."""

    def build(cpu, ins, address, next_eip, _kind=kind):
        src, dst = ins.operands
        get_b = _value_closure(cpu, src, address)
        if get_b is None:
            return None
        perf = cpu.perf
        if dst.kind == "reg" and dst.size == 4:
            di = dst.index

            def get_a():
                return cpu.regs[di]
        elif (dst.kind == "mem" and dst.size == 4
                and _kind in ("cmp", "test")):
            ea = _ea_closure(cpu, dst)
            read32 = cpu.memory.read32

            def get_a():
                return read32(ea(), address)
        else:
            return None
        if _kind == "cmp":
            def fn():
                a = get_a()
                b = get_b()
                if cpu._lazy is not None:
                    perf.flags_elided += 1
                cpu._lazy = ("sub", a, b, 4, 0)
                cpu.eip = next_eip
        elif _kind == "test":
            def fn():
                result = get_a() & get_b()
                if cpu._lazy is not None:
                    perf.flags_elided += 1
                cpu._lazy = ("logic", result, 4)
                cpu.eip = next_eip
        elif _kind == "add":
            def fn():
                regs = cpu.regs
                a = regs[di]
                b = get_b()
                regs[di] = (a + b) & _MASK32
                if cpu._lazy is not None:
                    perf.flags_elided += 1
                cpu._lazy = ("add", a, b, 4, 0)
                cpu.eip = next_eip
        elif _kind == "sub":
            def fn():
                regs = cpu.regs
                a = regs[di]
                b = get_b()
                regs[di] = (a - b) & _MASK32
                if cpu._lazy is not None:
                    perf.flags_elided += 1
                cpu._lazy = ("sub", a, b, 4, 0)
                cpu.eip = next_eip
        elif _kind == "and":
            def fn():
                regs = cpu.regs
                result = (regs[di] & get_b()) & _MASK32
                regs[di] = result
                if cpu._lazy is not None:
                    perf.flags_elided += 1
                cpu._lazy = ("logic", result, 4)
                cpu.eip = next_eip
        elif _kind == "or":
            def fn():
                regs = cpu.regs
                result = (regs[di] | get_b()) & _MASK32
                regs[di] = result
                if cpu._lazy is not None:
                    perf.flags_elided += 1
                cpu._lazy = ("logic", result, 4)
                cpu.eip = next_eip
        else:  # xor
            def fn():
                regs = cpu.regs
                result = (regs[di] ^ get_b()) & _MASK32
                regs[di] = result
                if cpu._lazy is not None:
                    perf.flags_elided += 1
                cpu._lazy = ("logic", result, 4)
                cpu.eip = next_eip
        return fn
    return build


def _inc_dec_specialiser(delta):
    def build(cpu, ins, address, next_eip, _delta=delta):
        op = ins.operands[0]
        if op.kind != "reg" or op.size != 4:
            return None
        di = op.index
        routine = alu.inc if _delta > 0 else alu.dec

        def fn():
            result, flags = routine(cpu.regs[di], 4, cpu.eflags)
            cpu.regs[di] = result
            cpu._eflags = (cpu._eflags & ~STATUS_FLAGS) | flags
            cpu.eip = next_eip
        return fn
    return build


def _spec_movzx(cpu, ins, address, next_eip):
    src, dst = ins.operands
    if dst.kind != "reg" or dst.size != 4:
        return None
    di = dst.index
    if src.kind == "mem":
        ea = _ea_closure(cpu, src)
        if src.size == 1:
            read8 = cpu.memory.read8

            def fn():
                cpu.regs[di] = read8(ea(), address)
                cpu.eip = next_eip
            return fn
        read16 = cpu.memory.read16

        def fn():
            cpu.regs[di] = read16(ea(), address)
            cpu.eip = next_eip
        return fn
    if src.kind == "reg":
        get_b = _narrow_reg_closure(cpu, src)

        def fn():
            cpu.regs[di] = get_b()
            cpu.eip = next_eip
        return fn
    return None


def _narrow_reg_closure(cpu, reg):
    """Reader for an 8/16-bit register source (zero-extended)."""
    si = reg.index
    if reg.size == 2:
        return lambda: cpu.regs[si] & 0xFFFF
    if si < 4:
        return lambda: cpu.regs[si] & 0xFF
    sj = si - 4
    return lambda: (cpu.regs[sj] >> 8) & 0xFF


def _spec_imul2(cpu, ins, address, next_eip):
    src, dst = ins.operands
    if dst.kind != "reg" or dst.size != 4:
        return None
    get_b = _value_closure(cpu, src, address)
    if get_b is None or src.kind == "imm":
        return None
    di = dst.index
    signed = alu.signed

    def fn():
        product = signed(get_b(), 4) * signed(cpu.regs[di], 4)
        cpu.regs[di] = product & _MASK32
        cpu._set_mul_flags(product, 4)
        cpu.eip = next_eip
    return fn


def _spec_jcc(cpu, ins, address, next_eip):
    target = ins.operands[0].target
    condition = ins.condition

    def fn():
        if condition_met(condition, cpu.eflags):
            cpu.eip = target
        else:
            cpu.eip = next_eip
    return fn


def _spec_jmp(cpu, ins, address, next_eip):
    target = ins.operands[0].target

    def fn():
        cpu.eip = target
    return fn


def _spec_call(cpu, ins, address, next_eip):
    target = ins.operands[0].target
    write32 = cpu.memory.write32

    def fn():
        regs = cpu.regs
        esp = (regs[ESP] - 4) & _MASK32
        write32(esp, next_eip, address)
        regs[ESP] = esp
        cpu.eip = target
    return fn


def _spec_ret(cpu, ins, address, next_eip):
    read32 = cpu.memory.read32
    extra = ins.operands[0].value if ins.operands else 0

    def fn():
        regs = cpu.regs
        esp = regs[ESP]
        cpu.eip = read32(esp, address)
        regs[ESP] = (esp + 4 + extra) & _MASK32
    return fn


def _spec_nop(cpu, ins, address, next_eip):
    def fn():
        cpu.eip = next_eip
    return fn


_SPECIALISERS = {
    "mov": _spec_mov,
    "lea": _spec_lea,
    "push": _spec_push,
    "pop": _spec_pop,
    "add": _alu_specialiser("add"),
    "sub": _alu_specialiser("sub"),
    "and": _alu_specialiser("and"),
    "or": _alu_specialiser("or"),
    "xor": _alu_specialiser("xor"),
    "cmp": _alu_specialiser("cmp"),
    "test": _alu_specialiser("test"),
    "inc": _inc_dec_specialiser(1),
    "dec": _inc_dec_specialiser(-1),
    "movzxb": _spec_movzx,
    "movzxw": _spec_movzx,
    "imul2": _spec_imul2,
    "jmp": _spec_jmp,
    "call": _spec_call,
    "ret": _spec_ret,
    "nop": _spec_nop,
}
for _suffix in _JCC_SUFFIXES:
    _SPECIALISERS["j" + _suffix] = _spec_jcc
del _suffix
