"""Execution-engine performance counters.

The fast-path engine (prepared-op cache, lazy EFLAGS, basic-block
supersteps -- see :mod:`repro.emu.cpu`) trades bookkeeping for
throughput; these counters make that trade observable so a regression
in cache hit rate or flag elision shows up in benchmark output and in
``CampaignResult.timing`` instead of only in wall clock.

Counters are observational: they never influence execution, and a
fault mid-superstep may leave the superstep counters off by a few
(attribution is per entered block, not per retired instruction).
"""

from __future__ import annotations

_FIELDS = ("prepared_hits", "prepared_misses", "flags_forced",
           "flags_elided", "superstep_entries", "superstep_instructions",
           "syscalls")


class PerfCounters:
    """Counter block attached to every :class:`~repro.emu.cpu.CPU`.

    ``prepared_hits`` / ``prepared_misses``
        prepared-op cache lookups that found / had to build an entry.
    ``flags_forced`` / ``flags_elided``
        lazy EFLAGS records that were materialised because something
        read the flags, vs. discarded unread because a later
        flag-writing instruction overwrote them first.
    ``superstep_entries`` / ``superstep_instructions``
        basic blocks executed without per-instruction loop
        bookkeeping, and the instructions retired inside them.
    ``syscalls``
        ``int $0x80`` dispatches into the kernel model.
    """

    __slots__ = _FIELDS

    def __init__(self):
        for name in _FIELDS:
            setattr(self, name, 0)

    def reset(self):
        for name in _FIELDS:
            setattr(self, name, 0)

    def as_dict(self):
        return {name: getattr(self, name) for name in _FIELDS}

    def absorb(self, other):
        """Add another counter block (a retired CPU's) into this one."""
        for name in _FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def absorb_dict(self, record):
        """Add a serialized counter dict (shard timing payloads);
        missing keys count as zero.  An unknown key -- a shard payload
        carrying a counter this build does not track, i.e. dropped
        data -- warns once per key through the ``repro`` logger
        instead of disappearing silently."""
        if not record:
            return self
        for name in record:
            if name not in _FIELDS:
                from ..obs.log import warn_once
                warn_once(("perf-unknown-counter", name),
                          "PerfCounters.absorb_dict: unknown counter "
                          "%r ignored (not aggregated)", name)
        for name in _FIELDS:
            setattr(self, name, getattr(self, name)
                    + int(record.get(name, 0)))
        return self

    def __repr__(self):
        inner = ", ".join("%s=%d" % (name, getattr(self, name))
                          for name in _FIELDS)
        return "PerfCounters(%s)" % inner
