"""Latent-error and system-load study (paper Section 5.4).

"When an error occurs in the system ... it persists until the memory
page is reloaded.  [...] A higher server load means more client
requests coming in and the potential for more diversified client
request patterns.  The more diversified client requests are, the
higher the chance of different parts of the server code being
exercised and thus the higher the probability of a latent error being
manifested."

This module makes that argument measurable: flip one bit in a
long-lived server image, then serve a stream of connections drawn from
a workload (a cycle of client patterns) and record when -- if ever --
the latent error first manifests (any outcome other than NM for that
connection's client pattern).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..apps.common import CONNECTION_INSTRUCTION_BUDGET
from ..emu import Process
from ..kernel import ServerHang
from .golden import record_golden
from .outcomes import classify_completed_run, NOT_MANIFESTED


@dataclass
class LatentErrorResult:
    """Fate of one latent fault under one workload."""

    address: int
    bit: int
    manifested: bool
    first_connection: int | None = None
    outcome: str = ""
    detail: str = ""


@dataclass
class LatentStudyResult:
    """All faults of one study."""

    workload_labels: tuple
    connections_per_fault: int
    results: list = field(default_factory=list)

    @property
    def manifestation_rate(self):
        if not self.results:
            return 0.0
        manifested = sum(1 for r in self.results if r.manifested)
        return manifested / len(self.results)

    def mean_time_to_manifestation(self):
        """Mean first-manifestation connection index (manifested only)."""
        hits = [r.first_connection for r in self.results if r.manifested]
        if not hits:
            return None
        return sum(hits) / len(hits)


def run_latent_study(daemon, workload, faults,
                     connections_per_fault=None,
                     budget=CONNECTION_INSTRUCTION_BUDGET):
    """Serve connections against faulted images.

    ``workload`` is a list of ``(label, client_factory)`` pairs; each
    fault's image serves one connection per pair, cycling in order
    (``connections_per_fault`` defaults to one full cycle).  ``faults``
    is a list of ``(address, bit)`` text-segment flips.
    """
    if connections_per_fault is None:
        connections_per_fault = len(workload)
    goldens = {label: record_golden(daemon, factory, budget)
               for label, factory in workload}
    study = LatentStudyResult(
        workload_labels=tuple(label for label, __ in workload),
        connections_per_fault=connections_per_fault)
    for address, bit in faults:
        parent = Process(daemon.module, None)
        parent.flip_bit(address, bit)
        result = LatentErrorResult(address=address, bit=bit,
                                   manifested=False)
        for connection in range(connections_per_fault):
            label, factory = workload[connection % len(workload)]
            client = factory()
            kernel = daemon.make_kernel(client)
            child = parent.clone_for_connection(kernel)
            try:
                status = child.run(budget)
            except ServerHang:
                status = child._status("limit", None)
                status.kind = "hang"
            outcome, detail = classify_completed_run(
                goldens[label], client,
                kernel.channel.normalized_transcript(), status)
            if outcome != NOT_MANIFESTED:
                result.manifested = True
                result.first_connection = connection + 1
                result.outcome = outcome
                result.detail = "%s under %s" % (detail, label)
                break
        study.results.append(result)
    return study


def sample_text_faults(daemon, count, seed=541):
    """Uniform random (address, bit) samples over the text segment."""
    rng = random.Random(seed)
    text_base = daemon.module.text_base
    text_length = len(daemon.module.text)
    return [(text_base + rng.randrange(text_length), rng.randrange(8))
            for __ in range(count)]
