"""Work-unit scheduling for campaign execution.

The static whole-instruction sharding in
:mod:`repro.injection.parallel` fixes the work assignment up front:
shard K owns every K-th instruction group for the whole campaign, so
one slow shard (an instruction whose sessions are expensive, a worker
sharing a busy core) sets the campaign's wall clock.  This module
extracts the assignment decision into an explicit scheduling layer:

* the enumerated experiment list is cut into :class:`WorkUnit`\\ s of a
  few *whole instructions* each (all bits of one instruction stay
  together, preserving the per-site ``BreakpointSession`` amortisation
  -- and, because equivalence classes are a property of one site's
  points, every pruning class lands intact inside exactly one unit);
* units sit on a single pull queue; workers *take* the next unit when
  they go idle, which is work stealing in its simplest form -- a fast
  worker simply takes more units, and no unit is ever owned before a
  worker is ready to run it;
* completions are keyed by point, so the merge back into enumeration
  order is a pure sort -- byte-identical to a serial run no matter how
  units interleaved, migrated between workers, or were salvaged from a
  dead worker's journal and requeued.

The scheduler is deliberately process-free pure logic: the fleet
(:mod:`repro.injection.fleet`) and the one-shot parallel runner are
transport layers around it, and the determinism property ("any
interleaving of unit completions merges to the same journal bytes as
serial") is tested directly against this class without an emulator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .runner import _point_key

#: default whole instructions per work unit.  Small enough that a
#: campaign of a few dozen sites spreads across any fleet, large
#: enough that the per-unit overhead (journal load, unit messages)
#: stays amortised over many experiments.
UNIT_INSTRUCTIONS = 4


def instruction_groups(points):
    """Split an enumerated point list into runs of consecutive points
    sharing one ``instruction_address`` (the unit of breakpoint-session
    amortisation -- and of pruning-class integrity)."""
    groups = []
    for point in points:
        if (groups and groups[-1][-1].instruction_address
                == point.instruction_address):
            groups[-1].append(point)
        else:
            groups.append([point])
    return groups


@dataclass(frozen=True)
class WorkUnit:
    """A contiguous slice of the enumeration: a few whole instructions'
    worth of points, identified by its position in unit order."""

    unit_id: str
    index: int
    points: tuple

    @property
    def keys(self):
        return tuple(_point_key(point) for point in self.points)

    def __len__(self):
        return len(self.points)


def build_units(points, unit_instructions=UNIT_INSTRUCTIONS,
                first_index=0):
    """Cut *points* into :class:`WorkUnit`\\ s of at most
    ``unit_instructions`` whole instructions, in enumeration order."""
    if unit_instructions < 1:
        raise ValueError("unit_instructions must be >= 1, got %r"
                         % unit_instructions)
    units = []
    groups = instruction_groups(points)
    for offset in range(0, len(groups), unit_instructions):
        chunk = groups[offset:offset + unit_instructions]
        index = first_index + len(units)
        units.append(WorkUnit(
            unit_id="u%05d" % index, index=index,
            points=tuple(point for group in chunk
                         for point in group)))
    return units


@dataclass
class _UnitState:
    unit: WorkUnit
    taken: bool = False
    done: bool = False
    attempts: int = 0
    covered: set = field(default_factory=set)


class CampaignScheduler:
    """Turns one campaign's enumerated points into pull-queue work
    units and merges completions back into enumeration order.

    Lifecycle::

        scheduler = CampaignScheduler(points, unit_instructions=4)
        scheduler.preload(resumed_results, resumed_quarantined)
        while not scheduler.finished:
            unit = scheduler.take()          # None: all in flight
            ... run unit somewhere ...
            scheduler.record(key, record)    # per completed point
            scheduler.complete(unit)         # or requeue(unit)

    ``record``/``record_quarantine`` accept any completion source --
    a worker payload, a salvaged journal, an inline run -- and ignore
    keys outside the enumeration (stale journal entries) as well as
    repeat completions (a point that migrated units between resumes;
    the emulator is deterministic, so every copy carries the same
    record).  :meth:`merged_results` is a pure sort by enumeration
    index, which is the whole determinism argument: the merged output
    is a function of the completion *set*, never of the completion
    *order*.
    """

    def __init__(self, points, unit_instructions=UNIT_INSTRUCTIONS):
        self.points = list(points)
        self.unit_instructions = unit_instructions
        self.order = {_point_key(point): index
                      for index, point in enumerate(self.points)}
        self.results = {}
        self.quarantined = {}
        #: keys completed before scheduling (journal resume).
        self.resumed = set()
        self._built = False
        self._units = {}
        self._queue = deque()
        self._next_index = 0

    # -- resume preload ------------------------------------------------

    def preload(self, results, quarantined):
        """Load already-completed records (keyed by point) before the
        units are built; unknown keys are dropped."""
        if self._built:
            raise RuntimeError("preload() must precede take()")
        for key, record in (results or {}).items():
            if key in self.order:
                self.results[key] = record
                self.resumed.add(key)
        for key, record in (quarantined or {}).items():
            if key in self.order:
                self.quarantined[key] = record
                self.resumed.add(key)

    # -- unit queue ----------------------------------------------------

    def _build(self):
        remaining = [point for point in self.points
                     if _point_key(point) not in self.resumed]
        for unit in build_units(remaining, self.unit_instructions):
            self._units[unit.unit_id] = _UnitState(unit)
            self._queue.append(unit.unit_id)
        self._next_index = len(self._units)
        self._built = True

    @property
    def units(self):
        """All units ever scheduled, in creation order."""
        if not self._built:
            self._build()
        return [state.unit for state in self._units.values()]

    def take(self):
        """Next unit for an idle worker (the pull is the steal), or
        ``None`` when everything is done or in flight."""
        if not self._built:
            self._build()
        while self._queue:
            unit_id = self._queue.popleft()
            state = self._units[unit_id]
            if state.done:
                continue
            state.taken = True
            state.attempts += 1
            return state.unit
        return None

    def record(self, key, record):
        """One completed experiment record, from any source."""
        if key in self.order and key not in self.quarantined:
            self.results[key] = record

    def record_quarantine(self, key, record):
        if key in self.order:
            self.quarantined[key] = record
            self.results.pop(key, None)

    def complete(self, unit):
        """Mark *unit* finished.  Points of the unit not covered by a
        :meth:`record` call are treated as intentionally absent (e.g.
        a checkpoint boundary) -- use :meth:`requeue` instead when
        they still need to run."""
        state = self._units[unit.unit_id]
        state.done = True
        state.taken = False

    def requeue(self, unit):
        """Return a unit's unfinished remainder to the queue (worker
        died mid-unit; whatever its journal held should have been
        :meth:`record`\\ ed first).  The remainder becomes a fresh
        unit at the *front* of the queue, so salvaged work finishes
        before new work starts.  Returns the replacement unit, or
        ``None`` when every point of the unit is already covered."""
        state = self._units[unit.unit_id]
        state.done = True
        state.taken = False
        leftover = [point for point in unit.points
                    if _point_key(point) not in self.results
                    and _point_key(point) not in self.quarantined]
        if not leftover:
            return None
        replacement = WorkUnit(
            unit_id="u%05d" % self._next_index,
            index=self._next_index, points=tuple(leftover))
        self._next_index += 1
        self._units[replacement.unit_id] = _UnitState(
            replacement, attempts=state.attempts)
        self._queue.appendleft(replacement.unit_id)
        return replacement

    def attempts(self, unit):
        state = self._units.get(unit.unit_id)
        return state.attempts if state is not None else 0

    # -- progress ------------------------------------------------------

    @property
    def total(self):
        return len(self.points)

    @property
    def completed(self):
        return len(self.results) + len(self.quarantined)

    @property
    def in_flight(self):
        return [state.unit for state in self._units.values()
                if state.taken and not state.done]

    @property
    def pending(self):
        """Units still waiting on the queue."""
        if not self._built:
            self._build()
        return [self._units[unit_id].unit for unit_id in self._queue
                if not self._units[unit_id].done]

    @property
    def finished(self):
        """Every enumerated point has a result or a quarantine."""
        if not self._built:
            self._build()
        return all(key in self.results or key in self.quarantined
                   for key in self.order)

    # -- deterministic merge -------------------------------------------

    def merged_results(self):
        """Completed result records in exact enumeration order."""
        return [self.results[key]
                for key in sorted(self.results,
                                  key=self.order.__getitem__)]

    def merged_quarantined(self):
        return [self.quarantined[key]
                for key in sorted(self.quarantined,
                                  key=self.order.__getitem__)]

    def missing_keys(self):
        return [key for key in self.order
                if key not in self.results
                and key not in self.quarantined]
