"""Self-healing supervision for sharded campaigns.

The fail-fast parent loop that :mod:`repro.injection.parallel` started
with treated any worker anomaly as fatal: a dead process raised, an
``error`` message raised, and the ``finally`` block terminated healthy
siblings mid-write.  That is the wrong trade for the long campaigns
the ROADMAP aims at, where worker failures are routine, not
exceptional.  :class:`ShardSupervisor` replaces it with a state
machine per shard::

    RUNNING --crash/wedge/error--> BACKOFF --delay--> RUNNING (respawn)
       |                              |
       | done                         | restart budget exhausted
       v                              v
      DONE                         FAILED --> degraded completion

* **liveness** -- every worker message doubles as a heartbeat
  (``progress`` ticks fire per experiment).  A shard is *crashed* when
  its process is not alive -- regardless of exit code, which is how a
  worker that exits 0 before sending its ``done`` payload used to hang
  the parent forever -- and *wedged* when alive but silent past the
  heartbeat deadline (derived from the watchdog wall-clock limit, so a
  legitimately slow experiment never trips it).
* **respawn** -- a crashed or wedged shard is relaunched with
  exponential backoff, resuming from its own ``<journal>.shardK`` file
  so journaled points are never re-run.  Messages carry the attempt
  number; anything from a previous incarnation is discarded as stale.
* **degraded completion** -- a shard that exhausts its restart budget
  is marked FAILED while its siblings keep running.  Afterwards the
  supervisor salvages whatever the failed shard journaled, re-shards
  its remaining points across as many workers as just finished
  healthy, and -- as the last resort, e.g. when every worker fails to
  even build its daemon -- runs the leftovers inline in the parent,
  which already holds a working daemon.  Only when the inline path
  fails too does the campaign raise.
* **checkpoint shutdown** -- SIGTERM/SIGINT in the parent (under
  ``graceful_signals``) or an expired ``deadline`` forwards SIGTERM to
  the workers, which finish their current experiment, flush their
  journals and report a ``checkpoint``; the parent then raises
  :class:`~repro.injection.runner.CampaignInterrupted` with a one-line
  resume hint.  Stragglers are SIGKILLed after ``drain_timeout`` --
  safe, because journals are flushed per record.

Every transition is counted in :attr:`ShardSupervisor.events` (merged
into the metrics registry as volatile ``supervisor.*`` counters) and
marked on the parent's trace as instant events, so a recovered
campaign is visibly recovered, while its Table 1/3/5 and Figure 4
counts stay byte-identical to an undisturbed serial run.
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import connection as _mp_connection

from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry
from .injector import SessionCache
from .runner import (_point_key, CampaignInterrupted, CampaignJournal,
                     declare_campaign_metrics, JournalError,
                     record_result_metrics)

_LOGGER = get_logger("supervisor")

#: shard lifecycle states.
RUNNING = "running"
BACKOFF = "backoff"
DONE = "done"
FAILED = "failed"
CHECKPOINTED = "checkpointed"

#: every supervision event the report counts (and the metrics registry
#: exports as ``supervisor.<name>`` volatile counters).
#: ``pipe_errors`` counts message channels torn while their worker was
#: still supposed to be RUNNING (killed mid-send) -- the EOF after a
#: healthy ``done``/``checkpoint`` is normal teardown and not counted.
EVENT_NAMES = ("respawns", "wedged", "worker_errors", "failed_shards",
               "degraded", "degraded_points", "salvaged_points",
               "inline_points", "checkpoints", "checkpoint_exits",
               "stale_messages", "pipe_errors")


# ----------------------------------------------------------------------
# Machinery shared with the fleet supervisor
# (:mod:`repro.injection.fleet`): the same backoff curve, graceful
# signal conversion and insistent join, so both supervision styles
# degrade identically.

def backoff_delay(config, restarts):
    """Exponential respawn delay for the *restarts*-th restart
    (1-based), capped."""
    return min(config.backoff_cap,
               config.backoff_base * (2 ** (restarts - 1)))


def install_stop_handlers(on_stop):
    """Convert SIGTERM/SIGINT into ``on_stop(signal_name)`` (flag, not
    raise -- the caller checkpoints at the next clean boundary).
    Returns the restore callback; a no-op off the main thread, where
    signal handlers cannot be installed."""
    if threading.current_thread() is not threading.main_thread():
        return lambda: None

    def request_stop(signum, frame):
        on_stop(signal.Signals(signum).name)

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, request_stop)

    def restore():
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    return restore


def join_process(process, timeout=5.0):
    """Join with a SIGKILL escalation for processes that ignore it."""
    process.join(timeout)
    if process.is_alive():
        process.kill()
        process.join(timeout)


@dataclass
class SupervisorConfig:
    """Tunables for :class:`ShardSupervisor`.

    ``heartbeat_timeout`` defaults to twice the watchdog's wall-clock
    limit plus slack, so a worker inside its slowest legal experiment
    is never declared wedged.  ``dead_grace`` delays the verdict on a
    non-alive process long enough for its final pipe message to drain
    (a worker can die microseconds after sending ``done``).
    """

    max_restarts: int = 2
    backoff_base: float = 0.5
    backoff_cap: float = 8.0
    heartbeat_timeout: float | None = None
    poll_interval: float = 0.25
    dead_grace: float = 0.5
    drain_timeout: float = 30.0


@dataclass
class ShardState:
    """One shard's supervision record."""

    shard: int
    points: list
    max_restarts: int
    status: str = RUNNING
    process: object = None
    #: read end of this incarnation's private message pipe.  One pipe
    #: per incarnation, one writer per pipe: a worker killed mid-send
    #: (chaos ``os._exit``, SIGKILL, OOM) can tear only its *own*
    #: channel -- a shared queue's write lock would stay held forever
    #: and silently wedge every later writer.
    conn: object = None
    attempt: int = 0
    restarts: int = 0
    last_beat: float = 0.0
    resume_due: float = 0.0
    dead_since: float | None = None
    payload: dict | None = None
    failures: list = field(default_factory=list)


@dataclass
class SupervisionReport:
    """What a supervised run produced and what it survived."""

    payloads: list
    #: every shard index that existed (including degraded-wave and
    #: inline shards) -- the set of ``.shardK`` journal/trace files.
    shard_indices: list
    events: dict
    #: ``(shard, detail)`` for every recorded failure, including ones
    #: later healed by respawn or degraded completion.
    failures: list
    interrupted: str | None = None


class ShardSupervisor:
    """Supervises one sharded campaign run to completion.

    Drives the worker fleet of a
    :class:`~repro.injection.parallel.ParallelCampaignRunner` (the
    ``runner``), which supplies specs, journal paths, the tracer and
    the inline fallback.  :meth:`run` returns a
    :class:`SupervisionReport`; it raises only for a checkpoint
    (:class:`~repro.injection.runner.CampaignInterrupted`) or when even
    inline degraded completion cannot finish the campaign.
    """

    def __init__(self, runner, shards, total_points=0,
                 resumed_points=0, config=None):
        self.runner = runner
        self.shards = [list(points) for points in shards]
        self.total_points = total_points
        self.resumed_points = resumed_points
        self.config = config if config is not None else SupervisorConfig()
        heartbeat = self.config.heartbeat_timeout
        if heartbeat is None:
            wall = runner.watchdog_config.wall_clock_limit or 60.0
            heartbeat = 2.0 * wall + 30.0
        self.heartbeat_timeout = heartbeat
        self.states = {}
        self.events = {name: 0 for name in EVENT_NAMES}
        self.progress_by_shard = {}
        self.stop_reason = None
        self.report = None
        self._stop_signal = None
        self._deadline_at = None
        self.context = None
        # Supervisor-owned breakpoint-session cache for inline
        # degraded completions: successive inline waves (e.g. after
        # several shard failures) reuse one site snapshot per
        # instruction instead of re-running the connection prefix.
        self._inline_sessions = SessionCache()

    # -- entry point ---------------------------------------------------

    def run(self):
        runner = self.runner
        if self.shards:
            self.context = runner._context()
            if runner.deadline is not None:
                self._deadline_at = time.monotonic() + runner.deadline
            restore = self._install_signal_handlers()
            try:
                for shard, points in enumerate(self.shards):
                    state = ShardState(
                        shard=shard, points=points,
                        max_restarts=self.config.max_restarts)
                    self.states[shard] = state
                    self._spawn(state)
                self._supervise()
                if self.stop_reason is None:
                    self._degraded_completion()
                if self.stop_reason is not None:
                    self._drain_checkpoint()
            finally:
                restore()
                self._reap()
                self._finalize_report()
        else:
            self._finalize_report()
        if self.stop_reason is not None:
            raise CampaignInterrupted(self.stop_reason,
                                      journal=runner.journal_path,
                                      completed=self._completed())
        return self.report

    # -- main loop -----------------------------------------------------

    def _supervise(self):
        while self.stop_reason is None and self._active():
            self._pump()
            self.stop_reason = self._interrupt_reason()
            if self.stop_reason is not None:
                return
            now = time.monotonic()
            for state in list(self.states.values()):
                if state.status == RUNNING:
                    self._check_liveness(state, now)
                elif (state.status == BACKOFF
                        and now >= state.resume_due):
                    self._respawn(state)

    def _active(self):
        return any(state.status in (RUNNING, BACKOFF)
                   for state in self.states.values())

    def _pump(self):
        by_conn = {state.conn: state
                   for state in self.states.values()
                   if state.conn is not None}
        if not by_conn:
            time.sleep(self.config.poll_interval)
            return
        ready = _mp_connection.wait(list(by_conn),
                                    timeout=self.config.poll_interval)
        for conn in ready:
            self._drain_conn(by_conn[conn], conn)

    def _drain_conn(self, state, conn):
        while True:
            try:
                if not conn.poll():
                    return
                message = conn.recv()
            except (EOFError, OSError) as error:
                # Write end gone and the buffer is exhausted.  After a
                # ``done``/``checkpoint``/``error`` this is normal
                # teardown; while the shard is still RUNNING it means
                # the worker died possibly mid-send -- record it
                # (incarnation included) instead of dropping the tear
                # silently, then let the liveness check decide what it
                # means for the shard.
                if state.status == RUNNING:
                    self.events["pipe_errors"] += 1
                    _LOGGER.warning(
                        "shard %d attempt %d: message channel torn "
                        "while running (%s); worker presumed dead "
                        "mid-send", state.shard, state.attempt,
                        type(error).__name__)
                conn.close()
                if state.conn is conn:
                    state.conn = None
                return
            self._handle(message)

    def _handle(self, message):
        kind, shard, attempt = message[0], message[1], message[2]
        state = self.states.get(shard)
        if state is None or attempt != state.attempt:
            # a killed incarnation's leftovers must not be mistaken
            # for its replacement's liveness or results.
            self.events["stale_messages"] += 1
            return
        state.last_beat = time.monotonic()
        state.dead_since = None
        if kind == "hello":
            pass
        elif kind == "progress":
            done = message[3]
            self.progress_by_shard[shard] = done
            if self.runner.progress is not None:
                self.runner.progress(self._completed(),
                                     self.total_points)
        elif kind == "done":
            state.payload = message[3]
            state.status = DONE
        elif kind == "checkpoint":
            state.status = CHECKPOINTED
            self.events["checkpoints"] += 1
        elif kind == "error":
            self.events["worker_errors"] += 1
            self._join(state.process)
            self._failure(state, "shard %d attempt %d errored:\n%s"
                          % (shard, attempt, message[3]))

    def _completed(self):
        return self.resumed_points + sum(self.progress_by_shard.values())

    def _emit(self, type, **payload):
        """Telemetry event through the runner's campaign-scoped bus
        hook (tests drive the supervisor with bare stand-in runners,
        hence the getattr)."""
        emit = getattr(self.runner, "_emit", None)
        if emit is not None:
            emit(type, **payload)

    # -- liveness / failure handling -----------------------------------

    def _check_liveness(self, state, now):
        process = state.process
        if not process.is_alive():
            # Dead regardless of exit code: filtering on a nonzero
            # exitcode is how a worker that exited 0 before sending
            # ``done`` used to hang the parent forever.  The grace
            # period lets an in-flight final message drain first.
            if state.dead_since is None:
                state.dead_since = now
            elif now - state.dead_since >= self.config.dead_grace:
                self._failure(
                    state, "shard %d attempt %d died without "
                    "reporting (exit code %s)"
                    % (state.shard, state.attempt, process.exitcode))
        elif now - state.last_beat > self.heartbeat_timeout:
            self.events["wedged"] += 1
            # SIGKILL, not SIGTERM: a wedged worker may never reach
            # its stop_check (time.sleep resumes after a handled
            # signal), and its journal is flushed per record anyway.
            process.kill()
            self._join(process)
            self._failure(
                state, "shard %d attempt %d wedged: no heartbeat for "
                "%.0fs" % (state.shard, state.attempt,
                           now - state.last_beat))

    def _failure(self, state, detail):
        state.failures.append(detail)
        state.dead_since = None
        if state.restarts >= state.max_restarts:
            state.status = FAILED
            self.events["failed_shards"] += 1
            self._emit("worker-retired", worker=state.shard,
                       incarnation=state.attempt,
                       restarts=state.restarts)
            _LOGGER.warning(
                "%s after %d restart(s); giving up on shard %d "
                "(healthy shards continue; its points will be "
                "recovered afterwards)", detail.splitlines()[0],
                state.restarts, state.shard)
            return
        state.restarts += 1
        delay = backoff_delay(self.config, state.restarts)
        state.status = BACKOFF
        state.resume_due = time.monotonic() + delay
        self._emit("worker-backoff", worker=state.shard,
                   incarnation=state.attempt, restarts=state.restarts,
                   delay=round(delay, 3))
        _LOGGER.warning("%s; respawning in %.1fs (restart %d/%d)",
                        detail.splitlines()[0], delay, state.restarts,
                        state.max_restarts)

    # -- spawning ------------------------------------------------------

    def _spawn(self, state):
        # Lazy import: tests monkeypatch parallel._shard_worker_main,
        # and a spawn must resolve the current attribute.
        from . import parallel
        spec = self.runner._spec(state.shard, state.points,
                                 attempt=state.attempt)
        if state.conn is not None:
            state.conn.close()
        reader, writer = self.context.Pipe(duplex=False)
        process = self.context.Process(
            target=parallel._shard_worker_main,
            args=(spec, writer))
        process.daemon = True
        process.start()
        # Drop the parent's copy of the write end so the reader sees
        # EOF the moment the worker -- the only writer -- exits.
        writer.close()
        state.conn = reader
        state.process = process
        state.status = RUNNING
        state.last_beat = time.monotonic()
        state.dead_since = None

    def _respawn(self, state):
        self.events["respawns"] += 1
        state.attempt += 1
        self._emit("worker-respawn", worker=state.shard,
                   incarnation=state.attempt, restarts=state.restarts)
        self.runner.tracer.instant(
            "supervisor-respawn", cat="supervisor",
            shard=state.shard, attempt=state.attempt)
        _LOGGER.info("respawning shard %d (attempt %d), resuming "
                     "from its journal", state.shard, state.attempt)
        self._spawn(state)

    # -- degraded completion -------------------------------------------

    def _degraded_completion(self):
        failed = [state for state in self.states.values()
                  if state.status == FAILED]
        if not failed:
            return
        self.events["degraded"] += 1
        self.runner.tracer.instant(
            "supervisor-degraded", cat="supervisor",
            shards=sorted(state.shard for state in failed))
        covered = set()
        for state in failed:
            covered.update(self._salvage(state))
        leftovers = [point for state in failed
                     for point in state.points
                     if _point_key(point) not in covered]
        if not leftovers:
            return
        self.events["degraded_points"] += len(leftovers)
        _LOGGER.warning(
            "degraded completion: %d point(s) from failed shard(s) %s "
            "re-sharded across survivors", len(leftovers),
            sorted(state.shard for state in failed))
        survivors = sum(1 for state in self.states.values()
                        if state.status == DONE)
        remaining = leftovers
        if survivors:
            remaining = self._degraded_wave(leftovers, survivors)
            if self.stop_reason is not None:
                return
        if remaining:
            self._run_inline(remaining)

    def _degraded_wave(self, points, survivors):
        """Re-shard *points* across as many fresh workers as shards
        just finished healthy (those worker slots are proven viable);
        the new shards get no restart budget -- whatever still fails
        falls through to the inline path.

        Pruning survives this path unchanged: degraded-wave and inline
        runners inherit the parent's ``prune``/``audit_fraction``
        settings via ``_spec()`` / ``_run_inline``, re-sharding keeps
        whole instructions (hence whole equivalence classes) together,
        and class ids are content-derived -- so a leftover subset of a
        class re-classifies to the same ``class_id`` with a possibly
        different (equally valid) representative.
        """
        from .parallel import shard_points
        next_shard = max(self.states) + 1
        new_states = []
        for offset, wave in enumerate(shard_points(points, survivors)):
            state = ShardState(shard=next_shard + offset, points=wave,
                               max_restarts=0)
            self.states[state.shard] = state
            self._spawn(state)
            new_states.append(state)
        self._supervise()
        if self.stop_reason is not None:
            return []
        remaining = []
        for state in new_states:
            if state.status != FAILED:
                continue
            covered = self._salvage(state)
            remaining.extend(point for point in state.points
                             if _point_key(point) not in covered)
        return remaining

    def _run_inline(self, points):
        shard = max(self.states) + 1 if self.states else 0
        state = ShardState(shard=shard, points=list(points),
                           max_restarts=0)
        self.states[shard] = state
        self.events["inline_points"] += len(points)
        _LOGGER.warning("degraded completion: running %d point(s) "
                        "inline in the parent process", len(points))
        try:
            state.payload = self.runner._run_inline(
                shard, state.points, stop_check=self._interrupt_reason,
                session_cache=self._inline_sessions)
        except CampaignInterrupted as interrupted:
            self.stop_reason = interrupted.reason
            return
        except Exception as error:
            details = "\n".join(
                "shard %d: %s" % (failed.shard, failure)
                for failed in self.states.values()
                for failure in failed.failures)
            raise RuntimeError(
                "campaign could not self-heal: inline degraded "
                "completion failed after shard failure(s):\n%s"
                % details) from error
        state.status = DONE

    def _salvage(self, state):
        """Recover what a failed shard already journaled as a
        synthetic ``done`` payload (with a metrics registry rebuilt
        from the records, so the deterministic metrics core still
        aggregates exactly).  Returns the covered point keys."""
        runner = self.runner
        if runner.journal_path is None:
            return set()
        from .parallel import shard_journal_path
        path = shard_journal_path(runner.journal_path, state.shard)
        try:
            __, results, quarantined, __report = \
                CampaignJournal.load_with_report(path, strict=False)
        except (FileNotFoundError, JournalError):
            return set()
        if not results and not quarantined:
            return set()
        from ..analysis.serialize import result_from_dict
        registry = declare_campaign_metrics(MetricsRegistry())
        for record in results.values():
            record_result_metrics(registry, result_from_dict(record))
        registry.counter("quarantined").inc(len(quarantined))
        salvaged = len(results) + len(quarantined)
        self.events["salvaged_points"] += salvaged
        state.payload = {
            "results": list(results.values()),
            "quarantined": list(quarantined.values()),
            "timing": {"shard": state.shard, "experiments": salvaged,
                       "executed": 0, "salvaged": salvaged},
            "metrics": registry.as_dict(),
        }
        _LOGGER.info("salvaged %d journaled record(s) from failed "
                     "shard %d", salvaged, state.shard)
        return set(results) | set(quarantined)

    # -- checkpoint shutdown -------------------------------------------

    def _drain_checkpoint(self):
        self.events["checkpoint_exits"] += 1
        self.runner.tracer.instant("supervisor-checkpoint",
                                   cat="supervisor",
                                   reason=self.stop_reason)
        _LOGGER.warning("checkpoint requested (%s): draining workers",
                        self.stop_reason)
        for state in self.states.values():
            if state.status == RUNNING and state.process.is_alive():
                # Workers convert SIGTERM into a finish-current-
                # experiment, flush-journal checkpoint.
                state.process.terminate()
        deadline = time.monotonic() + self.config.drain_timeout
        while (any(state.status == RUNNING and state.process.is_alive()
                   for state in self.states.values())
               and time.monotonic() < deadline):
            self._pump()
        self._pump()                  # drain already-queued messages
        for state in self.states.values():
            if state.status != RUNNING:
                continue
            if state.process.is_alive():
                # Straggler past the drain budget: SIGKILL is safe,
                # the journal is flushed after every record.
                state.process.kill()
            self._join(state.process)
            state.status = CHECKPOINTED

    # -- signals / deadline --------------------------------------------

    def _install_signal_handlers(self):
        if not self.runner.graceful_signals:
            return lambda: None

        def on_stop(name):
            self._stop_signal = name

        return install_stop_handlers(on_stop)

    def _interrupt_reason(self):
        if self._stop_signal is not None:
            return self._stop_signal
        if (self._deadline_at is not None
                and time.monotonic() > self._deadline_at):
            return "deadline"
        return None

    # -- teardown ------------------------------------------------------

    def _join(self, process, timeout=5.0):
        join_process(process, timeout)

    def _reap(self):
        for state in self.states.values():
            process = state.process
            if process is None:
                continue
            if process.is_alive():
                process.terminate()
        for state in self.states.values():
            if state.process is not None:
                self._join(state.process)
            if state.conn is not None:
                state.conn.close()
                state.conn = None

    def _finalize_report(self):
        failures = [(state.shard, failure)
                    for __, state in sorted(self.states.items())
                    for failure in state.failures]
        if failures and self.stop_reason is None:
            _LOGGER.warning(
                "campaign completed despite %d worker failure(s) "
                "across shard(s) %s", len(failures),
                sorted({shard for shard, __ in failures}))
        self.report = SupervisionReport(
            payloads=[state.payload
                      for __, state in sorted(self.states.items())
                      if state.payload is not None],
            shard_indices=sorted(self.states),
            events=dict(self.events),
            failures=failures,
            interrupted=self.stop_reason)
        self.runner._supervision = self
