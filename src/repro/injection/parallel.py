"""Parallel sharded campaign execution.

The selective-exhaustive campaigns of Tables 1/3/5 run thousands of
independent single-bit experiments; on a pure-Python emulator they are
the dominant wall-clock cost of every benchmark.  Injection analyses
are embarrassingly parallel over injection points (FastFlip makes the
same observation), and everything here is deterministic, so the
experiment list can be sharded across processes with no shared state:

* the parent enumerates the full point list (the same enumeration a
  serial run uses) and assigns *whole instructions* to shards
  round-robin -- all bits of one instruction stay together so each
  worker keeps the per-instruction ``BreakpointSession`` amortisation;
* each worker rebuilds its own daemon and golden run from a picklable
  recipe, then drives its slice through the ordinary fault-tolerant
  :class:`~repro.injection.runner.CampaignRunner` (isolation,
  watchdog, retries, quarantine all apply per shard);
* each worker journals to its own ``<journal>.shardK`` JSONL file;
  resume merges *every* existing shard file first (so the worker
  count may change between runs) and only re-runs missing points;
* the parent merges shard results back into point-enumeration order,
  so ``counts()``, Tables 1/3/5 and Figure 4 are byte-identical to a
  serial campaign.

Each worker incarnation reports over its own pipe (a worker killed
mid-send -- chaos, SIGKILL, OOM -- can tear only its own channel, not
a shared queue's write lock); every message is tagged
``(kind, shard, attempt, ...)``: ``hello`` on startup, ``progress``
ticks per experiment (doubling as heartbeats), one ``done`` payload
(plain dicts, via :mod:`repro.analysis.serialize`) per shard,
``checkpoint`` when a SIGTERM'd worker stops at a journal-consistent
boundary, or ``error`` carrying the traceback.  The parent side is a
:class:`~repro.injection.supervisor.ShardSupervisor`: crashed or
wedged workers are respawned from their own journals, shards that
exhaust their restart budget are completed in degraded mode by the
survivors (or inline in the parent), and SIGTERM/SIGINT/``deadline``
checkpoint the whole campaign into a cleanly resumable state.
"""

from __future__ import annotations

import glob
import multiprocessing
import re
import signal
import time
import traceback

from ..apps.common import CONNECTION_INSTRUCTION_BUDGET
from ..emu.perf import PerfCounters
from ..obs.metrics import MetricsRegistry, record_supervision_metrics
from ..obs.sampler import as_sampler, Sampler
from ..obs.trace import (as_tracer, merge_trace_files,
                         shard_trace_path, Tracer)
from .faultmodels import get_fault_model
from .golden import record_golden
from .runner import (_point_key, CampaignInterrupted, CampaignJournal,
                     campaign_timing, CampaignRunner,
                     declare_campaign_metrics, record_result_metrics,
                     record_runtime_metrics, validate_journal_meta,
                     Watchdog, WatchdogConfig)
from .supervisor import ShardSupervisor, SupervisorConfig
from .targets import DEFAULT_TARGET_KINDS


# ----------------------------------------------------------------------
# Worker-side daemon reconstruction

class RebuildDaemon:
    """Picklable recipe that rebuilds the parent's daemon in a worker.

    Daemons are deterministic compilations of fixed source, so a
    rebuild from the same class and constructor data is bit-identical
    to the parent's instance.
    """

    def __init__(self, daemon_class, kwargs):
        self.daemon_class = daemon_class
        self.kwargs = kwargs

    def __call__(self):
        return self.daemon_class(**self.kwargs)


def default_daemon_factory(daemon):
    """Zero-config factory for the stock daemons: reuse the class,
    carrying over the password database and FTP file tree when the
    daemon has them (the app-layer :class:`~repro.apps.common.Daemon`
    protocol)."""
    kwargs = {}
    for name in ("database", "files"):
        if hasattr(daemon, name):
            kwargs[name] = getattr(daemon, name)
    return RebuildDaemon(type(daemon), kwargs)


# ----------------------------------------------------------------------
# Shard journals

_SHARD_SUFFIX = re.compile(r"\.shard\d+$")


def shard_journal_path(journal, shard):
    return "%s.shard%d" % (journal, shard)


def discover_shard_journals(journal):
    """Existing shard files for a journal base path, sorted, for any
    previous worker count."""
    return sorted(path for path in glob.glob("%s.shard*" % journal)
                  if _SHARD_SUFFIX.search(path))


def load_shard_journals(paths, strict=True):
    """Merge a set of shard journals into ``(metas, results,
    quarantined)`` with the latter two keyed by point.  Duplicate keys
    (a point that moved shards between resumes) are harmless: the
    emulator is deterministic, so every copy carries the same record.
    ``strict=False`` salvage-loads each file (corrupt mid-file lines
    are quarantined with a warning and their points re-run).
    """
    metas = []
    results = {}
    quarantined = {}
    for path in paths:
        meta, shard_results, shard_quarantined = \
            CampaignJournal.load(path, strict=strict)
        if meta is not None:
            metas.append(meta)
        results.update(shard_results)
        quarantined.update(shard_quarantined)
    return metas, results, quarantined


def _record_key(record):
    """Point key of a serialized result record (journal records carry
    an explicit ``key``; worker payloads inline the point fields)."""
    key = record.get("key")
    if key is not None:
        return key
    from ..analysis.serialize import point_from_dict
    return point_from_dict(record).key


# ----------------------------------------------------------------------
# Sharding

def shard_points(points, workers):
    """Split *points* into at most *workers* shards, keeping all bits
    of one instruction in the same shard (preserving the per-shard
    breakpoint-session amortisation) and distributing instructions
    round-robin for balance."""
    from .scheduler import instruction_groups
    groups = instruction_groups(points)
    shards = [[] for __ in range(workers)]
    for index, group in enumerate(groups):
        shards[index % workers].extend(group)
    return [shard for shard in shards if shard]


# ----------------------------------------------------------------------
# Worker main

def _shard_worker_main(spec, conn):
    """Run one shard start-to-finish inside a worker process.

    ``conn`` is the write end of this incarnation's private pipe (one
    writer per pipe, so a worker killed mid-send can tear only its own
    channel).  Every outbound message is tagged with the shard's
    *attempt* number, so the supervisor can discard leftovers from a
    killed incarnation.  SIGTERM/SIGINT handlers are installed before
    anything else: fork inherits the parent's handlers (which flag
    the parent's own supervisor, useless in the child), and the
    parent's checkpoint drain relies on workers converting SIGTERM
    into a finish-current-experiment, flush-journal checkpoint.
    """
    shard = spec["shard"]
    attempt = spec.get("attempt", 0)

    def emit(kind, *rest):
        try:
            conn.send((kind, shard, attempt) + rest)
        except (BrokenPipeError, OSError):
            pass      # supervisor gone; the journal is still flushed

    stop = {"reason": None}

    def request_stop(signum, frame):
        stop["reason"] = signal.Signals(signum).name

    try:
        signal.signal(signal.SIGTERM, request_stop)
        signal.signal(signal.SIGINT, request_stop)
    except ValueError:
        pass          # not this process's main thread (test harness)
    try:
        from ..analysis.serialize import (quarantined_to_dict,
                                          result_to_dict)
        emit("hello")
        started = time.monotonic()
        daemon = spec["daemon_factory"]()
        setup = time.monotonic() - started

        def progress(done, total):
            # Always emitted: progress ticks double as the liveness
            # heartbeat the supervisor's wedge detection relies on.
            emit("progress", done, total)

        tracer = None
        if spec.get("trace") is not None:
            # tid = shard + 1 gives every worker its own track under
            # the parent's (tid 0) in the merged trace.
            tracer = Tracer(sink=spec["trace"], tid=shard + 1)
        policy = spec.get("chaos")
        chaos = (policy.agent(shard, attempt)
                 if policy is not None else None)
        # Guest sampling is deterministic per shard (instruction
        # counts), so each worker runs its own sampler and ships the
        # profile dict home in the ``done`` payload for the parent to
        # fold together (the absorb_dict pattern, like metrics).
        sampler = (Sampler(spec["sample_period"])
                   if spec.get("sample_period") else None)
        runner = CampaignRunner(
            daemon, spec["client_name"], spec["client_factory"],
            encoding=spec["encoding"], kinds=spec["kinds"],
            budget=spec["budget"], progress=progress,
            points=spec["points"], journal=spec["journal"],
            resume=spec["resume"], retries=spec["retries"],
            watchdog=Watchdog(spec["watchdog_config"]),
            fault_model=spec.get("fault_model"),
            trace=tracer, forensics=spec.get("forensics", False),
            trace_root="shard", trace_attrs={"shard": shard},
            stop_check=lambda: stop["reason"],
            journal_fsync=spec.get("journal_fsync"),
            journal_salvage=spec.get("journal_salvage", False),
            chaos=chaos,
            full_restore=spec.get("full_restore", False),
            prune=spec.get("prune", False),
            audit_fraction=spec.get("audit_fraction", 0.0),
            audit_seed=spec.get("audit_seed", 0),
            sampler=sampler)
        campaign = runner.run()
        timing = dict(campaign.timing or {})
        timing.update(shard=shard, setup=setup,
                      points=len(spec["points"]))
        emit("done", {
            "results": [result_to_dict(result)
                        for result in campaign.results],
            "quarantined": [quarantined_to_dict(entry)
                            for entry in campaign.quarantined],
            "timing": timing,
            "metrics": campaign.metrics,
            "profile": (sampler.as_dict()
                        if sampler is not None else None),
        })
    except CampaignInterrupted as interrupted:
        emit("checkpoint", interrupted.completed)
    except BaseException:
        emit("error", traceback.format_exc())
    finally:
        conn.close()


# ----------------------------------------------------------------------
# The parent runner

class ParallelCampaignRunner:
    """Shards one selective-exhaustive campaign across N processes.

    Construction mirrors :func:`repro.injection.campaign.run_campaign`
    plus ``workers`` and an optional ``daemon_factory`` (any picklable
    zero-argument callable; defaults to rebuilding ``type(daemon)``
    with the parent's database/files).
    """

    def __init__(self, daemon, client_name, client_factory, workers=2,
                 encoding=None, kinds=DEFAULT_TARGET_KINDS,
                 budget=CONNECTION_INSTRUCTION_BUDGET, progress=None,
                 max_points=None, ranges=None, journal=None,
                 resume=False, retries=0, watchdog=None,
                 daemon_factory=None, fault_model=None, trace=None,
                 metrics=None, forensics=False, deadline=None,
                 graceful_signals=False, journal_fsync=None,
                 journal_salvage=False, chaos=None, supervisor=None,
                 full_restore=False, prune=False, audit_fraction=0.0,
                 audit_seed=0, telemetry=None, telemetry_campaign=None,
                 sampler=None, profile=None):
        from .campaign import ENCODING_OLD
        if workers < 1:
            raise ValueError("workers must be >= 1, got %r" % workers)
        self.daemon = daemon
        self.client_name = client_name
        self.client_factory = client_factory
        self.workers = workers
        self.encoding = encoding if encoding is not None else ENCODING_OLD
        self.model = get_fault_model(fault_model)
        self.kinds = kinds
        self.budget = budget
        self.progress = progress
        self.max_points = max_points
        self.ranges = ranges
        self.journal_path = journal
        self.resume = resume
        self.retries = retries
        if isinstance(watchdog, Watchdog):
            self.watchdog_config = watchdog.config
        else:
            self.watchdog_config = (watchdog if watchdog is not None
                                    else WatchdogConfig())
        self.daemon_factory = (daemon_factory if daemon_factory
                               is not None
                               else default_daemon_factory(daemon))
        #: observability: ``trace`` is normally a sink *path* (each
        #: worker writes ``<trace>.shardK``; the parent merges them in
        #: shard order, like journals).  A :class:`Tracer` instance is
        #: accepted for the parent's own spans, but tracers do not
        #: cross process boundaries, so workers then emit nothing.
        #: ``metrics`` is a registry sink path; ``forensics`` passes
        #: through to every shard runner.
        self.trace_path = (None if trace is None
                           or isinstance(trace, Tracer) else str(trace))
        if self.trace_path is not None:
            # The parent's own spans stay in memory; the sink path is
            # written once at the end, as the merge of parent + shard
            # events (so the file is always one loadable trace).
            self.tracer = Tracer(sink=None)
        else:
            self.tracer = as_tracer(trace)
        self.metrics_path = metrics
        self.forensics = forensics
        #: resilience: ``deadline``/``graceful_signals`` trigger the
        #: supervisor's checkpoint shutdown; ``journal_fsync``/
        #: ``journal_salvage`` pass through to shard journals;
        #: ``chaos`` is a :class:`~repro.injection.chaos.ChaosPolicy`;
        #: ``supervisor`` a :class:`SupervisorConfig` override.
        self.deadline = deadline
        self.graceful_signals = graceful_signals
        self.journal_fsync = journal_fsync
        self.journal_salvage = journal_salvage
        self.chaos = chaos
        self.supervisor_config = (supervisor if supervisor is not None
                                  else SupervisorConfig())
        #: snapshot-restore escape hatch, forwarded to every shard's
        #: runner (and to inline degraded completions).
        self.full_restore = full_restore
        #: equivalence-class pruning, forwarded likewise.  Sharding
        #: keeps whole instructions together (`shard_points`), sites
        #: never straddle shards, and class membership is a property
        #: of one site's points -- so every equivalence class lands
        #: intact inside exactly one shard and the pruned parallel
        #: merge stays byte-identical to a pruned serial run.  The
        #: audit sample is keyed on content-derived class ids, so it
        #: is the same set of classes at any worker count.
        self.prune = prune
        self.audit_fraction = audit_fraction
        self.audit_seed = audit_seed
        #: telemetry: parent-level campaign events (workers report
        #: over their pipes; the parent is the only emitter so
        #: per-campaign sequence numbers stay contiguous).  ``sampler``
        #: seeds one parent sampler whose period every shard copies;
        #: shard profiles fold back into it and ``profile`` saves the
        #: merged result.
        self.telemetry = telemetry
        self.telemetry_campaign = telemetry_campaign
        self.profile_path = profile
        if sampler is None and profile is not None:
            sampler = Sampler()
        self.sampler = as_sampler(sampler)
        self._supervision = None

    # -- public entry point --------------------------------------------

    def run(self):
        try:
            with self.tracer.span("campaign",
                                  workers=self.workers) as span:
                campaign, shard_count = self._run_traced()
                span.set("experiments", len(campaign.results))
                span.set("shards", shard_count)
            return campaign
        except CampaignInterrupted as interrupted:
            self._emit("checkpoint", reason=interrupted.reason,
                       completed=interrupted.completed)
            raise
        finally:
            # Flush even on a checkpoint exit (CampaignInterrupted):
            # an interrupted campaign still leaves a loadable merged
            # trace and a metrics dump with its supervision counters.
            self._flush_observability()

    def _flush_observability(self):
        supervision = self._supervision
        if self.trace_path is not None:
            shard_indices = (supervision.report.shard_indices
                             if supervision is not None
                             and supervision.report is not None
                             else [])
            merge_trace_files(
                self.trace_path, self.tracer.events(),
                [shard_trace_path(self.trace_path, shard)
                 for shard in shard_indices])
        else:
            self.tracer.close()
        if self.metrics_path is not None:
            registry = getattr(self, "registry", None)
            if registry is None:
                # Interrupted before the merge: save at least the
                # declared instruments plus the supervision counters.
                registry = declare_campaign_metrics(MetricsRegistry())
                if supervision is not None:
                    record_supervision_metrics(registry,
                                               supervision.events)
            registry.save(self.metrics_path)
        if self.profile_path is not None and self.sampler is not None:
            self.sampler.save(self.profile_path)

    def _emit(self, type, **payload):
        if self.telemetry is not None:
            self.telemetry.emit(type, campaign=self.telemetry_campaign,
                                **payload)

    def _run_traced(self):
        from ..analysis.serialize import (quarantined_from_dict,
                                          result_from_dict)
        from .campaign import CampaignResult
        started = time.monotonic()
        with self.tracer.span("golden-run") as span:
            if self.sampler is not None:
                with self.sampler.host_phase("golden-run"):
                    golden = record_golden(self.daemon,
                                           self.client_factory,
                                           self.budget)
            else:
                golden = record_golden(self.daemon,
                                       self.client_factory,
                                       self.budget)
            span.set("coverage_eips", len(golden.coverage))
        self._emit("golden", reused=False,
                   coverage_eips=len(golden.coverage))
        points = self._enumerate()
        self._emit("campaign-started", points=len(points),
                   workers=self.workers)
        order = {_point_key(point): index
                 for index, point in enumerate(points)}
        done_results, done_quarantined = self._load_resume(order)
        remaining = [point for point in points
                     if _point_key(point) not in done_results
                     and _point_key(point) not in done_quarantined]
        shards = shard_points(remaining, self.workers)
        payloads = self._run_shards(shards, len(points),
                                    len(done_results)
                                    + len(done_quarantined))
        if self.sampler is not None:
            with self.sampler.host_phase("merge"):
                for payload in payloads:       # shard order
                    self.sampler.absorb_dict(payload.get("profile"))
        results = dict(done_results)
        quarantined = dict(done_quarantined)
        for payload in payloads:
            for record in payload["results"]:
                key = _record_key(record)
                # salvaged journals may carry stale keys from an older
                # run sharing the path; only enumerated points count.
                if key in order:
                    results[key] = record
            for record in payload["quarantined"]:
                key = _point_key(self._quarantine_point(record))
                if key in order:
                    quarantined[key] = record
        campaign = CampaignResult(daemon_name=type(self.daemon).__name__,
                                  client_name=self.client_name,
                                  encoding=self.encoding,
                                  fault_model=self.model.name,
                                  golden=golden)
        campaign.results = [
            result_from_dict(results[key])
            for key in sorted(results, key=order.__getitem__)]
        campaign.quarantined = [
            quarantined_from_dict(quarantined[key])
            for key in sorted(quarantined, key=order.__getitem__)]
        # Aggregate counters: the parent's golden run plus every
        # shard's campaign-wide counters (each already includes the
        # shard's own golden run).
        perf = PerfCounters()
        perf.absorb_dict(golden.perf)
        for payload in payloads:
            perf.absorb_dict(payload["timing"].get("perf"))
        wall_clock = time.monotonic() - started
        executed = sum(payload["timing"].get("executed", 0)
                       for payload in payloads)
        campaign.timing = campaign_timing(
            wall_clock=wall_clock,
            experiments=len(campaign.results)
            + len(campaign.quarantined),
            executed=executed,
            workers=max(1, len(shards)),
            shards=sorted((payload["timing"] for payload in payloads),
                          key=lambda timing: timing["shard"]),
            perf=perf.as_dict())
        self._merge_metrics(campaign, payloads, done_results,
                            done_quarantined, order, len(points),
                            golden, wall_clock, executed,
                            max(1, len(shards)))
        if self.telemetry is not None:
            self.telemetry.emit_outcomes(self.telemetry_campaign,
                                         campaign.results)
        self._emit("campaign-finished", counts=campaign.counts(),
                   quarantined=len(campaign.quarantined))
        return campaign, len(shards)

    def _merge_metrics(self, campaign, payloads, done_results,
                       done_quarantined, order, total_points, golden,
                       wall_clock, executed, workers):
        """Aggregate shard metric registries exactly (the
        ``absorb_dict`` pattern), then account for what only the
        parent saw: records it resumed from shard journals itself and
        its own golden run.  The deterministic section comes out
        identical to a serial run's; the parent's wall clock and
        worker count overwrite the shard-local volatile gauges."""
        from ..analysis.serialize import result_from_dict
        registry = declare_campaign_metrics(MetricsRegistry())
        for payload in payloads:                # shard order
            registry.absorb_dict(payload.get("metrics"))
        for key in sorted(done_results, key=order.__getitem__):
            record_result_metrics(
                registry, result_from_dict(done_results[key]))
        registry.counter("runtime.resumed", volatile=True).inc(
            len(done_results) + len(done_quarantined))
        registry.counter("quarantined").inc(len(done_quarantined))
        registry.gauge("points").set(total_points)
        registry.counter("runtime.golden_runs", volatile=True).inc()
        parent_perf = PerfCounters()
        parent_perf.absorb_dict(golden.perf)
        record_runtime_metrics(registry, wall_clock, executed,
                               perf=parent_perf.as_dict(),
                               workers=workers)
        if self._supervision is not None:
            record_supervision_metrics(registry,
                                       self._supervision.events)
        self.registry = registry
        campaign.metrics = registry.as_dict()

    # -- enumeration / resume ------------------------------------------

    def _enumerate(self):
        """The exact experiment list a serial run would use."""
        ranges = (self.ranges if self.ranges is not None
                  else self.daemon.auth_ranges())
        points = self.model.enumerate_points(self.daemon.module,
                                             ranges, self.kinds)
        if self.max_points is not None:
            points = points[:self.max_points]
        return points

    def _load_resume(self, order):
        """Already-completed records from every existing shard file
        (any previous worker count), restricted to known points."""
        if not (self.resume and self.journal_path is not None):
            return {}, {}
        paths = discover_shard_journals(self.journal_path)
        metas, results, quarantined = load_shard_journals(
            paths, strict=not self.journal_salvage)
        expected = self._meta()
        for meta in metas:
            validate_journal_meta(meta, expected, self.journal_path)
        results = {key: record for key, record in results.items()
                   if key in order}
        quarantined = {key: record
                       for key, record in quarantined.items()
                       if key in order}
        return results, quarantined

    def _meta(self):
        return {"daemon": type(self.daemon).__name__,
                "client": self.client_name, "encoding": self.encoding,
                "model": self.model.name, "budget": self.budget}

    @staticmethod
    def _quarantine_point(record):
        from ..analysis.serialize import point_from_dict
        return point_from_dict(record["point"])

    # -- process management --------------------------------------------

    def _context(self):
        # fork is both the fastest start and the most permissive about
        # what a spec may carry (locally defined daemon classes in
        # tests); fall back to the platform default elsewhere.
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _spec(self, shard, points, attempt=0):
        journal = None
        if self.journal_path is not None:
            journal = shard_journal_path(self.journal_path, shard)
        return {
            "shard": shard,
            "attempt": attempt,
            "points": points,
            "client_name": self.client_name,
            "client_factory": self.client_factory,
            "encoding": self.encoding,
            "kinds": self.kinds,
            "budget": self.budget,
            "journal": journal,
            # resume so an existing shard file is appended to (and its
            # meta validated) instead of truncated; a respawned worker
            # (attempt > 0) must always resume its own journal so
            # already-completed points are never re-run.
            "resume": self.resume or attempt > 0,
            "retries": self.retries,
            "watchdog_config": self.watchdog_config,
            "daemon_factory": self.daemon_factory,
            # model instances are tiny module-level objects, picklable
            # under any start method.
            "fault_model": self.model,
            "trace": (shard_trace_path(self.trace_path, shard)
                      if self.trace_path is not None else None),
            "forensics": self.forensics,
            "journal_fsync": self.journal_fsync,
            "journal_salvage": self.journal_salvage,
            "chaos": self.chaos,
            "full_restore": self.full_restore,
            "prune": self.prune,
            "audit_fraction": self.audit_fraction,
            "audit_seed": self.audit_seed,
            "sample_period": (self.sampler.period
                              if self.sampler is not None else None),
        }

    def _run_shards(self, shards, total_points, resumed_points):
        if not shards:
            return []
        supervisor = ShardSupervisor(self, shards,
                                     total_points=total_points,
                                     resumed_points=resumed_points,
                                     config=self.supervisor_config)
        report = supervisor.run()
        return report.payloads

    def _run_inline(self, shard, points, stop_check=None,
                    session_cache=None):
        """Last-resort degraded completion: run *points* in the parent
        process with its already-working daemon (no factory, no fork).
        Returns a worker-shaped ``done`` payload.  ``session_cache``
        (supervisor-owned) lets successive inline completions reuse
        breakpoint sessions for sites they share."""
        journal = None
        if self.journal_path is not None:
            journal = shard_journal_path(self.journal_path, shard)
        tracer = None
        if self.trace_path is not None:
            tracer = Tracer(sink=shard_trace_path(self.trace_path,
                                                  shard),
                            tid=shard + 1)
        from ..analysis.serialize import (quarantined_to_dict,
                                          result_to_dict)
        runner = CampaignRunner(
            self.daemon, self.client_name, self.client_factory,
            encoding=self.encoding, kinds=self.kinds,
            budget=self.budget,
            points=points, journal=journal, resume=self.resume,
            retries=self.retries,
            watchdog=Watchdog(self.watchdog_config),
            fault_model=self.model, trace=tracer,
            forensics=self.forensics, trace_root="shard",
            trace_attrs={"shard": shard, "inline": True},
            stop_check=stop_check,
            journal_fsync=self.journal_fsync, journal_salvage=True,
            full_restore=self.full_restore,
            prune=self.prune, audit_fraction=self.audit_fraction,
            audit_seed=self.audit_seed,
            session_cache=session_cache,
            # inline completions run in the parent, so they feed the
            # parent's sampler directly (no profile payload to merge).
            sampler=self.sampler)
        campaign = runner.run()
        timing = dict(campaign.timing or {})
        timing.update(shard=shard, setup=0.0, points=len(points),
                      inline=True)
        return {
            "results": [result_to_dict(result)
                        for result in campaign.results],
            "quarantined": [quarantined_to_dict(entry)
                            for entry in campaign.quarantined],
            "timing": timing,
            "metrics": campaign.metrics,
        }


def run_parallel_campaign(daemon, client_name, client_factory,
                          workers=2, **kwargs):
    """Functional facade over :class:`ParallelCampaignRunner`."""
    runner = ParallelCampaignRunner(daemon, client_name,
                                    client_factory, workers=workers,
                                    **kwargs)
    return runner.run()
