"""Fault-tolerant campaign execution engine (the NFTAPE control host).

The paper's methodology only works if thousands of injection
experiments run to completion and the tally can be trusted; NFTAPE
was built so that one faulted run could never corrupt the campaign.
This module gives our campaigns the same property, four capabilities
deep:

* **experiment isolation** -- each injection runs inside a guard that
  converts unexpected harness/emulator exceptions into a
  ``HARNESS_FAULT`` record (traceback attached) instead of aborting
  the campaign;
* **hang watchdog** -- a wall-clock + instruction-rate watchdog that
  separates "budget exhausted while making progress" (still FSV)
  from "stuck in a tight loop" (the new ``HANG`` outcome, with the
  loop's EIP range recorded);
* **append-only JSONL journal** -- every result is serialized as it
  completes; ``resume=True`` skips already-journaled points, so a
  killed campaign restarts exactly where it stopped and produces
  identical tallies;
* **quarantine-with-retry** -- a point whose outcome is not stable
  across ``retries`` re-executions (the emulator must be
  deterministic, so instability is a harness smoke signal) is
  re-queued with capped backoff and, if still unstable, quarantined
  and excluded from percentages with an explicit count.

:func:`repro.injection.campaign.run_campaign` is a thin wrapper over
:class:`CampaignRunner`, so every benchmark, example and CLI command
picks this up with no call-site churn.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field

from ..apps.common import CONNECTION_INSTRUCTION_BUDGET
from ..emu.machine_exceptions import CpuFault
from ..emu.perf import PerfCounters
from ..kernel import ServerHang
from ..obs.forensics import capture_forensics, make_forensic_ring
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry
from ..obs.sampler import as_sampler, Sampler
from ..obs.trace import as_tracer, NULL_TRACER
from .faultmodels import get_fault_model
from .golden import record_golden
from .injector import BreakpointSession, SessionCache
from .outcomes import (classify_completed_run, FAIL_SILENCE_VIOLATION,
                       HANG, HARNESS_FAULT, InjectionResult,
                       NOT_ACTIVATED, SECURITY_BREAKIN)
from .targets import DEFAULT_TARGET_KINDS

#: unstable points are re-queued at most this many times before being
#: quarantined (the "capped backoff" of the experiment list).
MAX_RETRY_ROUNDS = 3

#: cap on the number of confirmation re-executions per retry round
#: (the per-round count doubles each round up to this ceiling).
MAX_CONFIRMATIONS_PER_ROUND = 8

#: journal format version.  v2 journals predate the fault-model
#: registry (no ``model`` in meta, legacy point records); v5 aligns
#: the journal with the campaign-JSON schema and stamps the fault
#: model; v6 adds the optional per-result ``forensics`` snapshot
#: (:mod:`repro.obs.forensics`); v7 adds the optional per-result
#: ``class_id``/``representative`` pruning provenance
#: (:mod:`repro.injection.pruning`); v8 adds the optional ``unit``
#: marker line a fleet worker appends after finishing each work unit
#: (:mod:`repro.injection.scheduler`) -- pure progress metadata, never
#: part of any tally.  The reader accepts all of them (a missing model
#: is ``branch-bit``, missing optional fields are ``None``), so v2-v7
#: journals still load and resume -- including across
#: ``--prune``/``--no-prune`` boundaries, since pruned and exhaustive
#: journals record the same point keys and outcomes.
JOURNAL_SCHEMA = 8

_LOGGER = get_logger("campaign")


class JournalError(RuntimeError):
    """The journal file does not match the campaign being run."""


class CampaignInterrupted(RuntimeError):
    """A campaign stopped early at a clean checkpoint.

    Raised (never swallowed) when a graceful shutdown was requested --
    SIGTERM/SIGINT under ``graceful_signals``, an expired
    ``deadline``, or an external ``stop_check`` -- after the current
    experiment finished and the journal was flushed and closed.  The
    journal is guaranteed resumable: re-running the same campaign with
    ``resume=True`` completes it with tallies identical to an
    uninterrupted run.
    """

    def __init__(self, reason, journal=None, completed=0):
        self.reason = reason
        self.journal = str(journal) if journal is not None else None
        self.completed = completed
        super().__init__(
            "campaign checkpointed (%s) after %d experiment(s)%s"
            % (reason, completed,
               "" if journal is None
               else "; journal %s is resumable" % self.journal))

    def resume_hint(self):
        if self.journal is None:
            return ("no journal was configured; re-run with "
                    "--journal PATH to make checkpoints resumable")
        return ("re-run the same campaign with --resume to continue "
                "from %s" % self.journal)


@dataclass
class WatchdogConfig:
    """Tunables for the per-experiment watchdog.

    ``wall_clock_limit`` bounds one experiment's real time (an
    emulator that spins forever inside a single instruction handler
    would otherwise stall the campaign); ``probe_instructions`` and
    ``loop_eip_limit`` drive the post-budget tight-loop probe: after
    the instruction budget is exhausted the CPU is single-stepped a
    little further, and if it visits at most ``loop_eip_limit``
    distinct EIPs the run is a ``HANG``, not a plain FSV.
    """

    wall_clock_limit: float | None = 60.0
    slice_instructions: int = 65_536
    probe_instructions: int = 512
    loop_eip_limit: int = 32


@dataclass
class HangProbe:
    """Outcome of the post-budget instruction-rate probe."""

    tight_loop: bool = False
    distinct_eips: int = 0
    eip_low: int = 0
    eip_high: int = 0
    wall_clock: bool = False
    elapsed: float = 0.0


class Watchdog:
    """Budgeted executor: runs a process in slices, enforcing the
    wall clock, and probes ``limit`` endings for tight loops."""

    def __init__(self, config=None, tracer=None):
        self.config = config if config is not None else WatchdogConfig()
        #: span tracer (assigned by the runner); probes are counted so
        #: the metrics registry can report them.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.probes = 0
        #: EIPs the most recent probe visited; the pruning guard
        #: inspects this to notice a watch-window hit past the budget.
        self.probe_seen = frozenset()

    def __call__(self, process, budget):
        return self.run(process, budget)

    def run(self, process, budget):
        config = self.config
        started = time.monotonic()
        try:
            while True:
                ceiling = min(process.cpu.instret
                              + config.slice_instructions, budget)
                status = process.run(ceiling)
                if status.kind != "limit" or ceiling >= budget:
                    break
                if config.wall_clock_limit is not None:
                    elapsed = time.monotonic() - started
                    if elapsed > config.wall_clock_limit:
                        status.hang_probe = HangProbe(
                            tight_loop=True, wall_clock=True,
                            eip_low=process.cpu.eip,
                            eip_high=process.cpu.eip,
                            elapsed=elapsed)
                        return status
        except ServerHang as hang:
            status = process._status("limit", None)
            status.kind = "hang"
            status.fault_detail = str(hang)
            return status
        if status.kind == "limit":
            status.hang_probe = self._probe(process)
        return status

    def _probe(self, process):
        """Single-step past the budget and measure EIP diversity."""
        config = self.config
        cpu = process.cpu
        # The probe bypasses the run loops, so feed the forensic ring
        # here; a HANG snapshot then shows the loop body.
        ring = getattr(cpu, "forensic_ring", None)
        self.probes += 1
        seen = self.probe_seen = set()
        with self.tracer.span("watchdog-probe", cat="watchdog") as span:
            try:
                for __ in range(config.probe_instructions):
                    if cpu.halted:
                        return HangProbe()    # exited: was progressing
                    seen.add(cpu.eip)
                    if ring is not None:
                        ring.append(cpu.eip)
                    cpu.step()
            except (CpuFault, ServerHang):
                return HangProbe()            # faulted: was progressing
            except Exception:
                return HangProbe()            # inconclusive
            finally:
                span.set("distinct_eips", len(seen))
            seen.add(cpu.eip)
            tight = len(seen) <= config.loop_eip_limit
            return HangProbe(tight_loop=tight, distinct_eips=len(seen),
                             eip_low=min(seen), eip_high=max(seen))


def refine_limit_outcome(outcome, detail, status):
    """Upgrade an FSV "server looping" verdict to HANG when the
    watchdog probe saw a tight loop.  Returns
    ``(outcome, detail, hang_eip_range)``."""
    probe = getattr(status, "hang_probe", None)
    if (outcome != FAIL_SILENCE_VIOLATION or status.kind != "limit"
            or probe is None or not probe.tight_loop):
        return outcome, detail, None
    eip_range = (probe.eip_low, probe.eip_high)
    if probe.wall_clock:
        detail = ("wall-clock watchdog fired after %.1fs near "
                  "eip=0x%x" % (probe.elapsed, probe.eip_low))
    else:
        detail = ("tight loop in [0x%x, 0x%x] (%d distinct eips)"
                  % (probe.eip_low, probe.eip_high,
                     probe.distinct_eips))
    return HANG, detail, eip_range


def campaign_timing(wall_clock, experiments, executed, workers=1,
                    shards=None, perf=None):
    """Timing record attached to ``CampaignResult.timing``.

    ``experiments`` counts every record in the final tally (including
    ones reconstructed from a journal); ``executed`` only the
    experiments actually run this invocation, so ``experiments_per_sec``
    measures real throughput, not resume speed.  ``perf``, when given,
    is the campaign's aggregated execution-engine counter dict (see
    :class:`repro.emu.perf.PerfCounters`).
    """
    timing = {
        "wall_clock": wall_clock,
        "experiments": experiments,
        "executed": executed,
        "experiments_per_sec": (executed / wall_clock
                                if wall_clock > 0 else 0.0),
        "workers": workers,
    }
    if shards is not None:
        timing["shards"] = shards
    if perf is not None:
        timing["perf"] = perf
    return timing


# ----------------------------------------------------------------------
# Metrics plumbing (shared by the serial and parallel runners so the
# deterministic section is identical for every worker count)

def declare_campaign_metrics(registry):
    """Pre-declare the deterministic campaign instruments so every
    registry -- serial, shard, parallel parent -- carries the same
    key set even at zero counts."""
    registry.counter("experiments")
    registry.counter("activated")
    registry.counter("quarantined")
    registry.counter("retry_requeues")
    registry.histogram("crash_latency")
    # resumed counts depend on execution history (how often the
    # campaign was killed and restarted), not on the campaign spec, so
    # they live with the other run-shape measurements.
    registry.counter("runtime.resumed", volatile=True)
    return registry


def record_result_metrics(registry, result):
    """Fold one experiment record into the deterministic section."""
    registry.counter("experiments").inc()
    registry.counter("outcome.%s" % result.outcome).inc()
    if result.activated:
        registry.counter("activated").inc()
    if result.crash_latency is not None:
        registry.histogram("crash_latency").observe(
            result.crash_latency)


def record_runtime_metrics(registry, wall_clock, executed, perf=None,
                           workers=1):
    """Operational (volatile) measurements: wall clock, throughput and
    the execution engine's counters.  These legitimately differ
    between worker counts -- a parallel campaign performs one golden
    run per shard plus the parent's -- which is exactly why they live
    in the registry's volatile section."""
    registry.gauge("wall_clock_seconds", volatile=True).set(wall_clock)
    registry.gauge("experiments_per_sec", volatile=True).set(
        executed / wall_clock if wall_clock > 0 else 0.0)
    registry.gauge("workers", volatile=True).set(workers)
    for name, value in (perf or {}).items():
        registry.counter("engine.%s" % name, volatile=True).inc(value)


# ----------------------------------------------------------------------
# JSONL journal

def _point_key(point):
    """Journal/resume identity: every fault model's point class
    exposes a campaign-unique ``key``."""
    return point.key


def validate_journal_meta(meta, expected, path):
    """Reject a journal recorded for a different campaign.

    Journals written before the fault-model registry existed
    (schema <= 4) carry no ``model`` field; every pre-registry
    campaign was branch-bit by construction, so a missing model
    matches (and only matches) a branch-bit resume.
    """
    for field_name in ("daemon", "client", "encoding", "model"):
        recorded = meta.get(field_name)
        if field_name == "model" and recorded is None:
            recorded = "branch-bit"
        if recorded != expected[field_name]:
            raise JournalError(
                "journal %s was recorded for %s=%r, campaign wants "
                "%r" % (path, field_name, recorded,
                        expected[field_name]))


@dataclass
class JournalLoadReport:
    """What a salvage load (``strict=False``) had to tolerate."""

    path: str
    #: ``(line_number, snippet)`` for every quarantined corrupt line.
    corrupt_lines: list = field(default_factory=list)
    #: a half-written final line was dropped (SIGKILL mid-append).
    truncated_tail: bool = False
    records: int = 0
    #: ``unit`` marker records (schema v8; fleet work-unit progress),
    #: in file order.
    units: list = field(default_factory=list)

    @property
    def corrupt_count(self):
        return len(self.corrupt_lines)


class CampaignJournal:
    """Append-only JSONL record of a campaign in progress.

    Line types: one ``meta`` header, then one ``result`` line per
    completed experiment and one ``quarantine`` line per quarantined
    point.  A half-written final line (the signature of a SIGKILL
    mid-append) is tolerated on load.

    ``fsync_every`` is the opt-in durability policy: ``flush()`` alone
    survives a crashed *process* but loses buffered records on power
    loss or a SIGKILL of the host, so campaigns that must resume
    across those can fsync every record (``1``) or every N records
    (amortised).  ``write_hook`` is called with the record index
    before each append -- the chaos harness uses it to inject ENOSPC
    faults.
    """

    def __init__(self, path, fsync_every=None, write_hook=None):
        self.path = str(path)
        self.fsync_every = fsync_every
        self.write_hook = write_hook
        self._handle = None
        self._writes = 0
        self._unsynced = 0

    # -- writing -------------------------------------------------------

    def open(self, meta, append=False):
        if append:
            # A SIGKILL can leave a half-written final line; appending
            # straight after it would corrupt the next record, so drop
            # any unparseable tail first.
            self._truncate_partial_tail()
            self._handle = open(self.path, "a")
        else:
            self._handle = open(self.path, "w")
            self._write({"type": "meta", "schema": JOURNAL_SCHEMA,
                         **meta})

    def _truncate_partial_tail(self):
        try:
            with open(self.path) as handle:
                text = handle.read()
        except FileNotFoundError:
            return
        lines = text.splitlines(keepends=True)
        while lines:
            last = lines[-1]
            try:
                complete = last.endswith("\n") and (not last.strip()
                                                    or json.loads(last)
                                                    is not None)
            except json.JSONDecodeError:
                complete = False
            if complete:
                break
            lines.pop()
        cleaned = "".join(lines)
        if cleaned != text:
            with open(self.path, "w") as handle:
                handle.write(cleaned)

    def append_result(self, result):
        from ..analysis.serialize import result_to_dict
        self._write({"type": "result", "key": _point_key(result.point),
                     **result_to_dict(result)})

    def append_quarantine(self, point, location, outcomes, rounds):
        from ..analysis.serialize import point_to_dict
        self._write({"type": "quarantine", "key": _point_key(point),
                     "point": point_to_dict(point),
                     "location": location,
                     "outcomes": list(outcomes), "rounds": rounds})

    @staticmethod
    def mark_unit(path, unit_id, records, campaign=None, status=None,
                  total=None, ts=None):
        """Append a work-unit marker (schema v8) to an
        already-closed journal.  Markers are progress metadata for
        ``repro status`` and the service: loaders skip them, tallies
        never see them, and a marker-free journal resumes the same.

        ``status`` distinguishes ``started`` markers (a worker picked
        the unit up; ``repro status`` reports it as in-flight until a
        completion marker lands) from the default completion marker.
        ``total`` carries the campaign's total point count and ``ts``
        a wall-clock stamp, feeding the live ETA -- all advisory,
        never tallied."""
        marker = {"type": "unit", "unit": unit_id, "records": records}
        if campaign is not None:
            marker["campaign"] = campaign
        if status is not None:
            marker["status"] = status
        if total is not None:
            marker["total"] = total
        marker["ts"] = round(time.time() if ts is None else ts, 3)
        with open(path, "a") as handle:
            handle.write(json.dumps(marker) + "\n")
            handle.flush()

    def _write(self, record):
        if self.write_hook is not None:
            self.write_hook(self._writes)
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        self._writes += 1
        if self.fsync_every:
            self._unsynced += 1
            if self._unsynced >= self.fsync_every:
                os.fsync(self._handle.fileno())
                self._unsynced = 0

    def close(self):
        if self._handle is not None:
            if self.fsync_every and self._unsynced:
                os.fsync(self._handle.fileno())
                self._unsynced = 0
            self._handle.close()
            self._handle = None

    # -- reading -------------------------------------------------------

    @staticmethod
    def load(path, strict=True):
        """Parse a journal into ``(meta, results, quarantined)`` with
        the latter two keyed by point.  Tolerates a truncated final
        line; any other malformed line raises :class:`JournalError`
        when ``strict`` (the default), or is quarantined with a
        warning under ``strict=False`` (salvage mode) so an otherwise
        resumable journal is never stranded -- the points on dropped
        lines are simply re-run."""
        meta, results, quarantined, __ = \
            CampaignJournal.load_with_report(path, strict=strict)
        return meta, results, quarantined

    @staticmethod
    def load_with_report(path, strict=True):
        """:meth:`load` plus the :class:`JournalLoadReport` describing
        every line salvage had to drop (line numbers included)."""
        meta = None
        results = {}
        quarantined = {}
        report = JournalLoadReport(path=str(path))
        with open(path) as handle:
            lines = handle.read().splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                kind = (record.get("type")
                        if isinstance(record, dict) else None)
                if kind not in ("meta", "result", "quarantine",
                                "unit"):
                    raise JournalError("unknown journal record %r"
                                       % kind)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    report.truncated_tail = True
                    break                     # killed mid-append
                if strict:
                    raise JournalError("corrupt journal line %d in %s"
                                       % (index + 1, path))
                report.corrupt_lines.append((index + 1, line[:120]))
                continue
            except JournalError:
                if strict:
                    raise
                report.corrupt_lines.append((index + 1, line[:120]))
                continue
            if kind == "meta":
                meta = record
            elif kind == "result":
                results[record["key"]] = record
            elif kind == "unit":
                report.units.append(record)
                continue                      # metadata, not a record
            else:
                quarantined[record["key"]] = record
            report.records += 1
        if report.corrupt_lines:
            _LOGGER.warning(
                "journal %s: salvage quarantined %d corrupt line(s) "
                "(lines %s); their points will be re-run", path,
                report.corrupt_count,
                ", ".join(str(number)
                          for number, __ in report.corrupt_lines[:8]))
        return meta, results, quarantined, report


# ----------------------------------------------------------------------
# The runner

@dataclass
class _PendingPoint:
    point: object
    location: str
    round: int = 0
    observed: list = field(default_factory=list)


class CampaignRunner:
    """Executes one selective-exhaustive campaign fault-tolerantly.

    Construction mirrors :func:`repro.injection.campaign.run_campaign`
    (which is now a thin wrapper); :meth:`run` returns the populated
    :class:`~repro.injection.campaign.CampaignResult`.
    """

    def __init__(self, daemon, client_name, client_factory,
                 encoding=None, kinds=DEFAULT_TARGET_KINDS,
                 budget=CONNECTION_INSTRUCTION_BUDGET, progress=None,
                 max_points=None, ranges=None, journal=None,
                 resume=False, retries=0, watchdog=None, points=None,
                 fault_model=None, trace=None, metrics=None,
                 forensics=False, trace_root="campaign",
                 trace_attrs=None, deadline=None, stop_check=None,
                 graceful_signals=False, journal_fsync=None,
                 journal_salvage=False, chaos=None, full_restore=False,
                 session_cache=None, prune=False, audit_fraction=0.0,
                 audit_seed=0, golden=None, telemetry=None,
                 telemetry_campaign=None, sampler=None, profile=None):
        from .campaign import ENCODING_OLD
        self.daemon = daemon
        self.client_name = client_name
        self.client_factory = client_factory
        self.encoding = encoding if encoding is not None else ENCODING_OLD
        self.model = get_fault_model(fault_model)
        self.kinds = kinds
        self.budget = budget
        self.progress = progress
        self.max_points = max_points
        self.ranges = ranges
        self.journal_path = journal
        self.resume = resume
        self.retries = retries
        self.watchdog = (watchdog if isinstance(watchdog, Watchdog)
                         else Watchdog(watchdog))
        #: explicit experiment list (one shard of a parallel campaign);
        #: ``None`` enumerates the daemon's auth sections as usual.
        self.points = points
        #: observability: span tracer (``trace`` is a sink path or a
        #: :class:`~repro.obs.trace.Tracer`; the root span is named
        #: ``campaign`` serially, ``shard`` in a worker), metrics sink
        #: path, and the forensics switch (ring + snapshot capture on
        #: SD/HANG/HF; off by default so the fast path is untouched).
        self.tracer = as_tracer(trace)
        self.metrics_path = metrics
        self.forensics = forensics
        self.trace_root = trace_root
        self.trace_attrs = dict(trace_attrs or {})
        #: graceful-shutdown machinery: ``deadline`` bounds the whole
        #: campaign's wall clock, ``stop_check`` is an external "please
        #: checkpoint" poll (returns a falsy value or a reason string),
        #: and ``graceful_signals`` converts SIGTERM/SIGINT into a
        #: clean checkpoint between experiments.  All three raise
        #: :class:`CampaignInterrupted` after closing the journal.
        self.deadline = deadline
        self.stop_check = stop_check
        self.graceful_signals = graceful_signals
        self._stop_signal = None
        self._deadline_at = None
        #: durability / chaos hooks (see :class:`CampaignJournal` and
        #: :mod:`repro.injection.chaos`).
        self.journal_fsync = journal_fsync
        self.journal_salvage = journal_salvage
        self.chaos = chaos
        self.registry = declare_campaign_metrics(MetricsRegistry())
        self.watchdog.tracer = self.tracer
        #: snapshot-restore escape hatch: rewrite every region instead
        #: of only dirtied pages (cross-checked in tests).
        self.full_restore = full_restore
        # Session cache: points arrive in address order, so a private
        # cache keeps one live session (plus the unreachable set, so a
        # disagreeing address is probed once, not once per bit).  A
        # caller-supplied cache is shared across campaigns -- e.g. a
        # fault-model sweep reusing one site snapshot per model.
        self.session_cache = (session_cache if session_cache is not None
                              else SessionCache(capacity=1))
        self._session = None
        self._session_address = None
        #: equivalence-class pruning (:mod:`repro.injection.pruning`):
        #: run one representative per class and fan the outcome out to
        #: every member.  ``audit_fraction`` exhaustively re-runs a
        #: seeded sample of multi-member classes and hard-fails on any
        #: divergent member.
        self.prune = prune
        self.audit_fraction = audit_fraction
        self.audit_seed = audit_seed
        #: pre-recorded golden run for this (daemon, client, budget)
        #: cell.  A warm fleet worker serving its second campaign for
        #: a cell passes the cached one in, skipping the reference
        #: execution entirely; ``None`` records a fresh golden run.
        #: The golden run is deterministic per cell, so outcomes are
        #: byte-identical either way.
        self.golden = golden
        self._active_guard = None
        #: live telemetry plane (:mod:`repro.obs.events`): campaign
        #: milestones and outcome deltas are emitted into ``telemetry``
        #: (an :class:`~repro.obs.events.EventBus`) tagged with
        #: ``telemetry_campaign``.  ``None`` -- the default -- emits
        #: nothing; every emit site is a single ``is not None`` test,
        #: and no event carries data the deterministic metrics core
        #: depends on.
        self.telemetry = telemetry
        self.telemetry_campaign = telemetry_campaign
        self._telemetry_reported = 0
        #: deterministic sampling profiler (:mod:`repro.obs.sampler`):
        #: ``sampler`` is a :class:`~repro.obs.sampler.Sampler` (or a
        #: period int), ``profile`` the JSON sink :meth:`run` saves.
        #: A sink with no sampler gets a default-period sampler.
        self.profile_path = profile
        if sampler is None and profile is not None:
            sampler = Sampler()
        self.sampler = as_sampler(sampler)

    # -- public entry point --------------------------------------------

    def run(self):
        restore = self._install_signal_handlers()
        try:
            with self.tracer.span(self.trace_root,
                                  **self.trace_attrs) as span:
                campaign = self._run_traced(span)
            return campaign
        except CampaignInterrupted as interrupted:
            if self.telemetry is not None:
                self.telemetry.emit(
                    "checkpoint", campaign=self.telemetry_campaign,
                    reason=interrupted.reason,
                    completed=interrupted.completed)
            raise
        finally:
            # flush observability sinks even on a checkpoint exit, so
            # an interrupted campaign still leaves a loadable trace
            # and (partial) metrics dump behind.
            restore()
            self.tracer.close()
            if self.metrics_path is not None:
                self.registry.save(self.metrics_path)
            if (self.profile_path is not None
                    and self.sampler is not None):
                self.sampler.save(self.profile_path)

    def _install_signal_handlers(self):
        """Install graceful SIGTERM/SIGINT handlers (flag, not raise:
        the current experiment finishes and the journal closes before
        :class:`CampaignInterrupted` surfaces).  Returns the restore
        callback; a no-op off the main thread or when
        ``graceful_signals`` is off."""
        if (not self.graceful_signals
                or threading.current_thread()
                is not threading.main_thread()):
            return lambda: None

        def request_stop(signum, frame):
            self._stop_signal = signal.Signals(signum).name

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, request_stop)

        def restore():
            for signum, handler in previous.items():
                signal.signal(signum, handler)

        return restore

    def _interrupt_reason(self):
        """Why the campaign should checkpoint now, or ``None``."""
        if self._stop_signal is not None:
            return self._stop_signal
        if self.stop_check is not None:
            reason = self.stop_check()
            if reason:
                return (reason if isinstance(reason, str)
                        else "stop-requested")
        if (self._deadline_at is not None
                and time.monotonic() > self._deadline_at):
            return "deadline"
        return None

    def _run_traced(self, root_span):
        from .campaign import CampaignResult, QuarantinedPoint
        started = time.monotonic()
        if self.deadline is not None:
            self._deadline_at = started + self.deadline
        self._perf = PerfCounters()
        if self.golden is not None:
            # Warm path: the cell's golden run (and its perf share)
            # was recorded by an earlier campaign; only count the
            # reuse so warm-vs-cold is measurable.
            golden = self.golden
            self.registry.counter("runtime.golden_reused",
                                  volatile=True).inc()
        else:
            with self.tracer.span("golden-run") as span:
                golden = self._record_golden()
                span.set("coverage_eips", len(golden.coverage))
            self._perf.absorb_dict(golden.perf)
            self.registry.counter("runtime.golden_runs",
                                  volatile=True).inc()
        self._golden = golden
        if self.telemetry is not None:
            self.telemetry.emit("golden",
                                campaign=self.telemetry_campaign,
                                reused=self.golden is not None)
        if self.points is not None:
            points = list(self.points)
        else:
            if self.ranges is not None:
                ranges = self.ranges
            else:
                ranges = self.daemon.auth_ranges()
            points = self.model.enumerate_points(self.daemon.module,
                                                 ranges, self.kinds)
        if self.max_points is not None:
            points = points[:self.max_points]
        _LOGGER.debug("%s %s (%s, %s): %d experiment(s)",
                      type(self.daemon).__name__, self.client_name,
                      self.encoding, self.model.name, len(points))
        if self.telemetry is not None:
            self.telemetry.emit("campaign-started",
                                campaign=self.telemetry_campaign,
                                points=len(points))
        campaign = CampaignResult(daemon_name=type(self.daemon).__name__,
                                  client_name=self.client_name,
                                  encoding=self.encoding,
                                  fault_model=self.model.name,
                                  golden=golden)
        journaled, quarantined_records = self._load_journal(campaign)
        journal = None
        if self.journal_path is not None:
            journal = CampaignJournal(
                self.journal_path, fsync_every=self.journal_fsync,
                write_hook=(self.chaos.on_journal_write
                            if self.chaos is not None else None))
            journal.open(self._meta(), append=bool(journaled
                                                   or quarantined_records))
        self._resumed = 0
        self._fanned = 0
        self._extra_runs = 0
        self._chaos_tick = 0
        try:
            self._run_points(campaign, points, journaled,
                             quarantined_records, journal)
        finally:
            if journal is not None:
                journal.close()
        for record in quarantined_records.values():
            campaign.quarantined.append(QuarantinedPoint(
                point=self._point_from_record(record["point"]),
                location=record["location"],
                outcomes=tuple(record["outcomes"]),
                rounds=record["rounds"]))
        self._retire_session()
        wall_clock = time.monotonic() - started
        # fanned-out class members were journaled without running;
        # audit re-executions ran without journaling a record of their
        # own -- correct the throughput accounting for both.
        executed = (len(campaign.results) + len(campaign.quarantined)
                    - self._resumed - self._fanned + self._extra_runs)
        campaign.timing = campaign_timing(
            wall_clock=wall_clock,
            experiments=len(campaign.results)
            + len(campaign.quarantined),
            executed=executed,
            perf=self._perf.as_dict())
        self.registry.counter("runtime.resumed",
                              volatile=True).inc(self._resumed)
        self.registry.counter("quarantined").inc(
            len(campaign.quarantined))
        self.registry.gauge("points").set(len(points))
        self.registry.counter("runtime.watchdog_probes",
                              volatile=True).inc(self.watchdog.probes)
        dropped = getattr(self.tracer, "spans_dropped", 0)
        if dropped:
            self.registry.counter("trace.spans_dropped",
                                  volatile=True).inc(dropped)
        record_runtime_metrics(self.registry, wall_clock, executed,
                               perf=self._perf.as_dict())
        campaign.metrics = self.registry.as_dict()
        if self.telemetry is not None:
            self.telemetry.emit("campaign-finished",
                                campaign=self.telemetry_campaign,
                                counts=campaign.counts(),
                                quarantined=len(campaign.quarantined))
        root_span.set("experiments", len(campaign.results))
        _LOGGER.debug("%s %s done: %d experiment(s) in %.1fs",
                      type(self.daemon).__name__, self.client_name,
                      len(campaign.results), wall_clock)
        return campaign

    def _record_golden(self):
        """The cold-path reference run, with its host wall clock
        attributed to the profiler's ``golden-run`` phase when one is
        attached."""
        if self.sampler is None:
            return record_golden(self.daemon, self.client_factory,
                                 self.budget)
        with self.sampler.host_phase("golden-run"):
            return record_golden(self.daemon, self.client_factory,
                                 self.budget)

    # -- journal plumbing ----------------------------------------------

    def _meta(self):
        return {"daemon": type(self.daemon).__name__,
                "client": self.client_name, "encoding": self.encoding,
                "model": self.model.name, "budget": self.budget}

    def _load_journal(self, campaign):
        """Returns ``(results_by_key, quarantine_by_key)`` from an
        existing journal when resuming (else empty dicts)."""
        if not (self.resume and self.journal_path is not None):
            return {}, {}
        try:
            meta, results, quarantined = CampaignJournal.load(
                self.journal_path, strict=not self.journal_salvage)
        except FileNotFoundError:
            return {}, {}
        if meta is not None:
            validate_journal_meta(meta, self._meta(), self.journal_path)
        return results, quarantined

    @staticmethod
    def _point_from_record(record):
        from ..analysis.serialize import point_from_dict
        return point_from_dict(record)

    # -- main loop -----------------------------------------------------

    def _run_points(self, campaign, points, journaled,
                    quarantined_records, journal):
        if self.prune:
            return self._run_points_pruned(campaign, points, journaled,
                                           quarantined_records, journal)
        from ..analysis.serialize import result_from_dict
        total = len(points)
        queue = deque()
        for point in points:
            key = _point_key(point)
            if key in quarantined_records:
                self._resumed += 1
                continue                      # stays quarantined
            if key in journaled:
                resumed = result_from_dict(journaled[key])
                campaign.results.append(resumed)
                record_result_metrics(self.registry, resumed)
                self._resumed += 1
                self._report(campaign, quarantined_records, total)
                continue
            queue.append(_PendingPoint(
                point=point, location=self.model.location(point)))
        self._drain_queue(campaign, queue, quarantined_records,
                          journal, total)
        if self._resumed:
            # A resume with a mid-journal gap (e.g. a salvaged corrupt
            # line) re-runs the gap *after* the journaled results;
            # restore enumeration order so result lists are identical
            # to an uninterrupted run, like the parallel merge.
            self._restore_order(campaign, points)

    def _drain_queue(self, campaign, queue, quarantined_records,
                     journal, total):
        """Run pending points one at a time with retry/quarantine
        semantics (the exhaustive inner loop; pruning reuses it for
        singleton classes and declassified members)."""
        while queue:
            reason = self._interrupt_reason()
            if reason is not None:
                # Checkpoint: the journal holds every completed
                # experiment (the finally in _run_traced closes it),
                # so a resume finishes the campaign identically.
                raise CampaignInterrupted(
                    reason, journal=self.journal_path,
                    completed=len(campaign.results)
                    + len(quarantined_records))
            pending = queue.popleft()
            result = self._guarded_experiment(pending)
            if result is None:
                # Unstable across re-executions: back off on the
                # experiment list, or quarantine once the cap is hit.
                if pending.round + 1 < MAX_RETRY_ROUNDS:
                    pending.round += 1
                    self.registry.counter("retry_requeues").inc()
                    queue.append(pending)
                    continue
                self._quarantine(campaign, pending,
                                 quarantined_records, journal)
            else:
                campaign.results.append(result)
                record_result_metrics(self.registry, result)
                if journal is not None:
                    journal.append_result(result)
            self._report(campaign, quarantined_records, total)
            self._chaos_tick += 1
            if self.chaos is not None:
                # After journaling: a chaos kill here leaves the
                # journal at a deterministic resume boundary.
                self.chaos.on_point(self._chaos_tick)

    def _restore_order(self, campaign, points):
        order = {_point_key(point): index
                 for index, point in enumerate(points)}
        campaign.results.sort(
            key=lambda result: order[_point_key(result.point)])

    # -- pruned main loop ----------------------------------------------

    def _run_points_pruned(self, campaign, points, journaled,
                           quarantined_records, journal):
        """Class-at-a-time execution (:mod:`repro.injection.pruning`).

        Sites are sealed lazily against their live snapshot, each
        class runs one representative (guarded when the equivalence
        argument needs the re-fetch watch) and fans the outcome out to
        its members.  Results are re-sorted to enumeration order at
        the end, so the result list is byte-identical to an exhaustive
        campaign's.
        """
        total = len(points)
        ranges = (self.ranges if self.ranges is not None
                  else self.daemon.auth_ranges())
        plan = self.model.classify_points(
            self.daemon.module, points, self.encoding,
            self._golden.coverage, ranges)
        self.registry.counter("pruning.sites",
                              volatile=True).inc(len(plan.sites))
        for point in points:
            if _point_key(point) in quarantined_records:
                self._resumed += 1            # stays quarantined
        for site in plan.sites:
            missing = [key for key in site.keys()
                       if key not in journaled
                       and key not in quarantined_records]
            if missing and not site.sealed:
                session = self._session_for(site.address)
                site.seal(session.process.cpu
                          if session is not None else None)
            if not site.sealed:
                # fully journaled and never sealed: replay the records
                # without paying for a session or classification.
                self._replay_site(campaign, site, journaled, total,
                                  quarantined_records)
                continue
            self.registry.counter("pruning.classes",
                                  volatile=True).inc(len(site.classes))
            for cls in site.classes:
                reason = self._interrupt_reason()
                if reason is not None:
                    raise CampaignInterrupted(
                        reason, journal=self.journal_path,
                        completed=len(campaign.results)
                        + len(quarantined_records))
                self._run_class(campaign, site, cls, journaled,
                                quarantined_records, journal, total)
        self._restore_order(campaign, points)

    def _replay_site(self, campaign, site, journaled, total,
                     quarantined_records):
        for key in site.keys():
            record = journaled.get(key)
            if record is None:
                continue                      # quarantined
            resumed = self._result_from_record(record)
            campaign.results.append(resumed)
            record_result_metrics(self.registry, resumed)
            self._resumed += 1
        self._report(campaign, quarantined_records, total)

    @staticmethod
    def _result_from_record(record):
        from ..analysis.serialize import result_from_dict
        return result_from_dict(record)

    def _run_class(self, campaign, site, cls, journaled,
                   quarantined_records, journal, total):
        from .pruning import GuardedWatchdog, PRUNE_SOLO
        # Replay journaled members first; the final enumeration-order
        # sort interleaves them back among the fresh records.
        missing = []
        for point in cls.points:
            key = _point_key(point)
            if key in quarantined_records:
                continue
            record = journaled.get(key)
            if record is not None:
                resumed = self._result_from_record(record)
                campaign.results.append(resumed)
                record_result_metrics(self.registry, resumed)
                self._resumed += 1
            else:
                missing.append(point)
        if not missing:
            self._report(campaign, quarantined_records, total)
            return
        if cls.size == 1 or cls.kind == PRUNE_SOLO:
            # Singletons take the exhaustive path, retries included.
            self._drain_queue(
                campaign,
                deque(_PendingPoint(point=point,
                                    location=self.model.location(point))
                      for point in missing),
                quarantined_records, journal, total)
            return
        guard = None
        if cls.needs_guard:
            guard = GuardedWatchdog(self.watchdog.config, cls.watch,
                                    tracer=self.tracer, site=cls.site,
                                    dispositions=cls.dispositions)
        representative = cls.representative
        pending = _PendingPoint(
            point=representative,
            location=self.model.location(representative))
        self._active_guard = guard
        try:
            result = self._guarded_experiment(pending)
        finally:
            self._active_guard = None
        self.registry.counter("pruning.rep_runs", volatile=True).inc()
        if guard is not None:
            self.watchdog.probes += guard.probes
        if result is None:
            # The representative was unstable across confirmations --
            # the determinism premise of fanning out is gone, so run
            # every member individually (retry/quarantine as usual).
            self.registry.counter("pruning.declassified",
                                  volatile=True).inc()
            self._drain_queue(
                campaign,
                deque(_PendingPoint(point=point,
                                    location=self.model.location(point))
                      for point in missing),
                quarantined_records, journal, total)
            return
        if guard is not None and guard.tripped:
            # The suffix re-fetched the corrupted span: cross-image
            # equivalence is void.  Dissolve into same-bytes subgroups
            # (unconditionally sound); the representative's completed
            # run still stands for its own image.
            self.registry.counter("pruning.guard_trips",
                                  volatile=True).inc()
            self._declassify(campaign, cls, result, missing, journaled,
                             quarantined_records, journal, total)
            return
        self._fan_out(campaign, cls, result, missing, journal, total,
                      quarantined_records)

    def _declassify(self, campaign, cls, rep_result, missing,
                    journaled, quarantined_records, journal, total):
        from .pruning import split_by_image
        missing_keys = {_point_key(point) for point in missing}
        for subgroup in split_by_image(self.model, self.daemon.module,
                                       cls, self.encoding):
            sub_missing = [point for point in subgroup.points
                           if _point_key(point) in missing_keys]
            if not sub_missing:
                continue
            if subgroup.representative is cls.representative:
                # already executed (the tripped run itself)
                self._fan_out(campaign, subgroup, rep_result,
                              sub_missing, journal, total,
                              quarantined_records)
                continue
            sub_pending = _PendingPoint(
                point=subgroup.representative,
                location=self.model.location(subgroup.representative))
            result = self._guarded_experiment(sub_pending)
            self.registry.counter("pruning.rep_runs",
                                  volatile=True).inc()
            if result is None:
                self.registry.counter("pruning.declassified",
                                      volatile=True).inc()
                self._drain_queue(
                    campaign,
                    deque(_PendingPoint(
                        point=point,
                        location=self.model.location(point))
                        for point in sub_missing),
                    quarantined_records, journal, total)
                continue
            self._fan_out(campaign, subgroup, result, sub_missing,
                          journal, total, quarantined_records)

    def _fan_out(self, campaign, cls, rep_result, missing, journal,
                 total, quarantined_records):
        """Journal the representative's outcome for every missing
        member (class provenance stamped on multi-member classes) and,
        when the class is in the audit sample, exhaustively re-run the
        other members and hard-fail on divergence."""
        from .pruning import (PruningAuditError, class_is_audited,
                              fan_out_result, result_signature)
        stamp = cls.size > 1
        if stamp:
            rep_result.class_id = cls.class_id
            rep_result.representative = _point_key(cls.representative)
        rep_key = _point_key(cls.representative)
        emitted = []
        for point in missing:
            if _point_key(point) == rep_key:
                emitted.append(rep_result)
                continue
            member = fan_out_result(rep_result, point,
                                    self.model.location(point))
            emitted.append(member)
            self._fanned += 1
            self.registry.counter("pruning.fanned_out",
                                  volatile=True).inc()
        for result in emitted:
            campaign.results.append(result)
            record_result_metrics(self.registry, result)
            if journal is not None:
                journal.append_result(result)
        self._report(campaign, quarantined_records, total)
        self._chaos_tick += 1
        if self.chaos is not None:
            self.chaos.on_point(self._chaos_tick)
        if not (stamp and class_is_audited(cls.class_id,
                                           self.audit_fraction,
                                           self.audit_seed)):
            return
        self.registry.counter("pruning.audited_classes",
                              volatile=True).inc()
        expected = result_signature(rep_result)
        for point in cls.points:
            if _point_key(point) == rep_key:
                continue
            confirm = self._execute(point, self.model.location(point))
            self._extra_runs += 1
            self.registry.counter("pruning.audit_runs",
                                  volatile=True).inc()
            got = result_signature(confirm)
            if got != expected:
                raise PruningAuditError(
                    "class %s: member %s diverged from representative "
                    "%s\n  expected %r\n  got      %r"
                    % (cls.class_id, _point_key(point), rep_key,
                       expected, got))

    def _report(self, campaign, quarantined_records, total):
        if self.progress is not None:
            done = len(campaign.results) + len(quarantined_records)
            self.progress(done, total)
        if self.telemetry is not None:
            fresh = campaign.results[self._telemetry_reported:]
            if fresh:
                self.telemetry.emit_outcomes(self.telemetry_campaign,
                                             fresh)
                self._telemetry_reported = len(campaign.results)

    def _quarantine(self, campaign, pending, quarantined_records,
                    journal):
        from ..analysis.serialize import point_to_dict
        record = {"point": point_to_dict(pending.point),
                  "location": pending.location,
                  "outcomes": list(pending.observed),
                  "rounds": pending.round + 1}
        quarantined_records[_point_key(pending.point)] = record
        if journal is not None:
            journal.append_quarantine(pending.point, pending.location,
                                      pending.observed,
                                      pending.round + 1)

    # -- one experiment, isolated --------------------------------------

    def _guarded_experiment(self, pending):
        """Run one point (plus confirmation re-executions).  Returns
        the accepted :class:`InjectionResult`, or ``None`` when the
        outcome was unstable and the point should be retried."""
        try:
            result = self._execute(pending.point, pending.location)
        except Exception:
            return self._harness_fault(pending)
        if self.retries <= 0 or not result.activated:
            return result
        confirmations = min(self.retries * (2 ** pending.round),
                            MAX_CONFIRMATIONS_PER_ROUND)
        signature = (result.outcome, result.exit_kind,
                     result.crash_latency)
        pending.observed.append(result.outcome)
        for __ in range(confirmations):
            try:
                confirm = self._execute(pending.point, pending.location)
            except Exception:
                return self._harness_fault(pending)
            if (confirm.outcome, confirm.exit_kind,
                    confirm.crash_latency) != signature:
                pending.observed.append(confirm.outcome)
                return None
        return result

    def _retire_session(self):
        """Release the live session, folding the share of its CPU perf
        counters accumulated under this runner into the campaign
        aggregate.  The session itself stays in the cache for reuse by
        a later campaign (another fault model or encoding)."""
        if self._session is not None:
            self._perf.absorb_dict(self._session.take_perf_delta())
        self._session = None
        self._session_address = None

    def _harness_fault(self, pending):
        """Convert an escaped exception into a HARNESS_FAULT record;
        the cached session may be corrupted, so drop it from the cache
        too (its counters are plain integers and stay trustworthy, so
        they are kept).  Forensic state is snapshotted *before* the
        session goes."""
        forensics = None
        if self._session is not None:
            if self.forensics:
                try:
                    forensics = capture_forensics(
                        self._session.process.cpu)
                except Exception:
                    forensics = None          # never mask the fault
            self.session_cache.discard(SessionCache.key(
                self.daemon, self.client_name, self.budget,
                self._session_address))
        self._retire_session()
        detail = traceback.format_exc(limit=8).strip()
        return InjectionResult(point=pending.point,
                               location=pending.location,
                               outcome=HARNESS_FAULT,
                               detail=detail[-1000:],
                               forensics=forensics)

    def _execute(self, point, location):
        if self.sampler is not None:
            with self.sampler.host_phase("experiment"):
                return self._execute_traced(point, location)
        return self._execute_traced(point, location)

    def _execute_traced(self, point, location):
        with self.tracer.span("experiment", point=point.key,
                              location=location) as span:
            result = self._execute_inner(point, location)
            span.set("outcome", result.outcome)
            if result.crash_latency is not None:
                span.set("crash_latency", result.crash_latency)
            if result.hang_eip_range is not None:
                span.set("hang_eip_range",
                         ["0x%x" % eip
                          for eip in result.hang_eip_range])
            return result

    def _execute_inner(self, point, location):
        golden = self._golden
        if point.instruction_address not in golden.coverage:
            return InjectionResult(point=point, location=location,
                                   outcome=NOT_ACTIVATED)
        session = self._session_for(point.instruction_address)
        if session is None:
            # Defensive: coverage said reachable, the breakpoint run
            # disagreed.  Record the disagreement so it is visible in
            # the journal rather than silently folded into NA.
            return InjectionResult(
                point=point, location=location, outcome=NOT_ACTIVATED,
                detail="coverage/breakpoint disagreement at 0x%x"
                       % point.instruction_address)
        ring = session.process.cpu.forensic_ring
        if ring is not None:
            ring.clear()
        # A guarded representative run (pruning) swaps in the re-fetch
        # watchdog for exactly this experiment; every other path runs
        # under the campaign watchdog.
        session.run_fn = (self._active_guard
                          if self._active_guard is not None
                          else self.watchdog)
        with self.tracer.span("injection", cat="experiment") as span:
            status, kernel, client = self.model.apply(
                session, point, self.encoding, self.daemon.module)
            span.set("instret", status.instret)
        outcome, detail = classify_completed_run(
            golden, client, kernel.channel.normalized_transcript(),
            status)
        outcome, detail, eip_range = refine_limit_outcome(
            outcome, detail, status)
        latency = None
        if status.kind == "crash":
            latency = status.instret - session.activation_instret
        forensics = None
        if self.forensics and (status.kind == "crash"
                               or outcome == HANG):
            forensics = capture_forensics(session.process.cpu)
        return InjectionResult(
            point=point, location=location, outcome=outcome,
            activated=True,
            activation_instret=session.activation_instret,
            exit_kind=status.kind, exit_code=status.exit_code,
            signal=status.signal, crash_latency=latency,
            broke_in=client.broke_in(),
            crashed_after_breakin=(outcome == SECURITY_BREAKIN
                                   and status.kind == "crash"),
            detail=detail, hang_eip_range=eip_range,
            forensics=forensics)

    def _session_for(self, address):
        """Breakpoint session for *address*, cached across the bits of
        one instruction (and, through a shared :class:`SessionCache`,
        across fault models and encodings); ``None`` when the
        breakpoint is unreachable (cached too, so the disagreement is
        probed only once)."""
        if self._session_address == address:
            return self._session
        key = SessionCache.key(self.daemon, self.client_name,
                               self.budget, address)
        if self.session_cache.unreachable_arrival(key) is not None:
            return None
        self._retire_session()
        session = self.session_cache.lookup(key)
        if session is not None:
            self.registry.counter("runtime.sessions_reused",
                                  volatile=True).inc()
        else:
            with self.tracer.span("client-session", cat="experiment",
                                  address="0x%x" % address) as span:
                session = BreakpointSession(self.daemon,
                                            self.client_factory,
                                            address, self.budget,
                                            run_fn=self.watchdog)
                span.set("reached", session.reached)
            self.registry.counter("runtime.sessions",
                                  volatile=True).inc()
            if not session.reached:
                self.session_cache.mark_unreachable(key, session.arrival)
                self.registry.counter("runtime.sessions_unreachable",
                                      volatile=True).inc()
                self._perf.absorb_dict(session.take_perf_delta())
                return None
            self.session_cache.store(key, session)
        # (Re)bind per-runner policy: a cached session may have been
        # created by a campaign with different settings.
        session.run_fn = self.watchdog
        session.full_restore = self.full_restore
        session.process.cpu.forensic_ring = (make_forensic_ring()
                                             if self.forensics else None)
        session.process.cpu.sampler = self.sampler
        session.sampler = self.sampler
        self._session = session
        self._session_address = address
        return session

def run_resilient_campaign(daemon, client_name, client_factory,
                           **kwargs):
    """Functional facade over :class:`CampaignRunner`."""
    runner = CampaignRunner(daemon, client_name, client_factory,
                            **kwargs)
    return runner.run()
