"""Forkable machine snapshots: immutable image, mutable delta.

A campaign replays the post-activation suffix of one connection
thousands of times from the same instruction.  The state at that
instruction splits into an *immutable* part -- the program image and
the kernel/client state as of the breakpoint, captured once -- and a
*mutable* part: whatever the suffix run touched.  The suffix of an
authentication exchange dirties a handful of stack and data pages out
of a couple-hundred-KiB address space, so restoring by writing back
only pages dirtied since the capture (tracked by
:mod:`repro.emu.memory` at :data:`PAGE_SIZE` granularity) is an
order of magnitude cheaper than rewriting every region, and the
kernel ``clone()`` protocol replaces the old per-experiment
``copy.deepcopy``.

The snapshot itself is never mutated after capture: region contents
are ``bytes``, CPU state is tuples, and the kernel held inside is the
pristine breakpoint-time kernel from which every experiment receives a
fresh ``clone()``.  That makes one snapshot safely shareable between
sibling sessions (:meth:`BreakpointSession.fork`) and across fault
models targeting the same instruction.
"""

from __future__ import annotations

from ..emu import Memory
from ..emu.memory import PAGE_SHIFT, PAGE_SIZE


class MachineSnapshot:
    """Complete machine state at one injection site.

    Immutable after :meth:`capture`; restores copy *out of* the
    snapshot into a live process.
    """

    __slots__ = ("region_blobs", "region_views", "region_layout", "regs",
                 "eip", "eflags", "segments", "instret", "kernel")

    @classmethod
    def capture(cls, process, kernel):
        """Freeze *process* + *kernel* and reset dirty tracking so the
        restore delta is measured from this point."""
        snapshot = cls()
        memory = process.memory
        snapshot.region_blobs = [bytes(region.data)
                                 for region in memory.regions]
        # Prebuilt views: page-sized slices of a memoryview are
        # copy-free, and building the view once here keeps it off the
        # per-experiment restore path.
        snapshot.region_views = [memoryview(blob)
                                 for blob in snapshot.region_blobs]
        snapshot.region_layout = [(region.name, region.start,
                                   region.writable)
                                  for region in memory.regions]
        cpu = process.cpu
        snapshot.regs = tuple(cpu.regs)
        snapshot.eip = cpu.eip
        snapshot.eflags = cpu.eflags  # materializes any lazy flags
        snapshot.segments = tuple(cpu.segments)
        snapshot.instret = cpu.instret
        snapshot.kernel = kernel
        memory.clear_dirty()
        return snapshot

    # -- restore -------------------------------------------------------

    def restore_memory(self, memory, full=False):
        """Rewrite pages dirtied since capture (or everything when
        *full*); returns the number of pages written back."""
        pages = 0
        if full:
            for region, blob in zip(memory.regions, self.region_blobs):
                region.data[:] = blob
                pages += region.page_count()
                region.dirty.clear()
            return pages
        for region, view in zip(memory.regions, self.region_views):
            dirty = region.dirty
            if not dirty:
                continue
            data = region.data
            for page in dirty:
                low = page << PAGE_SHIFT
                data[low:low + PAGE_SIZE] = view[low:low + PAGE_SIZE]
            pages += len(dirty)
            dirty.clear()
        return pages

    def restore_cpu(self, cpu):
        cpu.regs = list(self.regs)
        cpu.eip = self.eip
        cpu.eflags = self.eflags
        cpu.segments = list(self.segments)
        cpu.instret = self.instret
        cpu.halted = False
        if hasattr(cpu, "exit_code"):
            del cpu.exit_code

    def make_kernel(self):
        """A fresh kernel+client for one experiment; the pristine
        kernel inside the snapshot is never handed out directly."""
        return self.kernel.clone()

    # -- fork ----------------------------------------------------------

    def materialize_memory(self):
        """Build a brand-new :class:`Memory` at the snapshot state --
        no bytearray is shared with any live process."""
        memory = Memory()
        for (name, start, writable), blob in zip(self.region_layout,
                                                 self.region_blobs):
            memory.map_region(name, start, blob, writable=writable)
        return memory
