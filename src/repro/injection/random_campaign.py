"""The conclusions' massive random-injection testbed.

Section 7: "a testbed to run massive random error injection
experiments targeting FTP servers while the servers are under constant
attack has been set up.  The preliminary results show that about one
out of 3,000 single-bit errors causes security violation."

Here the whole *text segment* (not just the auth functions) is the
fault universe: each trial flips one uniformly random bit of one
uniformly random text byte while a wrong-password client attacks, and
the BRK rate over trials estimates the paper's 1-in-3000 figure.
Faults are injected at load time (a latent memory error present before
the connection), so no breakpoint is involved and un-activated faults
count toward the denominator exactly as in the paper's testbed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..apps.common import CONNECTION_INSTRUCTION_BUDGET
from ..emu import Process
from ..kernel import ServerHang
from .golden import record_golden
from .outcomes import (classify_completed_run, NOT_ACTIVATED,
                       SECURITY_BREAKIN)


@dataclass
class RandomCampaignResult:
    trials: int
    outcomes: dict = field(default_factory=dict)
    breakins: list = field(default_factory=list)   # (address, bit)
    seed: int = 0

    @property
    def breakin_count(self):
        return self.outcomes.get(SECURITY_BREAKIN, 0)

    @property
    def breakin_rate(self):
        return self.breakin_count / self.trials if self.trials else 0.0

    @property
    def one_in(self):
        """The paper's 'one out of N' phrasing."""
        if not self.breakin_count:
            return float("inf")
        return self.trials / self.breakin_count


def run_random_campaign(daemon, client_factory, trials=3000, seed=2001,
                        budget=CONNECTION_INSTRUCTION_BUDGET,
                        rng=None):
    """Estimate the random single-bit-error break-in rate.

    The fault sequence is drawn from an explicit
    :class:`random.Random` -- pass ``rng`` to share one generator
    across retried/resumed partial campaigns; by default a fresh
    ``random.Random(seed)`` makes the whole run a pure function of
    ``seed``, so repeated runs are reproducible bit for bit.
    """
    rng = rng if rng is not None else random.Random(seed)
    golden = record_golden(daemon, client_factory, budget)
    text = daemon.module.text
    text_base = daemon.module.text_base
    outcomes = {}
    breakins = []
    for __ in range(trials):
        offset = rng.randrange(len(text))
        bit = rng.randrange(8)
        address = text_base + offset
        if address not in golden.coverage_bytes:
            # Never fetched: behaviour provably identical (the flip
            # stays latent for this connection).
            outcomes[NOT_ACTIVATED] = outcomes.get(NOT_ACTIVATED, 0) + 1
            continue
        client = client_factory()
        kernel = daemon.make_kernel(client)
        process = Process(daemon.module, kernel)
        process.flip_bit(address, bit)
        try:
            status = process.run(budget)
        except ServerHang:
            status = process._status("limit", None)
            status.kind = "hang"
        outcome, __detail = classify_completed_run(
            golden, client, kernel.channel.normalized_transcript(),
            status)
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        if outcome == SECURITY_BREAKIN:
            breakins.append((address, bit))
    return RandomCampaignResult(trials=trials, outcomes=outcomes,
                                breakins=breakins, seed=seed)
