"""Equivalence-class pruning: inject one representative per class.

A selective-exhaustive campaign runs every (instruction x bit) point,
but most corrupted images are provably redundant: they never activate,
they fault before retiring a single instruction, or they decode to an
operation whose one-step effect on the live machine state is identical
to another member's.  This module partitions the enumerated points of
one campaign cell into *equivalence classes* before any experiment
runs; the runner executes one representative per class and fans its
outcome out to every member, with the class provenance journaled
(schema v7 ``class_id``/``representative``) so tallies, tables and
resume behaviour are byte-identical to the exhaustive sweep.

Class taxonomy (per site ``S`` of length ``L``)
-----------------------------------------------

``dead``
    ``S`` is outside the golden run's coverage: the fault is never
    activated, every point at the site is ``NA``.  Model-independent.
``bytes``
    Members whose corruption writes *byte-identical* text (under the
    Section 6.2 re-encoding, distinct masks can collide after the
    map->flip->map-back round trip).  Identical deterministic inputs
    give identical runs; unconditionally sound, and the granularity a
    tripped class dissolves to (see *guard* below).
``fault``
    The corrupted stream raises before anything retires (undecodable
    first instruction, a decoded-but-unimplemented mnemonic) or
    faults immediately after the first retire (a resolved-taken branch
    into unmapped memory or onto undecodable text).  The crash arrives
    at a deterministic ``instret`` with a member-independent
    signal/vector, so the serialized records are identical.
``succ``
    Members whose corrupted first instruction is proven equivalent on
    the *live snapshot state*: a branch (``jcc``/``jmp rel``) whose
    resolved successor -- taken target, or fall-through under the
    materialized lazy EFLAGS -- is the same address, a ``nop``, or a
    flag-only ALU form (``cmp``/``test`` without memory operands) at a
    site where a bounded forward scan proves the flags are fully
    overwritten before being read.  After the first step every member
    is in the same machine state at the same EIP, so the suffix --
    which is a deterministic function of that state -- is identical.

Everything else stays in a singleton (or same-``bytes``) class and
runs exactly as an exhaustive campaign would.

The runtime guard
-----------------

The ``succ`` argument has one hole: the suffix must never *re-fetch*
the corrupted bytes (members differ only there).  Guarded
representatives therefore run under :class:`GuardedWatchdog`, which
drives the CPU with :meth:`~repro.emu.process.Process.run_watched`
over the site's watch window (every address from which a fetch could
overlap the corrupted span).  If the run enters the window the class
is *declassified*: it dissolves into its same-``bytes`` subgroups,
each of which runs its own representative -- the trip costs speed,
never soundness.  Data reads of text bytes are not watched (the
in-repo assembler never emits code that reads its own text as data);
``--audit-fraction`` is the empirical backstop for that documented
limitation: a seeded, partition-independent sample of classes is
exhaustively re-run and any member whose outcome diverges from its
representative hard-fails the campaign with
:class:`PruningAuditError`.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field, replace

from ..emu.machine_exceptions import CpuFault
from ..kernel import ServerHang
from ..x86 import (DecodeOutOfBytesError, InvalidOpcodeError,
                   KIND_COND_BRANCH, KIND_JUMP, decode,
                   disassemble_range)
from ..x86.flags import condition_met
from .runner import HangProbe, Watchdog

#: class kinds (the ``class_id`` prefix, see module docstring).
PRUNE_DEAD = "dead"
PRUNE_BYTES = "bytes"
PRUNE_FAULT = "fault"
PRUNE_SUCC = "succ"
#: singleton classes: one point, no journal stamping, no guard.
PRUNE_SOLO = "solo"

#: longest encodable IA-32 instruction: a fetch starting up to this
#: many bytes minus one before a corrupted span can still read it.
_MAX_INSN = 15

#: forward-scan bound for the static flags-liveness analysis.
_FLAGS_SCAN_LIMIT = 16

#: mnemonics that write every flag the conditional logic reads
#: (OF/SF/ZF/AF/PF/CF) -- reaching one of these before any reader
#: proves the incoming flags dead.
_FLAG_KILLERS = frozenset(
    name + suffix
    for name in ("add", "sub", "and", "or", "xor", "cmp", "test", "neg")
    for suffix in ("", "b"))

#: mnemonics that neither read nor write flags; the scan may step over
#: them.  Anything not listed here or in :data:`_FLAG_KILLERS` ends
#: the scan conservatively (partial writers like ``inc``/shifts,
#: readers like ``adc``/``setcc``, and every control transfer).
_FLAG_NEUTRAL = frozenset((
    "mov", "movb", "lea", "push", "pop", "nop", "movzx", "movsx",
    "xchg", "xchgb"))

#: flag-only writers eligible for the flags-dead ``succ`` merge:
#: they write no register or memory destination.
_FLAG_ONLY = frozenset(("cmp", "cmpb", "test", "testb"))


class PruningAuditError(RuntimeError):
    """An audited class member's outcome diverged from its
    representative -- the equivalence claim was wrong for this cell,
    so the campaign must not trust the pruned tally."""


def class_is_audited(class_id, fraction, seed=0):
    """Deterministic, partition-independent audit selection.

    Hashing the (seed, class_id) pair rather than counting classes
    makes the choice identical for serial and sharded campaigns and
    stable under resume.
    """
    if fraction <= 0:
        return False
    if fraction >= 1:
        return True
    digest = zlib.crc32(("%d:%s" % (seed, class_id)).encode("ascii"))
    return digest / 2.0 ** 32 < fraction


def result_signature(result):
    """The outcome fields an audit compares (everything the tables and
    serialized records are built from, minus the point identity)."""
    return (result.outcome, result.activated,
            result.activation_instret, result.exit_kind,
            result.exit_code, result.signal, result.crash_latency,
            result.broke_in, result.crashed_after_breakin,
            result.detail, result.hang_eip_range)


def fan_out_result(rep_result, point, location):
    """A member's journal record: the representative's outcome with
    the member's own point identity and Table 3 location.  Forensics
    snapshots stay on the representative (they describe the one run
    that actually executed)."""
    return replace(rep_result, point=point, location=location,
                   forensics=None)


# ----------------------------------------------------------------------
# The re-fetch guard

class GuardedWatchdog(Watchdog):
    """A :class:`~repro.injection.runner.Watchdog` that drives the
    suffix with :meth:`~repro.emu.process.Process.run_watched` over
    the site's watch window.

    The corrupted site itself is inside the window, so the first
    instruction is stepped manually; after that the run proceeds in
    ordinary watchdog slices until it either finishes or lands on a
    watched address.

    Landing back on the site itself (``eip == site``) -- a loop
    re-executing the corrupted instruction, by far the most common
    re-fetch -- is re-resolved dynamically: if every member's
    instruction provably goes to the same successor under the *live*
    flags (``dispositions``), the runs are still in lock-step, so the
    guard steps the representative's instruction and keeps going.
    This extends the seal-time first-step equivalence to every
    dynamic execution of the site.  Any other hit -- or an execution
    where the members disagree -- latches ``tripped``; the run still
    completes (unguarded), so the representative's own result stays
    valid, but the class must be declassified to its same-bytes
    subgroups before fanning out.  A post-budget probe that visits the
    window latches it too.
    """

    def __init__(self, config, watch, tracer=None, site=None,
                 dispositions=None):
        super().__init__(config, tracer)
        self.watch = frozenset(watch)
        self.site = site
        self.dispositions = tuple(dispositions or ())
        self.rechecks = 0
        self.tripped = False

    def _members_agree(self, cpu):
        """Do all member instructions resolve to one successor under
        the live flags?  Sound because the members' machines are in
        identical states here (the guard ensured lock-step so far, and
        any flags a ``flagsonly`` member wrote differently were killed
        before the first control transfer could lead back to the
        site), so the representative's flags are every member's
        flags."""
        successor = None
        for disposition in self.dispositions:
            tag = disposition[0]
            if tag == "branch":
                condition, target, fall = disposition[1:4]
                taken = (condition is None
                         or condition_met(condition, cpu.eflags))
                nxt = target if taken else fall
            elif tag in ("nop", "flagsonly"):
                nxt = disposition[1]
            else:
                return False
            if successor is None:
                successor = nxt
            elif nxt != successor:
                return False
        return True

    def run(self, process, budget):
        config = self.config
        started = time.monotonic()
        cpu = process.cpu
        try:
            if not cpu.halted and cpu.instret < budget:
                cpu.step()                # the corrupted instruction
            while True:
                if cpu.halted:
                    status = process._status(
                        "exit", getattr(cpu, "exit_code", 0))
                    break
                ceiling = min(cpu.instret + config.slice_instructions,
                              budget)
                if self.tripped:
                    status = process.run(ceiling)
                else:
                    status = process.run_watched(self.watch, ceiling)
                    if status.kind == "watched":
                        if (cpu.eip == self.site
                                and cpu.instret < budget
                                and self.dispositions
                                and self._members_agree(cpu)):
                            self.rechecks += 1
                            cpu.step()    # still in lock-step
                        else:
                            self.tripped = True
                        continue
                if status.kind != "limit" or ceiling >= budget:
                    break
                if config.wall_clock_limit is not None:
                    elapsed = time.monotonic() - started
                    if elapsed > config.wall_clock_limit:
                        status.hang_probe = HangProbe(
                            tight_loop=True, wall_clock=True,
                            eip_low=cpu.eip, eip_high=cpu.eip,
                            elapsed=elapsed)
                        return status
        except CpuFault as fault:
            # only the manual steps (first instruction, recheck
            # re-steps) can raise here; the run loops convert their
            # own faults to a crash status.  A recheck-step fault is
            # member-independent: the members were in lock-step.
            return process._status("crash", fault)
        except ServerHang as hang:
            status = process._status("limit", None)
            status.kind = "hang"
            status.fault_detail = str(hang)
            return status
        if status.kind == "limit":
            status.hang_probe = self._probe(process)
            if not self.watch.isdisjoint(self.probe_seen):
                self.tripped = True
        return status


# ----------------------------------------------------------------------
# Plan data model

@dataclass
class PointClass:
    """One equivalence class, sealed and ready to run."""

    class_id: str
    kind: str
    points: list                   # members in enumeration order
    #: ``succ`` classes spanning more than one corrupted image need
    #: the re-fetch guard; everything else is sound without it.
    needs_guard: bool = False
    #: fetch addresses that can read bytes *this class's* members
    #: disagree on -- the guard set.  Per class, not per site: the
    #: span only covers this class's own images, so an unrelated long
    #: replacement at the same site does not poison the window.
    watch: frozenset = frozenset()
    #: guard recheck inputs: the site address and the member images'
    #: static dispositions, so a loop re-executing the site can be
    #: re-resolved against the live flags instead of tripping.
    site: int = 0
    dispositions: tuple = ()

    @property
    def representative(self):
        return self.points[0]

    @property
    def size(self):
        return len(self.points)


@dataclass
class _ByteGroup:
    """All points at one site whose fault writes the same bytes."""

    replacement: bytes
    members: list = field(default_factory=list)  # (index, point)
    disposition: tuple = ("opaque", "")


@dataclass
class SitePlan:
    """Every enumerated point at one instruction site.

    Text sites are classified statically into :class:`_ByteGroup`
    dispositions at plan-build time and *sealed* into
    :class:`PointClass` lists lazily, at the first experiment for the
    site, because branch resolution and the unimplemented-mnemonic
    check need the live snapshot (materialized EFLAGS, dispatch
    table).  The snapshot state at a site is deterministic, so sealing
    is too -- serial and sharded campaigns derive identical classes.
    """

    address: int
    members: list                  # (enumeration index, point)
    dead: bool = False
    groups: list = field(default_factory=list)
    #: fetch addresses *before* the site that can reach into it (the
    #: image-independent part of every class's guard set; each class
    #: adds its own ``[address, address + span)``).
    watch: frozenset = frozenset()
    #: [address, span_end) is the widest corrupted byte span.
    span_end: int = 0
    flags_dead: bool = False
    module: object = None
    classes: list | None = None

    @property
    def sealed(self):
        return self.classes is not None

    def points(self):
        return [point for __, point in self.members]

    def keys(self):
        return [point.key for __, point in self.members]

    # -- sealing -------------------------------------------------------

    def seal_dead(self):
        self.classes = [PointClass(
            class_id="%s:%x" % (PRUNE_DEAD, self.address),
            kind=PRUNE_DEAD, points=self.points())]

    def seal_solo(self):
        """Singletons only -- the exhaustive behaviour, class-shaped."""
        self.classes = [
            PointClass(class_id="%s:%s" % (PRUNE_SOLO, point.key),
                       kind=PRUNE_SOLO, points=[point])
            for __, point in self.members]

    def seal(self, cpu):
        """Resolve the static dispositions against the live snapshot
        (``cpu`` is the session CPU stopped at the site; ``None`` when
        the breakpoint run disagreed with coverage, in which case only
        the unconditional same-bytes merge applies)."""
        if self.classes is not None:
            return
        eflags = cpu.eflags if cpu is not None else 0
        dispatch = cpu._dispatch if cpu is not None else None
        mapped = (_mapped_predicate(cpu.memory)
                  if cpu is not None else (lambda address: True))
        buckets = {}
        for group in self.groups:
            key = self._resolve(group, eflags, dispatch, mapped)
            buckets.setdefault(key, []).append(group)
        classes = []
        for key, groups in buckets.items():
            kind = key[0]
            if kind == PRUNE_SUCC:
                # The class's guard window only spans *its own*
                # images.  A merged representative whose very first
                # successor sits inside that window would re-fetch
                # bytes the members disagree on immediately, so the
                # merge would trip on step one -- dissolve it to its
                # same-bytes groups up front instead.
                span = max(len(group.replacement) for group in groups)
                watch = self.watch.union(
                    range(self.address, self.address + span))
                if len(groups) > 1 and key[1] in watch:
                    classes.extend(self._bytes_class(group)
                                   for group in groups)
                    continue
                classes.append(PointClass(
                    class_id="%s:%x:%x" % (PRUNE_SUCC, self.address,
                                           key[1]),
                    kind=PRUNE_SUCC, points=self._points_of(groups),
                    needs_guard=len(groups) > 1, watch=watch,
                    site=self.address,
                    dispositions=tuple(group.disposition
                                       for group in groups)))
            elif kind == PRUNE_FAULT:
                classes.append(PointClass(
                    class_id="%s:%x:%s" % (PRUNE_FAULT, self.address,
                                           key[1]),
                    kind=PRUNE_FAULT, points=self._points_of(groups)))
            else:
                # bytes keys embed the replacement, so each bucket
                # holds exactly one group.
                classes.extend(self._bytes_class(group)
                               for group in groups)
        classes.sort(key=lambda cls: cls.points[0].sort_key)
        self.classes = classes

    @staticmethod
    def _points_of(groups):
        members = sorted((pair for group in groups
                          for pair in group.members),
                         key=lambda pair: pair[0])
        return [point for __, point in members]

    def _bytes_class(self, group):
        return PointClass(
            class_id="%s:%x:%08x" % (PRUNE_BYTES, self.address,
                                     zlib.crc32(group.replacement)),
            kind=PRUNE_BYTES, points=self._points_of([group]))

    def _resolve(self, group, eflags, dispatch, mapped):
        """Bucket key for one byte group under the live state."""
        bytes_key = (PRUNE_BYTES, group.replacement)
        disposition = group.disposition
        tag = disposition[0]
        if dispatch is None:
            return bytes_key
        if tag == "fault":
            return (PRUNE_FAULT, disposition[1])
        if tag == "opaque":
            mnemonic = disposition[1]
            if mnemonic and mnemonic not in dispatch:
                return (PRUNE_FAULT, "unimplemented")
            return bytes_key
        if tag == "branch":
            condition, target, fall, mnemonic = disposition[1:]
            if mnemonic not in dispatch:
                return (PRUNE_FAULT, "unimplemented")
            taken = (condition is None
                     or condition_met(condition, eflags))
            successor = target if taken else fall
            if taken and not mapped(successor):
                return (PRUNE_FAULT, "wild-unmapped")
            if taken and self._lands_undecodable(successor):
                return (PRUNE_FAULT, "wild-undecodable")
            return (PRUNE_SUCC, successor)
        if tag in ("nop", "flagsonly"):
            fall, mnemonic = disposition[1:]
            if mnemonic not in dispatch:
                return (PRUNE_FAULT, "unimplemented")
            if tag == "flagsonly" and not self.flags_dead:
                return bytes_key
            return (PRUNE_SUCC, fall)
        return bytes_key

    def _lands_undecodable(self, target):
        """A taken branch onto *original* text bytes that do not
        decode faults on the very next fetch -- provable statically
        when the decode window cannot overlap the corrupted span."""
        module = self.module
        if module is None:
            return False
        text_end = module.text_base + len(module.text)
        if not module.text_base <= target < text_end:
            return False
        if (target + _MAX_INSN > self.address
                and target < self.span_end):
            return False                  # window touches dirty bytes
        offset = target - module.text_base
        try:
            decode(bytes(module.text[offset:offset + _MAX_INSN]),
                   target)
        except InvalidOpcodeError:
            return True
        except DecodeOutOfBytesError:
            return False    # CPU maps this to #PF, not #UD; keep solo
        return False


def _mapped_predicate(memory):
    spans = [(region.start, region.end) for region in memory.regions]

    def mapped(address):
        for start, end in spans:
            if start <= address < end:
                return True
        return False

    return mapped


@dataclass
class PruningPlan:
    """Per-site classification of one campaign cell's points."""

    model_name: str
    sites: list                    # SitePlan, enumeration order

    def class_count(self):
        """Classes across sealed sites (unsealed sites count their
        byte-group upper bound)."""
        count = 0
        for site in self.sites:
            count += (len(site.classes) if site.sealed
                      else len(site.groups))
        return count


def split_by_image(model, module, cls, encoding):
    """Dissolve a tripped class into its same-bytes subgroups.

    Declassification's fallback granularity: members writing
    byte-identical corrupted images form a deterministic-run class
    with no equivalence argument needed.  Subgroups preserve
    enumeration order, so the tripped representative leads the first
    one and its completed run is reused.
    """
    address = cls.points[0].instruction_address
    groups = {}
    order = []
    for point in cls.points:
        image = bytes(model.corrupted_bytes(module, point, encoding))
        members = groups.get(image)
        if members is None:
            members = groups[image] = []
            order.append(image)
        members.append(point)
    return [PointClass(class_id="%s:%x:%08x"
                       % (PRUNE_BYTES, address, zlib.crc32(image)),
                       kind=PRUNE_BYTES, points=groups[image])
            for image in order]


# ----------------------------------------------------------------------
# Classifiers (FaultModel.classify_points implementations)

def _group_by_site(points):
    sites = {}
    order = []
    for index, point in enumerate(points):
        address = point.instruction_address
        plan = sites.get(address)
        if plan is None:
            plan = sites[address] = SitePlan(address=address,
                                             members=[])
            order.append(plan)
        plan.members.append((index, point))
    return order


def default_classify(model, module, points, encoding, coverage,
                     ranges=None):
    """Model-agnostic classification: merge never-activated sites
    (coverage is the same for every model) and keep every covered
    point a singleton.  Data-error models use this as-is -- their
    corruption is transient state, not a text image, so no static
    byte-level argument applies.
    """
    sites = _group_by_site(points)
    for site in sites:
        if site.address in coverage:
            site.seal_solo()
        else:
            site.dead = True
            site.seal_dead()
    return PruningPlan(model_name=model.name, sites=sites)


def classify_text_points(model, module, points, encoding, coverage,
                         ranges=None):
    """Full static classifier for text-corrupting models.

    Covered sites are grouped by corrupted image
    (``model.corrupted_bytes``), each group is classified by decoding
    the corrupted stream in place, and the per-site watch window and
    flags-liveness facts are precomputed.  Branch resolution against
    the live EFLAGS happens later, in :meth:`SitePlan.seal`.
    """
    sites = _group_by_site(points)
    boundary_cache = {}
    for site in sites:
        if site.address not in coverage:
            site.dead = True
            site.seal_dead()
            continue
        site.module = module
        address = site.address
        length = site.members[0][1].instruction_length
        span_end = address + length
        groups = {}
        for index, point in site.members:
            image = bytes(model.corrupted_bytes(module, point,
                                                encoding))
            group = groups.get(image)
            if group is None:
                group = groups[image] = _ByteGroup(replacement=image)
            group.members.append((index, point))
            span_end = max(span_end, address + len(image))
        site.span_end = span_end
        site.groups = list(groups.values())
        for group in site.groups:
            group.disposition = _classify_replacement(
                module, address, group.replacement)
        site.watch = _site_watch(module, ranges, address,
                                 boundary_cache)
        site.flags_dead = _flags_dead_after(module, address + length,
                                            ranges)
    return PruningPlan(model_name=model.name, sites=sites)


def _corrupted_stream(module, address, image):
    """The first fetch window of the corrupted program at *address*:
    the injected image, then the original text that follows it."""
    offset = address - module.text_base + len(image)
    tail = bytes(module.text[offset:offset + _MAX_INSN])
    return (bytes(image) + tail)[:_MAX_INSN]


def _classify_replacement(module, address, image):
    """Static disposition of one corrupted image (see
    :meth:`SitePlan._resolve` for the dynamic half)."""
    stream = _corrupted_stream(module, address, image)
    try:
        instruction = decode(stream, address)
    except (InvalidOpcodeError, DecodeOutOfBytesError) as exc:
        # fetch_decode maps these to #UD / #PF respectively -- both
        # fault before anything retires, so the exception type alone
        # fixes the run's signal, latency and record bytes.
        return ("fault", "undecodable-%s" % type(exc).__name__)
    mnemonic = instruction.mnemonic
    fall = address + len(instruction.raw)
    operands = instruction.operands
    # A relative branch resolvable from EFLAGS alone: ``jmp rel``
    # (condition None, unconditionally taken) or a ``jcc`` (condition
    # code set).  ``loop``/``loope``/``loopne``/``jecxz`` also decode
    # as KIND_COND_BRANCH but with ``condition is None`` -- they read
    # (and the loop forms *write*) ECX, so they are not one-step
    # equivalent to anything and fall through to ``opaque``.
    is_plain_jump = (instruction.kind == KIND_JUMP
                     and instruction.condition is None)
    is_jcc = (instruction.kind == KIND_COND_BRANCH
              and instruction.condition is not None)
    if ((is_plain_jump or is_jcc) and operands
            and getattr(operands[0], "kind", "") == "rel"):
        return ("branch", instruction.condition, operands[0].target,
                fall, mnemonic)
    if mnemonic == "nop":
        return ("nop", fall, mnemonic)
    if mnemonic in _FLAG_ONLY and not any(
            getattr(operand, "kind", "") == "mem"
            for operand in operands):
        return ("flagsonly", fall, mnemonic)
    return ("opaque", mnemonic)


def _site_watch(module, ranges, address, boundary_cache):
    """Pre-site fetch addresses that can reach into the site.

    A fetch starting in ``[address - 14, address)`` can overlap
    corrupted bytes at ``address``; each class extends this base with
    its own ``[address, address + span)``.  Addresses before the site
    that host an *original* instruction boundary ending at or before
    the site are excluded -- a fetch there decodes untouched bytes and
    provably ends before the span -- so the golden prefix code just
    before the site does not trip the guard.  Unknown addresses stay
    watched (conservative).
    """
    watch = set(range(address - (_MAX_INSN - 1), address))
    for start, end in ranges or ():
        if not start <= address < end:
            continue
        key = (start, address)
        boundaries = boundary_cache.get(key)
        if boundaries is None:
            boundaries = set()
            for instruction in disassemble_range(
                    module.text, module.text_base, start, address):
                if (instruction.mnemonic != "(bad)"
                        and instruction.address + len(instruction.raw)
                        <= address):
                    boundaries.add(instruction.address)
            boundary_cache[key] = boundaries
        watch.difference_update(boundaries)
        break
    return frozenset(watch)


def _flags_dead_after(module, address, ranges):
    """Bounded forward scan: are the arithmetic flags provably
    overwritten before any instruction can read them, starting at
    *address*?  Stops (conservatively ``False``) at any control
    transfer, partial flag writer, unknown mnemonic, or range end.
    """
    end = None
    for start, stop in ranges or ():
        if start <= address < stop:
            end = stop
            break
    if end is None:
        return False
    instructions = disassemble_range(module.text, module.text_base,
                                     address, end)
    for instruction in instructions[:_FLAGS_SCAN_LIMIT]:
        mnemonic = instruction.mnemonic
        if instruction.condition is not None:
            return False               # jcc/setcc/cmovcc read flags
        if mnemonic in _FLAG_KILLERS:
            return True
        if mnemonic not in _FLAG_NEUTRAL:
            return False
    return False
