"""Enumeration of injection targets: every bit of every branch
instruction inside the selected code regions.

This is the paper's *selective exhaustive injection*: selective in
targeting only the authentication functions, exhaustive in covering
every bit of every branch instruction there (e.g. ``je $PC+5`` is two
bytes, so it contributes sixteen single-bit experiments).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..x86 import KIND_CALL, KIND_COND_BRANCH, KIND_JUMP, disassemble_range

#: which instruction kinds count as "branch instructions".  The paper
#: targets conditional branches plus the unconditional jumps its
#: Table 3 files under MISC; with jcc+jmp the branch fraction of our
#: auth sections (~10 % of bytes) matches the paper's reported ~13 %.
#: Calls can be added for the ablation benchmark.
DEFAULT_TARGET_KINDS = frozenset({KIND_COND_BRANCH, KIND_JUMP})

#: extended target set including calls (ablation: the paper's SD rate
#: is sensitive to whether 4-byte call displacements are in scope).
TARGET_KINDS_WITH_CALLS = frozenset({KIND_COND_BRANCH, KIND_JUMP,
                                     KIND_CALL})


@dataclass(frozen=True)
class InjectionPoint:
    """One single-bit experiment: flip *bit* of the byte at
    ``instruction_address + byte_offset`` when the breakpoint at
    ``instruction_address`` is reached."""

    instruction_address: int
    byte_offset: int
    bit: int
    instruction_length: int
    mnemonic: str
    opcode: int
    kind: str

    @property
    def flip_address(self):
        return self.instruction_address + self.byte_offset

    @property
    def key(self):
        """Journal/resume identity (unique within one campaign)."""
        return "%x:%d:%d" % (self.instruction_address,
                             self.byte_offset, self.bit)

    @property
    def sort_key(self):
        """Total order matching enumeration order."""
        return (self.instruction_address, self.byte_offset, self.bit)


def branch_instructions(module, ranges, kinds=DEFAULT_TARGET_KINDS):
    """All branch instructions of the module within *ranges*."""
    found = []
    for start, end in ranges:
        for instruction in disassemble_range(module.text, module.text_base,
                                             start, end):
            if instruction.kind in kinds:
                found.append(instruction)
    return found


def enumerate_points(module, ranges, kinds=DEFAULT_TARGET_KINDS):
    """All (instruction, byte, bit) single-bit experiments in order."""
    points = []
    for instruction in branch_instructions(module, ranges, kinds):
        for byte_offset in range(instruction.length):
            for bit in range(8):
                points.append(InjectionPoint(
                    instruction_address=instruction.address,
                    byte_offset=byte_offset, bit=bit,
                    instruction_length=instruction.length,
                    mnemonic=instruction.mnemonic,
                    opcode=instruction.opcode,
                    kind=instruction.kind))
    return points


def describe_targets(module, ranges, kinds=DEFAULT_TARGET_KINDS):
    """Summary used by reports: counts of instructions, bytes, bits."""
    instructions = branch_instructions(module, ranges, kinds)
    total_bytes = sum(i.length for i in instructions)
    region_bytes = sum(end - start for start, end in ranges)
    return {
        "instructions": len(instructions),
        "bytes": total_bytes,
        "bits": total_bytes * 8,
        "region_bytes": region_bytes,
        "branch_fraction": (total_bytes / region_bytes
                            if region_bytes else 0.0),
    }
