"""Debugger-style single-bit injector (the NFTAPE role).

For each experiment the injector loads the server, sets a breakpoint
at the target instruction, lets a scripted client connect, and -- if
the breakpoint fires -- flips one bit of the instruction and resumes.

Because execution before the breakpoint is identical for every bit of
a given instruction, the injector snapshots the whole machine (memory,
CPU, kernel, client) at the breakpoint once and replays only the
post-activation suffix for each of the instruction's bits.  Outcomes
are exactly those of a naive per-bit rerun; campaigns just finish
about an order of magnitude sooner.
"""

from __future__ import annotations

import copy

from ..apps.common import CONNECTION_INSTRUCTION_BUDGET
from ..emu import Process
from ..kernel import ServerHang


def plain_run(process, budget):
    """Run *process* to completion under *budget*, mapping a kernel
    :class:`ServerHang` onto a ``hang`` exit status."""
    try:
        status = process.run(budget)
    except ServerHang as hang:
        status = process._status("limit", None)
        status.kind = "hang"
        status.fault_detail = str(hang)
    return status


class BreakpointSession:
    """Server state captured at the first arrival at one instruction.

    ``run_fn(process, budget)`` executes the post-activation suffix;
    the default simply runs to completion, the fault-tolerant runner
    substitutes a watchdog-instrumented executor.
    """

    def __init__(self, daemon, client_factory, breakpoint_address,
                 budget=CONNECTION_INSTRUCTION_BUDGET, run_fn=None):
        self.daemon = daemon
        self.budget = budget
        self.run_fn = run_fn if run_fn is not None else plain_run
        self.breakpoint_address = breakpoint_address
        client = client_factory()
        kernel = daemon.make_kernel(client)
        self.process = Process(daemon.module, kernel)
        #: text addresses poked since the snapshot; the only ones whose
        #: cached decodes can be stale once the snapshot is restored.
        self._dirty = set()
        self.arrival = self.process.run_until(breakpoint_address, budget)
        self.reached = self.arrival.kind == "breakpoint"
        if self.reached:
            self.activation_instret = self.process.cpu.instret
            self._snap_regions = [bytes(region.data)
                                  for region in self.process.memory.regions]
            cpu = self.process.cpu
            self._snap_cpu = (list(cpu.regs), cpu.eip, cpu.eflags,
                              list(cpu.segments), cpu.instret)
            self._snap_kernel = kernel

    def _restore(self):
        """Reset memory/CPU to the breakpoint and clone kernel+client."""
        for region, blob in zip(self.process.memory.regions,
                                self._snap_regions):
            region.data[:] = blob
        cpu = self.process.cpu
        regs, eip, eflags, segments, instret = self._snap_cpu
        cpu.regs = list(regs)
        cpu.eip = eip
        cpu.eflags = eflags
        cpu.segments = list(segments)
        cpu.instret = instret
        cpu.halted = False
        if hasattr(cpu, "exit_code"):
            del cpu.exit_code
        # Text is back to the snapshot image, from which the prefix run
        # (and every clean suffix decode) was cached -- only decodes
        # overlapping bytes poked since the snapshot can be stale, so
        # evict those and keep the rest of the auth-section cache warm.
        for address in self._dirty:
            cpu.invalidate_cache(address)
        self._dirty.clear()
        kernel = copy.deepcopy(self._snap_kernel)
        cpu.kernel = kernel
        self.process.kernel = kernel
        return kernel

    def run_with_flip(self, flip_address, bit):
        """Flip one bit at the breakpoint and run to completion.

        Returns ``(status, kernel, client)`` where ``status.kind`` is
        ``exit``/``crash``/``limit``/``hang``.
        """
        if not self.reached:
            raise RuntimeError("breakpoint at 0x%x was never reached"
                               % self.breakpoint_address)
        kernel = self._restore()
        self.process.flip_bit(flip_address, bit)
        self._dirty.add(flip_address)
        return self._finish(kernel)

    def run_with_register_flip(self, register, bit):
        """Flip one bit of a general-purpose register at the breakpoint
        and resume -- a *data error* experiment (the paper's Example 3
        family), in contrast to the text-segment control errors of the
        main campaigns.

        ``register`` is the hardware register index (EAX=0 ... EDI=7).
        """
        if not self.reached:
            raise RuntimeError("breakpoint at 0x%x was never reached"
                               % self.breakpoint_address)
        kernel = self._restore()
        cpu = self.process.cpu
        cpu.regs[register] ^= (1 << bit)
        return self._finish(kernel)

    def run_with_memory_flip(self, address, bit):
        """Flip one bit of one byte at an absolute address at the
        breakpoint and resume -- a *data error* against memory (the
        stack/data counterpart of :meth:`run_with_register_flip`).

        Text addresses are handled too (the decode cache is kept
        coherent), though the text-fault models use
        :meth:`run_with_flip`/:meth:`run_with_bytes` directly.
        """
        if not self.reached:
            raise RuntimeError("breakpoint at 0x%x was never reached"
                               % self.breakpoint_address)
        kernel = self._restore()
        return self._memory_flip(address, bit, kernel)

    def run_with_stack_relative_flip(self, offset, bit):
        """Flip one bit of the byte at ``ESP + offset`` as of the
        breakpoint (the live frame: saved state, locals, argument
        words) and resume."""
        if not self.reached:
            raise RuntimeError("breakpoint at 0x%x was never reached"
                               % self.breakpoint_address)
        kernel = self._restore()
        address = (self.process.cpu.regs[4] + offset) & 0xFFFFFFFF
        return self._memory_flip(address, bit, kernel)

    def _memory_flip(self, address, bit, kernel):
        memory = self.process.memory
        memory.poke(address, memory.peek(address) ^ (1 << bit))
        cpu = self.process.cpu
        low, high = getattr(cpu, "cacheable", (0, 0))
        if low <= address < high:
            cpu.invalidate_cache(address)
            self._dirty.add(address)
        return self._finish(kernel)

    def run_with_bytes(self, address, replacement):
        """Overwrite instruction bytes at the breakpoint and resume.

        Used by the new-encoding evaluation (Section 6.2): the
        replacement is the map->flip->map-back image of the original
        instruction, which can differ from it in more than one bit of
        the *old* encoding.
        """
        if not self.reached:
            raise RuntimeError("breakpoint at 0x%x was never reached"
                               % self.breakpoint_address)
        kernel = self._restore()
        for offset, value in enumerate(replacement):
            self.process.memory.poke(address + offset, value)
            self.process.cpu.invalidate_cache(address + offset)
            self._dirty.add(address + offset)
        return self._finish(kernel)

    def _finish(self, kernel):
        status = self.run_fn(self.process, self.budget)
        return status, kernel, kernel.channel.client


def single_injection(daemon, client_factory, instruction_address,
                     flip_address, bit,
                     budget=CONNECTION_INSTRUCTION_BUDGET):
    """Run one complete injection experiment from scratch.

    Convenience wrapper used by examples and tests; campaigns use
    :class:`BreakpointSession` directly to amortise the prefix.
    """
    session = BreakpointSession(daemon, client_factory,
                                instruction_address, budget)
    if not session.reached:
        return None
    return session.run_with_flip(flip_address, bit)


def run_clean_connection(daemon, client_factory,
                         budget=CONNECTION_INSTRUCTION_BUDGET):
    """Run an uninjected connection (used by tests and examples)."""
    client = client_factory()
    kernel = daemon.make_kernel(client)
    process = Process(daemon.module, kernel)
    return plain_run(process, budget), kernel, client
