"""Debugger-style single-bit injector (the NFTAPE role).

For each experiment the injector loads the server, sets a breakpoint
at the target instruction, lets a scripted client connect, and -- if
the breakpoint fires -- flips one bit of the instruction and resumes.

Because execution before the breakpoint is identical for every bit of
a given instruction, the injector snapshots the whole machine (memory,
CPU, kernel, client) at the breakpoint once and replays only the
post-activation suffix for each of the instruction's bits.  Outcomes
are exactly those of a naive per-bit rerun; campaigns just finish
about an order of magnitude sooner.

The snapshot is a :class:`~repro.injection.snapshot.MachineSnapshot`:
restore writes back only pages the previous suffix dirtied and clones
the kernel through the explicit ``clone()`` protocol instead of
``copy.deepcopy``.  The prefix run depends only on the daemon image
and the scripted client -- not on the fault model or instruction
encoding -- so one session (and its snapshot) is reusable across every
model and bit aimed at that instruction; :class:`SessionCache` keys
sessions accordingly.
"""

from __future__ import annotations

from ..apps.common import CONNECTION_INSTRUCTION_BUDGET
from ..emu import Process
from ..kernel import ServerHang
from .snapshot import MachineSnapshot


def plain_run(process, budget):
    """Run *process* to completion under *budget*, mapping a kernel
    :class:`ServerHang` onto a ``hang`` exit status."""
    try:
        status = process.run(budget)
    except ServerHang as hang:
        status = process._status("limit", None)
        status.kind = "hang"
        status.fault_detail = str(hang)
    return status


class BreakpointSession:
    """Server state captured at the first arrival at one instruction.

    ``run_fn(process, budget)`` executes the post-activation suffix;
    the default simply runs to completion, the fault-tolerant runner
    substitutes a watchdog-instrumented executor.

    ``full_restore=True`` is the escape hatch that rewrites every
    region instead of only dirtied pages; the test suite cross-checks
    the two paths for byte-identical outcomes.
    """

    def __init__(self, daemon, client_factory, breakpoint_address,
                 budget=CONNECTION_INSTRUCTION_BUDGET, run_fn=None,
                 full_restore=False):
        self.daemon = daemon
        self.budget = budget
        self.run_fn = run_fn if run_fn is not None else plain_run
        self.breakpoint_address = breakpoint_address
        self.full_restore = full_restore
        client = client_factory()
        kernel = daemon.make_kernel(client)
        self.process = Process(daemon.module, kernel)
        #: text addresses poked since the snapshot; the only ones whose
        #: cached decodes can be stale once the snapshot is restored.
        self._dirty = set()
        #: perf-counter values already credited to a runner; lets a
        #: session be reused across runners without double counting.
        self._perf_taken = {}
        #: restore-path accounting, exposed for tests and benchmarks.
        self.restore_stats = {"restores": 0, "pristine_skips": 0,
                              "pages_written": 0, "kernel_reuses": 0,
                              "kernel_rewinds": 0}
        #: optional :class:`repro.obs.sampler.Sampler` attributing the
        #: restore path's host wall clock (rebound per runner, like
        #: ``run_fn``); ``None`` keeps restores instrumentation-free.
        self.sampler = None
        self.arrival = self.process.run_until(breakpoint_address, budget)
        self.reached = self.arrival.kind == "breakpoint"
        if self.reached:
            self.activation_instret = self.process.cpu.instret
            self.snapshot = MachineSnapshot.capture(self.process, kernel)
            # The pristine kernel lives inside the snapshot; the live
            # process runs against a clone so no experiment can corrupt
            # the state every later restore is built from.
            self._install_kernel(self.snapshot.make_kernel())
            self._pristine = True
            # From here on, log cache inserts so each restore can
            # evict exactly the decodes built from modified text.
            self.process.cpu.decode_log = []

    def _install_kernel(self, kernel):
        self.process.cpu.kernel = kernel
        self.process.kernel = kernel
        return kernel

    def _restore(self):
        """Reset memory/CPU to the breakpoint and clone kernel+client.

        When the machine has not run since the snapshot was captured
        (or since the last restore) nothing is dirty and the already
        installed kernel clone has never been touched, so the whole
        restore is skipped -- the common case for NA fast exits.
        """
        sampler = self.sampler
        if sampler is not None:
            with sampler.host_phase("restore"):
                return self._restore_impl()
        return self._restore_impl()

    def _restore_impl(self):
        if self._pristine:
            self._pristine = False
            self.restore_stats["pristine_skips"] += 1
            return self.process.kernel
        snapshot = self.snapshot
        self.restore_stats["restores"] += 1
        self.restore_stats["pages_written"] += snapshot.restore_memory(
            self.process.memory, full=self.full_restore)
        cpu = self.process.cpu
        snapshot.restore_cpu(cpu)
        # Text is back to the snapshot image, from which the prefix run
        # (and every clean suffix decode) was cached -- only decodes
        # built while bytes poked this experiment were in place can be
        # stale, so evict those and keep the rest of the cache warm.
        cpu.evict_suspect_decodes(self._dirty)
        self._dirty.clear()
        # Every kernel/client mutation is syscall-gated (the client
        # only acts inside server_read/server_write), so an unchanged
        # syscall count proves the installed clone is still pristine
        # and can serve the next experiment as-is -- the common case
        # for faults that crash before reaching a system call.
        # Otherwise the installed clone is rewound in place to the
        # pristine snapshot state, which is why the kernel returned by
        # the previous run_with_* call is only guaranteed stable until
        # the next one.
        installed = self.process.kernel
        if installed.syscall_count == snapshot.kernel.syscall_count:
            self.restore_stats["kernel_reuses"] += 1
            return installed
        self.restore_stats["kernel_rewinds"] += 1
        return installed.rewind_to(snapshot.kernel)

    def fork(self):
        """Cheap sibling session at the same breakpoint.

        The sibling shares the immutable :class:`MachineSnapshot`
        (region blobs + pristine kernel) but gets its own memory, CPU
        and kernel clone, so experiments in one session can never leak
        into another.  Used by the fork-independence property tests and
        as the substrate for warm-worker reuse.
        """
        if not self.reached:
            raise RuntimeError("cannot fork: breakpoint at 0x%x was "
                               "never reached" % self.breakpoint_address)
        sibling = BreakpointSession.__new__(BreakpointSession)
        sibling.daemon = self.daemon
        sibling.budget = self.budget
        sibling.run_fn = self.run_fn
        sibling.breakpoint_address = self.breakpoint_address
        sibling.full_restore = self.full_restore
        sibling.snapshot = self.snapshot
        sibling.arrival = self.arrival
        sibling.reached = True
        sibling.activation_instret = self.activation_instret
        sibling._dirty = set()
        sibling._perf_taken = {}
        sibling.sampler = None
        sibling.restore_stats = {"restores": 0, "pristine_skips": 0,
                                 "pages_written": 0, "kernel_reuses": 0,
                                 "kernel_rewinds": 0}
        kernel = self.snapshot.make_kernel()
        sibling.process = Process(self.daemon.module, kernel,
                                  memory=self.snapshot.materialize_memory())
        self.snapshot.restore_cpu(sibling.process.cpu)
        sibling.process.cpu.decode_log = []
        sibling._pristine = True
        return sibling

    def take_perf_delta(self):
        """Perf counters accumulated since the last call -- the share
        of this session's work not yet credited to any runner."""
        counters = self.process.cpu.perf.as_dict()
        taken = self._perf_taken
        self._perf_taken = counters
        return {name: value - taken.get(name, 0)
                for name, value in counters.items()}

    def run_with_flip(self, flip_address, bit):
        """Flip one bit at the breakpoint and run to completion.

        Returns ``(status, kernel, client)`` where ``status.kind`` is
        ``exit``/``crash``/``limit``/``hang``.
        """
        if not self.reached:
            raise RuntimeError("breakpoint at 0x%x was never reached"
                               % self.breakpoint_address)
        kernel = self._restore()
        self.process.flip_bit(flip_address, bit)
        self._dirty.add(flip_address)
        return self._finish(kernel)

    def run_with_register_flip(self, register, bit):
        """Flip one bit of a general-purpose register at the breakpoint
        and resume -- a *data error* experiment (the paper's Example 3
        family), in contrast to the text-segment control errors of the
        main campaigns.

        ``register`` is the hardware register index (EAX=0 ... EDI=7).
        """
        if not self.reached:
            raise RuntimeError("breakpoint at 0x%x was never reached"
                               % self.breakpoint_address)
        kernel = self._restore()
        cpu = self.process.cpu
        cpu.regs[register] ^= (1 << bit)
        return self._finish(kernel)

    def run_with_memory_flip(self, address, bit):
        """Flip one bit of one byte at an absolute address at the
        breakpoint and resume -- a *data error* against memory (the
        stack/data counterpart of :meth:`run_with_register_flip`).

        Text addresses are handled too (the decode cache is kept
        coherent), though the text-fault models use
        :meth:`run_with_flip`/:meth:`run_with_bytes` directly.
        """
        if not self.reached:
            raise RuntimeError("breakpoint at 0x%x was never reached"
                               % self.breakpoint_address)
        kernel = self._restore()
        return self._memory_flip(address, bit, kernel)

    def run_with_stack_relative_flip(self, offset, bit):
        """Flip one bit of the byte at ``ESP + offset`` as of the
        breakpoint (the live frame: saved state, locals, argument
        words) and resume."""
        if not self.reached:
            raise RuntimeError("breakpoint at 0x%x was never reached"
                               % self.breakpoint_address)
        kernel = self._restore()
        address = (self.process.cpu.regs[4] + offset) & 0xFFFFFFFF
        return self._memory_flip(address, bit, kernel)

    def _memory_flip(self, address, bit, kernel):
        memory = self.process.memory
        memory.poke(address, memory.peek(address) ^ (1 << bit))
        cpu = self.process.cpu
        low, high = getattr(cpu, "cacheable", (0, 0))
        if low <= address < high:
            cpu.invalidate_cache(address)
            self._dirty.add(address)
        return self._finish(kernel)

    def run_with_bytes(self, address, replacement):
        """Overwrite instruction bytes at the breakpoint and resume.

        Used by the new-encoding evaluation (Section 6.2): the
        replacement is the map->flip->map-back image of the original
        instruction, which can differ from it in more than one bit of
        the *old* encoding.
        """
        if not self.reached:
            raise RuntimeError("breakpoint at 0x%x was never reached"
                               % self.breakpoint_address)
        kernel = self._restore()
        for offset, value in enumerate(replacement):
            self.process.memory.poke(address + offset, value)
            self.process.cpu.invalidate_cache(address + offset)
            self._dirty.add(address + offset)
        return self._finish(kernel)

    def _finish(self, kernel):
        status = self.run_fn(self.process, self.budget)
        return status, kernel, kernel.channel.client


class SessionCache:
    """Reusable :class:`BreakpointSession` store.

    Keyed by (daemon image, client script, budget, site): the prefix
    run and the snapshot do not depend on the fault model or the
    instruction encoding, so one cached session serves every model and
    bit targeting that instruction.  Unreachable sites are remembered
    so each is probed at most once.

    ``capacity`` bounds resident sessions (LRU eviction); campaigns
    visit points in address order, so the serial runner uses capacity 1
    while cross-model sweeps share an unbounded cache.  Not safe for
    concurrent use from several threads; parallel campaigns give each
    worker process its own cache.
    """

    def __init__(self, capacity=None):
        self.capacity = capacity
        self._sessions = {}  # key -> session, insertion order = LRU
        self._unreachable = {}  # key -> arrival ExitStatus
        self.hits = 0
        self.misses = 0
        #: sessions dropped by the LRU bound.  A long-lived warm
        #: worker serving many daemon x model x encoding cells watches
        #: this to prove the cache is bounded (an evicted site simply
        #: re-captures on next use, at the usual prefix-run cost).
        self.evictions = 0

    @staticmethod
    def key(daemon, client_name, budget, address):
        return (id(daemon), client_name, budget, address)

    def lookup(self, key):
        session = self._sessions.get(key)
        if session is not None:
            self.hits += 1
            # refresh LRU position
            del self._sessions[key]
            self._sessions[key] = session
        return session

    def unreachable_arrival(self, key):
        return self._unreachable.get(key)

    def mark_unreachable(self, key, arrival):
        self._unreachable[key] = arrival

    def store(self, key, session):
        self.misses += 1
        self._sessions[key] = session
        if self.capacity is not None:
            while len(self._sessions) > self.capacity:
                oldest = next(iter(self._sessions))
                del self._sessions[oldest]
                self.evictions += 1

    def discard(self, key):
        """Drop a session whose machine state may be corrupted (e.g.
        after a harness fault)."""
        self._sessions.pop(key, None)

    def __len__(self):
        return len(self._sessions)

    def stats(self):
        """Operational counters, in metrics-registry key style."""
        return {"sessions": len(self._sessions), "hits": self.hits,
                "misses": self.misses, "evictions": self.evictions}


def single_injection(daemon, client_factory, instruction_address,
                     flip_address, bit,
                     budget=CONNECTION_INSTRUCTION_BUDGET):
    """Run one complete injection experiment from scratch.

    Convenience wrapper used by examples and tests; campaigns use
    :class:`BreakpointSession` directly to amortise the prefix.
    """
    session = BreakpointSession(daemon, client_factory,
                                instruction_address, budget)
    if not session.reached:
        return None
    return session.run_with_flip(flip_address, bit)


def run_clean_connection(daemon, client_factory,
                         budget=CONNECTION_INSTRUCTION_BUDGET):
    """Run an uninjected connection (used by tests and examples)."""
    client = client_factory()
    kernel = daemon.make_kernel(client)
    process = Process(daemon.module, kernel)
    return plain_run(process, budget), kernel, client
