"""Warm worker fleet: the campaign engine's execution layer.

The one-shot sharded runner in :mod:`repro.injection.parallel` forks a
fresh fleet per campaign, pays one daemon build plus one golden run
per worker every time, and fixes the work assignment up front (shard K
owns every K-th instruction group).  This module replaces both costs
with an explicit execution layer under the scheduling layer of
:mod:`repro.injection.scheduler`:

* a :class:`WorkerFleet` holds ``N`` long-lived worker processes that
  *outlive campaigns*: each worker keeps its rebuilt daemons, golden
  runs and a bounded
  :class:`~repro.injection.injector.SessionCache` warm per campaign
  cell, so the second campaign for a cell skips the golden run and the
  per-site snapshot captures entirely;
* workers pull :class:`~repro.injection.scheduler.WorkUnit`\\ s from a
  :class:`~repro.injection.scheduler.CampaignScheduler` whenever they
  go idle (work stealing by pull), interleaving units from several
  concurrent campaigns;
* every unit runs through the ordinary fault-tolerant
  :class:`~repro.injection.runner.CampaignRunner` (isolation,
  watchdog, retries, quarantine, pruning all apply per unit) and
  journals to the worker's ``<journal>.shardK`` file, so resume, the
  salvage loader and ``repro status`` see the familiar format;
* the supervision machinery of
  :mod:`repro.injection.supervisor` -- heartbeats via progress ticks,
  exponential-backoff respawn with a per-worker-incarnation restart
  budget, journal salvage of whatever a dead worker completed,
  inline completion in the parent as the last resort, and graceful
  checkpoint drain -- is applied to the fleet instead of to one-shot
  shards.

Determinism: completions are keyed by point and merged by enumeration
index (:meth:`CampaignScheduler.merged_results`), so Tables 1/3/5,
Figure 4 and the deterministic metrics core are byte-identical to a
serial run no matter how units interleaved, migrated between workers,
or were salvaged and requeued after a crash.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as _mp_connection

from ..apps.common import CONNECTION_INSTRUCTION_BUDGET
from ..emu.perf import PerfCounters
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry, record_supervision_metrics
from ..obs.sampler import as_sampler, Sampler
from ..obs.trace import merge_trace_files, Tracer
from .faultmodels import get_fault_model
from .golden import record_golden
from .injector import SessionCache
from .parallel import (_record_key, default_daemon_factory,
                       discover_shard_journals, load_shard_journals,
                       shard_journal_path)
from .runner import (_point_key, CampaignInterrupted, CampaignJournal,
                     campaign_timing, CampaignRunner,
                     declare_campaign_metrics, JournalError,
                     record_result_metrics, record_runtime_metrics,
                     validate_journal_meta, Watchdog, WatchdogConfig)
from .scheduler import CampaignScheduler, UNIT_INSTRUCTIONS
from .supervisor import (backoff_delay, EVENT_NAMES,
                         install_stop_handlers, join_process)
from .targets import DEFAULT_TARGET_KINDS

_LOGGER = get_logger("fleet")

#: worker slot states.
IDLE = "idle"
BUSY = "busy"
BACKOFF = "backoff"
RETIRED = "retired"


@dataclass
class FleetConfig:
    """Tunables for :class:`WorkerFleet`.

    Supervision knobs mirror
    :class:`~repro.injection.supervisor.SupervisorConfig`;
    ``max_restarts`` is the per-worker-*incarnation* budget (a worker
    that keeps dying is retired, its queued unit migrates to a
    sibling).  ``unit_attempts`` bounds how often one unit may bounce
    between dying workers before the parent runs it inline.
    ``session_capacity`` bounds each worker's warm
    :class:`~repro.injection.injector.SessionCache` (LRU).
    """

    workers: int = 2
    unit_instructions: int = UNIT_INSTRUCTIONS
    session_capacity: int = 64
    max_restarts: int = 2
    unit_attempts: int = 3
    backoff_base: float = 0.5
    backoff_cap: float = 8.0
    heartbeat_timeout: float | None = None
    poll_interval: float = 0.25
    dead_grace: float = 0.5
    drain_timeout: float = 30.0


# ----------------------------------------------------------------------
# Worker side

class _IncarnationChaos:
    """Adapt a per-incarnation :class:`ChaosAgent` to per-unit runners.

    Chaos ``after`` thresholds count experiments (or journal writes)
    since the *incarnation* started, but every unit's runner restarts
    its own counters at zero -- so accumulate across units here."""

    def __init__(self, agent):
        self.agent = agent
        self._points = 0
        self._writes = 0

    def on_point(self, executed):
        self._points += 1
        self.agent.on_point(self._points)

    def on_journal_write(self, index):
        self.agent.on_journal_write(self._writes)
        self._writes += 1


def _fleet_worker_main(worker, incarnation, conn, config,
                       chaos_policy=None):
    """Long-lived warm worker: serve units until told to stop.

    ``conn`` is this incarnation's private duplex pipe (one writer per
    end, so a worker killed mid-send tears only its own channel).
    Inbound messages: ``("campaign", ctx)`` registers a campaign
    context, ``("unit", cid, unit)`` runs one work unit, ``("stop",)``
    exits.  Every outbound message is tagged
    ``(kind, worker, incarnation, ...)`` so the parent can discard a
    killed incarnation's leftovers as stale.

    Warm state held across units *and campaigns*: one rebuilt daemon
    and one golden run per campaign cell, plus a bounded shared
    session cache -- the second campaign for a cell skips the golden
    run and re-uses site snapshots.
    """
    stop = {"reason": None}

    def emit(kind, *rest):
        try:
            conn.send((kind, worker, incarnation) + rest)
        except (BrokenPipeError, OSError):
            pass      # parent gone; journals are flushed regardless

    def request_stop(signum, frame):
        stop["reason"] = signal.Signals(signum).name

    try:
        signal.signal(signal.SIGTERM, request_stop)
        signal.signal(signal.SIGINT, request_stop)
    except ValueError:
        pass          # not this process's main thread (test harness)

    contexts = {}     # cid -> campaign context dict
    daemons = {}      # cell -> rebuilt daemon
    goldens = {}      # cell -> GoldenRun
    sessions = SessionCache(capacity=config.session_capacity)
    agent = (chaos_policy.agent(worker, incarnation)
             if chaos_policy is not None else None)
    chaos = _IncarnationChaos(agent) if agent is not None else None

    emit("hello")
    try:
        while stop["reason"] is None:
            if not conn.poll(config.poll_interval):
                continue
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break                     # parent gone: shut down
            kind = message[0]
            if kind == "stop":
                break
            if kind == "campaign":
                ctx = message[1]
                contexts[ctx["cid"]] = ctx
                continue
            if kind != "unit":
                continue
            cid, unit = message[1], message[2]
            try:
                _run_unit(emit, stop, contexts[cid], unit, daemons,
                          goldens, sessions, worker, chaos)
            except CampaignInterrupted as interrupted:
                emit("unit-checkpoint", cid, unit.unit_id,
                     interrupted.completed)
            except BaseException:
                emit("unit-error", cid, unit.unit_id,
                     traceback.format_exc())
    finally:
        emit("bye")
        conn.close()


def _run_unit(emit, stop, ctx, unit, daemons, goldens, sessions,
              worker, chaos):
    """One work unit through the ordinary fault-tolerant runner."""
    from ..analysis.serialize import (quarantined_to_dict,
                                      result_to_dict)
    cid = ctx["cid"]
    cell = ctx["cell"]
    daemon = daemons.get(cell)
    if daemon is None:
        daemon = ctx["daemon_factory"]()
        daemons[cell] = daemon
    journal = (shard_journal_path(ctx["journal"], worker)
               if ctx["journal"] is not None else None)
    tracer = (Tracer(sink=None, tid=worker + 1)
              if ctx["trace"] else None)

    def progress(done, total):
        # progress ticks double as the liveness heartbeat
        emit("progress", cid, unit.unit_id, done, total)

    # per-unit sampler: guest samples are deterministic per unit and
    # ship home in the payload for the parent to fold together.
    sampler = (Sampler(ctx["sample_period"])
               if ctx.get("sample_period") else None)
    runner = CampaignRunner(
        daemon, ctx["client_name"], ctx["client_factory"],
        encoding=ctx["encoding"], kinds=ctx["kinds"],
        budget=ctx["budget"], progress=progress,
        points=list(unit.points), ranges=ctx["ranges"],
        journal=journal, resume=True, retries=ctx["retries"],
        watchdog=Watchdog(ctx["watchdog_config"]),
        fault_model=ctx["fault_model"], trace=tracer,
        forensics=ctx["forensics"], trace_root="shard",
        trace_attrs={"shard": worker, "unit": unit.unit_id},
        stop_check=lambda: stop["reason"],
        journal_fsync=ctx["journal_fsync"],
        journal_salvage=ctx["journal_salvage"], chaos=chaos,
        full_restore=ctx["full_restore"], session_cache=sessions,
        prune=ctx["prune"], audit_fraction=ctx["audit_fraction"],
        audit_seed=ctx["audit_seed"], golden=goldens.get(cell),
        sampler=sampler)
    campaign = runner.run()
    goldens[cell] = runner._golden
    # The worker journal accumulates every unit of this campaign, and
    # a resume loads *all* its quarantine records -- restrict the
    # payload (and its metrics counter) to this unit's own points so
    # the parent's exact metric aggregation never double-counts.
    unit_keys = set(unit.keys)
    quarantined = [entry for entry in campaign.quarantined
                   if _point_key(entry.point) in unit_keys]
    metrics = campaign.metrics
    metrics["counters"]["quarantined"] = len(quarantined)
    timing = dict(campaign.timing or {})
    timing.update(shard=worker, unit=unit.unit_id,
                  points=len(unit.points),
                  experiments=len(campaign.results) + len(quarantined))
    if journal is not None:
        CampaignJournal.mark_unit(
            journal, unit.unit_id,
            len(campaign.results) + len(quarantined), campaign=cid)
    emit("unit-done", cid, unit.unit_id, {
        "results": [result_to_dict(result)
                    for result in campaign.results],
        "quarantined": [quarantined_to_dict(entry)
                        for entry in quarantined],
        "timing": timing,
        "metrics": metrics,
        "trace": tracer.events() if tracer is not None else None,
        "profile": sampler.as_dict() if sampler is not None else None,
    })


# ----------------------------------------------------------------------
# Parent side

@dataclass
class WorkerSlot:
    """One long-lived worker's supervision record."""

    worker: int
    max_restarts: int
    incarnation: int = 0
    restarts: int = 0
    status: str = IDLE
    process: object = None
    conn: object = None
    last_beat: float = 0.0
    resume_due: float = 0.0
    dead_since: float | None = None
    #: ``(cid, unit)`` while BUSY.
    current: tuple | None = None
    #: campaign ids whose context this incarnation has received.
    known: set = field(default_factory=set)
    failures: list = field(default_factory=list)


class FleetCampaignState:
    """Parent-side record of one submitted campaign."""

    def __init__(self, cid, daemon, client_name, client_factory,
                 encoding, model, kinds, budget, points, scheduler,
                 golden, golden_reused, journal, resume, retries,
                 watchdog_config, daemon_factory, ranges, tracer,
                 trace_path, root_cm, root_span, metrics_path,
                 forensics, journal_fsync, journal_salvage,
                 full_restore, prune, audit_fraction, audit_seed,
                 progress, on_unit, resumed_quarantined,
                 telemetry_campaign=None, sampler=None, profile=None):
        self.cid = cid
        self.daemon = daemon
        self.client_name = client_name
        self.client_factory = client_factory
        self.encoding = encoding
        self.model = model
        self.kinds = kinds
        self.budget = budget
        self.points = points
        self.scheduler = scheduler
        self.golden = golden
        self.golden_reused = golden_reused
        self.journal = journal
        self.resume = resume
        self.retries = retries
        self.watchdog_config = watchdog_config
        self.daemon_factory = daemon_factory
        self.ranges = ranges
        self.tracer = tracer
        self.trace_path = trace_path
        self.root_cm = root_cm
        self.root_span = root_span
        self.metrics_path = metrics_path
        self.forensics = forensics
        self.journal_fsync = journal_fsync
        self.journal_salvage = journal_salvage
        self.full_restore = full_restore
        self.prune = prune
        self.audit_fraction = audit_fraction
        self.audit_seed = audit_seed
        self.progress = progress
        self.on_unit = on_unit
        self.resumed_quarantined = resumed_quarantined
        #: telemetry label (defaults to the fleet-local cid), the
        #: parent-side profile sampler worker profiles fold into, and
        #: where the merged profile is saved at finalize.
        self.telemetry_campaign = (telemetry_campaign
                                   if telemetry_campaign is not None
                                   else cid)
        self.sampler = sampler
        self.profile_path = profile
        self.started = time.monotonic()
        #: unit payloads keyed by unit index (exact metric absorption
        #: happens in unit order at finalize).
        self.payloads = {}
        self.executed = 0
        self.partials = {}        # worker -> in-flight progress count
        self.interrupted = None

    @property
    def cell(self):
        return "%s:%s:%s" % (type(self.daemon).__name__,
                             self.client_name, self.budget)

    @property
    def finished(self):
        return self.scheduler.finished

    def completed(self):
        return self.scheduler.completed + sum(self.partials.values())

    def report_progress(self):
        if self.progress is not None:
            self.progress(self.completed(), self.scheduler.total)

    def context(self):
        """The picklable campaign context a worker needs."""
        return {
            "cid": self.cid,
            "cell": self.cell,
            "client_name": self.client_name,
            "client_factory": self.client_factory,
            "daemon_factory": self.daemon_factory,
            "encoding": self.encoding,
            "kinds": self.kinds,
            "budget": self.budget,
            "fault_model": self.model,
            "ranges": self.ranges,
            "journal": self.journal,
            "retries": self.retries,
            "watchdog_config": self.watchdog_config,
            "forensics": self.forensics,
            "trace": self.trace_path is not None,
            "journal_fsync": self.journal_fsync,
            "journal_salvage": self.journal_salvage,
            "full_restore": self.full_restore,
            "prune": self.prune,
            "audit_fraction": self.audit_fraction,
            "audit_seed": self.audit_seed,
            "sample_period": (self.sampler.period
                              if self.sampler is not None else None),
        }


class WorkerFleet:
    """A persistent fleet of warm workers serving campaign units.

    Lifecycle::

        fleet = WorkerFleet(FleetConfig(workers=4))
        fleet.start()
        cid = fleet.submit(daemon, "Client1", factory, journal=path)
        while not fleet.finished(cid):
            fleet.pump()
        campaign = fleet.finalize(cid)      # CampaignResult
        ...more submits: same workers, warm caches...
        fleet.stop()

    The fleet outlives campaigns (that is its point); `submit` may be
    called while other campaigns are still running, and idle workers
    interleave units from every live campaign.  Supervision follows
    :class:`~repro.injection.supervisor.ShardSupervisor`: progress
    ticks are heartbeats, dead or wedged workers are respawned with
    exponential backoff against a per-incarnation restart budget,
    whatever a dead worker journaled is salvaged and the remainder of
    its unit requeued (at the front, so salvaged work finishes first),
    and when every slot is retired the parent finishes remaining units
    inline with its own daemons.  :meth:`drain` checkpoints every
    in-flight unit for the service's graceful shutdown.
    """

    def __init__(self, config=None, chaos=None, telemetry=None):
        self.config = config if config is not None else FleetConfig()
        if self.config.workers < 1:
            raise ValueError("workers must be >= 1, got %r"
                             % self.config.workers)
        self.chaos = chaos
        #: :class:`~repro.obs.events.EventBus` for live campaign
        #: events (``self.events`` is the supervision counter dict, a
        #: different thing).  Only the parent emits, on message
        #: receipt, so per-campaign sequence numbers stay contiguous.
        self.telemetry = telemetry
        self.slots = {}
        self.campaigns = {}
        self.events = {name: 0 for name in EVENT_NAMES}
        self.failures = []
        #: parent-side golden cache per campaign cell: the second
        #: submission of a cell skips the reference run entirely.
        self.goldens = {}
        self.context = self._context()
        self._next_cid = 0
        self._assign_rotor = 0
        self._draining = False
        self._started = False
        self._heartbeat_timeout = self.config.heartbeat_timeout
        self._inline_sessions = SessionCache(
            capacity=self.config.session_capacity)
        self._inline_tid = self.config.workers + 1

    # -- lifecycle -----------------------------------------------------

    def start(self):
        if self._started:
            return
        self._started = True
        for worker in range(self.config.workers):
            slot = WorkerSlot(worker=worker,
                              max_restarts=self.config.max_restarts)
            self.slots[worker] = slot
            self._spawn(slot)

    def stop(self):
        """Shut the fleet down (workers exit cleanly, then join)."""
        for slot in self.slots.values():
            if slot.conn is not None and slot.process is not None \
                    and slot.process.is_alive():
                try:
                    slot.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + 5.0
        while (any(slot.process is not None
                   and slot.process.is_alive()
                   for slot in self.slots.values())
               and time.monotonic() < deadline):
            self._pump_messages()
        for slot in self.slots.values():
            if slot.process is not None:
                if slot.process.is_alive():
                    slot.process.terminate()
                join_process(slot.process)
            if slot.conn is not None:
                slot.conn.close()
                slot.conn = None
        self._started = False

    def _context(self):
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _spawn(self, slot):
        if slot.conn is not None:
            slot.conn.close()
        parent_conn, child_conn = self.context.Pipe()
        process = self.context.Process(
            target=_fleet_worker_main,
            args=(slot.worker, slot.incarnation, child_conn,
                  self.config, self.chaos))
        process.daemon = True
        process.start()
        child_conn.close()
        slot.conn = parent_conn
        slot.process = process
        slot.status = IDLE
        slot.current = None
        slot.known = set()
        slot.last_beat = time.monotonic()
        slot.dead_since = None

    # -- telemetry -----------------------------------------------------

    def _emit(self, state, type, **payload):
        """Campaign-scoped telemetry event."""
        if self.telemetry is not None:
            self.telemetry.emit(type,
                                campaign=state.telemetry_campaign,
                                **payload)

    def _emit_fleet(self, type, **payload):
        """Fleet-scoped (campaign-less) telemetry event: worker
        lifecycle is shared by every live campaign."""
        if self.telemetry is not None:
            self.telemetry.emit(type, **payload)

    # -- submission ----------------------------------------------------

    def submit(self, daemon, client_name, client_factory,
               encoding=None, kinds=DEFAULT_TARGET_KINDS,
               budget=CONNECTION_INSTRUCTION_BUDGET, progress=None,
               max_points=None, ranges=None, journal=None,
               resume=False, retries=0, watchdog=None,
               daemon_factory=None, fault_model=None, trace=None,
               metrics=None, forensics=False, journal_fsync=None,
               journal_salvage=False, full_restore=False, prune=False,
               audit_fraction=0.0, audit_seed=0, on_unit=None,
               telemetry_campaign=None, sampler=None, profile=None):
        """Submit one campaign; returns its campaign id.

        Mirrors :func:`repro.injection.campaign.run_campaign`'s
        options.  ``on_unit(state, unit, payload)`` is called as each
        unit completes (the service streams from it).
        ``telemetry_campaign`` labels this campaign's events on the
        fleet's bus (default: the fleet-local cid); ``sampler`` /
        ``profile`` attach the sampling profiler (workers sample their
        own units, the parent folds the profiles and saves the merge
        at ``profile``).
        """
        if not self._started:
            self.start()
        from .campaign import ENCODING_OLD
        cid = "c%04d" % self._next_cid
        self._next_cid += 1
        encoding = encoding if encoding is not None else ENCODING_OLD
        model = get_fault_model(fault_model)
        if isinstance(watchdog, Watchdog):
            watchdog_config = watchdog.config
        else:
            watchdog_config = (watchdog if watchdog is not None
                               else WatchdogConfig())
        if daemon_factory is None:
            daemon_factory = default_daemon_factory(daemon)
        trace_path = None if trace is None else str(trace)
        tracer = Tracer(sink=None)
        root_cm = tracer.span("campaign", workers=self.config.workers,
                              campaign=cid)
        root_span = root_cm.__enter__()
        if sampler is None and profile is not None:
            sampler = Sampler()
        sampler = as_sampler(sampler)
        cell = "%s:%s:%s" % (type(daemon).__name__, client_name,
                             budget)
        golden = self.goldens.get(cell)
        golden_reused = golden is not None
        if golden is None:
            with tracer.span("golden-run") as span:
                if sampler is not None:
                    with sampler.host_phase("golden-run"):
                        golden = record_golden(daemon, client_factory,
                                               budget)
                else:
                    golden = record_golden(daemon, client_factory,
                                           budget)
                span.set("coverage_eips", len(golden.coverage))
            self.goldens[cell] = golden
        if ranges is None:
            ranges = daemon.auth_ranges()
        points = model.enumerate_points(daemon.module, ranges, kinds)
        if max_points is not None:
            points = points[:max_points]
        scheduler = CampaignScheduler(
            points, unit_instructions=self.config.unit_instructions)
        resumed_quarantined = {}
        if resume and journal is not None:
            expected = {"daemon": type(daemon).__name__,
                        "client": client_name, "encoding": encoding,
                        "model": model.name}
            metas, results, quarantined = load_shard_journals(
                discover_shard_journals(journal),
                strict=not journal_salvage)
            for meta in metas:
                validate_journal_meta(meta, expected, journal)
            scheduler.preload(results, quarantined)
            resumed_quarantined = {
                key: record for key, record in quarantined.items()
                if key in scheduler.order}
        state = FleetCampaignState(
            cid, daemon, client_name, client_factory, encoding, model,
            kinds, budget, points, scheduler, golden, golden_reused,
            journal, resume, retries, watchdog_config, daemon_factory,
            ranges, tracer, trace_path, root_cm, root_span, metrics,
            forensics, journal_fsync, journal_salvage, full_restore,
            prune, audit_fraction, audit_seed, progress, on_unit,
            resumed_quarantined,
            telemetry_campaign=telemetry_campaign, sampler=sampler,
            profile=profile)
        self.campaigns[cid] = state
        self._emit(state, "golden", reused=golden_reused,
                   coverage_eips=len(golden.coverage))
        self._emit(state, "campaign-started", points=len(points),
                   workers=self.config.workers,
                   resumed=len(scheduler.results))
        heartbeat = self.config.heartbeat_timeout
        if heartbeat is None:
            wall = watchdog_config.wall_clock_limit or 60.0
            heartbeat = 2.0 * wall + 30.0
            self._heartbeat_timeout = max(
                self._heartbeat_timeout or 0.0, heartbeat)
        _LOGGER.info("campaign %s submitted: %s %s (%d points, "
                     "%s golden)", cid, type(daemon).__name__,
                     client_name, len(points),
                     "warm" if golden_reused else "cold")
        return cid

    def finished(self, cid):
        state = self.campaigns[cid]
        return (state.finished or state.interrupted is not None)

    # -- the supervision loop ------------------------------------------

    def pump(self):
        """One supervision iteration: drain messages, check liveness,
        respawn, assign units, fall back inline when out of workers."""
        self._pump_messages()
        now = time.monotonic()
        for slot in list(self.slots.values()):
            if slot.status in (IDLE, BUSY):
                self._check_liveness(slot, now)
            elif slot.status == BACKOFF and now >= slot.resume_due:
                self._respawn(slot)
        if not self._draining:
            self._assign()
            self._inline_fallback()

    def _pump_messages(self):
        by_conn = {slot.conn: slot for slot in self.slots.values()
                   if slot.conn is not None}
        if not by_conn:
            time.sleep(self.config.poll_interval)
            return
        ready = _mp_connection.wait(list(by_conn),
                                    timeout=self.config.poll_interval)
        for conn in ready:
            self._drain_conn(by_conn[conn], conn)

    def _drain_conn(self, slot, conn):
        while True:
            try:
                if not conn.poll():
                    return
                message = conn.recv()
            except (EOFError, OSError) as error:
                # Normal teardown after ``bye``; while the slot still
                # has work it means the worker died mid-send.
                if slot.status == BUSY:
                    self.events["pipe_errors"] += 1
                    _LOGGER.warning(
                        "worker %d incarnation %d: message channel "
                        "torn while busy (%s); worker presumed dead "
                        "mid-send", slot.worker, slot.incarnation,
                        type(error).__name__)
                conn.close()
                if slot.conn is conn:
                    slot.conn = None
                return
            self._handle(slot, message)

    def _handle(self, slot, message):
        kind, worker, incarnation = message[0], message[1], message[2]
        if worker != slot.worker or incarnation != slot.incarnation:
            self.events["stale_messages"] += 1
            return
        slot.last_beat = time.monotonic()
        slot.dead_since = None
        if kind == "hello" or kind == "bye":
            return
        cid = message[3]
        state = self.campaigns.get(cid)
        if state is None:
            self.events["stale_messages"] += 1
            return
        if kind == "progress":
            state.partials[slot.worker] = message[5]
            state.report_progress()
        elif kind == "unit-done":
            unit_id, payload = message[4], message[5]
            self._unit_done(slot, state, unit_id, payload)
        elif kind == "unit-checkpoint":
            self.events["checkpoints"] += 1
            self._release_unit(slot, state, salvage=True)
        elif kind == "unit-error":
            self.events["worker_errors"] += 1
            unit_id, detail = message[4], message[5]
            self.failures.append((slot.worker, detail))
            slot.failures.append(detail)
            _LOGGER.warning("worker %d: unit %s of %s errored:\n%s",
                            slot.worker, unit_id, cid, detail)
            self._release_unit(slot, state, salvage=True)

    def _unit_done(self, slot, state, unit_id, payload):
        if slot.current is None or slot.current[1].unit_id != unit_id:
            self.events["stale_messages"] += 1
            return
        unit = slot.current[1]
        scheduler = state.scheduler
        for record in payload["results"]:
            scheduler.record(_record_key(record), record)
        for record in payload["quarantined"]:
            from ..analysis.serialize import point_from_dict
            key = _point_key(point_from_dict(record["point"]))
            scheduler.record_quarantine(key, record)
        scheduler.complete(unit)
        state.payloads[unit.index] = payload
        state.executed += payload["timing"].get("executed", 0)
        state.partials.pop(slot.worker, None)
        slot.current = None
        slot.status = IDLE
        if state.sampler is not None:
            state.sampler.absorb_dict(payload.get("profile"))
        self._mark_unit(state, unit, status="done",
                        records=len(payload["results"])
                        + len(payload["quarantined"]))
        self._emit(state, "unit-finished", unit=unit.unit_id,
                   worker=slot.worker,
                   results=len(payload["results"]),
                   quarantined=len(payload["quarantined"]),
                   completed=scheduler.completed,
                   total=scheduler.total)
        if self.telemetry is not None:
            self.telemetry.emit_outcomes(state.telemetry_campaign,
                                         payload["results"])
        state.report_progress()
        if state.on_unit is not None:
            state.on_unit(state, unit, payload)

    def _mark_unit(self, state, unit, status, records=0, worker=None):
        """Parent-side unit marker in the *base* journal (workers own
        only their ``.shardK`` files, so the base path has a single
        appender and carries pure progress metadata: ``repro status``
        and ``repro top`` read in-flight units and the live ETA from
        it)."""
        if state.journal is None:
            return
        try:
            CampaignJournal.mark_unit(
                state.journal, unit.unit_id, records,
                campaign=state.cid, status=status,
                total=state.scheduler.total)
        except OSError:
            pass          # advisory metadata only, never fatal

    def _release_unit(self, slot, state, salvage):
        """Give a unit back to its scheduler (worker checkpointed,
        errored or died): salvage what its journal holds, requeue the
        uncovered remainder."""
        if slot.current is None:
            return
        unit = slot.current[1]
        slot.current = None
        state.partials.pop(slot.worker, None)
        if slot.status == BUSY:
            slot.status = IDLE
        if salvage:
            self._salvage_unit(state, unit, slot.worker)
        state.scheduler.requeue(unit)

    def _salvage_unit(self, state, unit, worker):
        """Recover what a worker already journaled for *unit* (only
        its own points: the worker journal also holds earlier units,
        whose payloads were already counted)."""
        if state.journal is None:
            return
        path = shard_journal_path(state.journal, worker)
        try:
            __, results, quarantined = CampaignJournal.load(
                path, strict=False)
        except (FileNotFoundError, JournalError):
            return
        unit_keys = set(unit.keys)
        new_results = {
            key: record for key, record in results.items()
            if key in unit_keys and key not in state.scheduler.results}
        new_quarantined = {
            key: record for key, record in quarantined.items()
            if key in unit_keys
            and key not in state.scheduler.quarantined}
        for key, record in new_results.items():
            state.scheduler.record(key, record)
        for key, record in new_quarantined.items():
            state.scheduler.record_quarantine(key, record)
        salvaged = len(new_results) + len(new_quarantined)
        if salvaged:
            self.events["salvaged_points"] += salvaged
            # No unit payload will arrive for these records: rebuild
            # their share of the deterministic metrics so the exact
            # aggregation still matches a serial run.
            from ..analysis.serialize import result_from_dict
            registry = declare_campaign_metrics(MetricsRegistry())
            for record in new_results.values():
                record_result_metrics(registry,
                                      result_from_dict(record))
            registry.counter("quarantined").inc(len(new_quarantined))
            state.payloads[unit.index] = {
                "results": [], "quarantined": [],
                "timing": {"shard": worker, "unit": unit.unit_id,
                           "executed": 0, "salvaged": salvaged},
                "metrics": registry.as_dict(),
                "trace": None,
            }
            _LOGGER.info("salvaged %d journaled record(s) of unit %s "
                         "from worker %d", salvaged, unit.unit_id,
                         worker)

    # -- liveness / respawn --------------------------------------------

    def _check_liveness(self, slot, now):
        process = slot.process
        if not process.is_alive():
            if slot.dead_since is None:
                slot.dead_since = now
            elif now - slot.dead_since >= self.config.dead_grace:
                self._failure(
                    slot, "worker %d incarnation %d died (exit code "
                    "%s)" % (slot.worker, slot.incarnation,
                             process.exitcode))
        elif (slot.status == BUSY and self._heartbeat_timeout
                and now - slot.last_beat > self._heartbeat_timeout):
            self.events["wedged"] += 1
            process.kill()
            join_process(process)
            self._failure(
                slot, "worker %d incarnation %d wedged: no heartbeat "
                "for %.0fs" % (slot.worker, slot.incarnation,
                               now - slot.last_beat))

    def _failure(self, slot, detail):
        slot.failures.append(detail)
        self.failures.append((slot.worker, detail))
        slot.dead_since = None
        if slot.current is not None:
            cid = slot.current[0]
            state = self.campaigns.get(cid)
            if state is not None:
                self._release_unit(slot, state, salvage=True)
        if slot.restarts >= slot.max_restarts:
            slot.status = RETIRED
            self.events["failed_shards"] += 1
            self._emit_fleet("worker-retired", worker=slot.worker,
                             incarnation=slot.incarnation,
                             restarts=slot.restarts)
            _LOGGER.warning(
                "%s after %d restart(s); retiring worker %d (its "
                "units migrate to siblings)", detail.splitlines()[0],
                slot.restarts, slot.worker)
            return
        slot.restarts += 1
        delay = backoff_delay(self.config, slot.restarts)
        slot.status = BACKOFF
        slot.resume_due = time.monotonic() + delay
        self._emit_fleet("worker-backoff", worker=slot.worker,
                         incarnation=slot.incarnation,
                         restarts=slot.restarts, delay=round(delay, 3))
        _LOGGER.warning("%s; respawning in %.1fs (restart %d/%d)",
                        detail.splitlines()[0], delay, slot.restarts,
                        slot.max_restarts)

    def _respawn(self, slot):
        self.events["respawns"] += 1
        slot.incarnation += 1
        self._emit_fleet("worker-respawn", worker=slot.worker,
                         incarnation=slot.incarnation,
                         restarts=slot.restarts)
        for state in self.campaigns.values():
            state.tracer.instant(
                "fleet-respawn", cat="supervisor", worker=slot.worker,
                incarnation=slot.incarnation)
            break
        _LOGGER.info("respawning worker %d (incarnation %d)",
                     slot.worker, slot.incarnation)
        self._spawn(slot)

    # -- assignment ----------------------------------------------------

    def _assign(self):
        idle = [slot for slot in self.slots.values()
                if slot.status == IDLE and slot.process is not None
                and slot.process.is_alive()]
        if not idle:
            return
        cids = sorted(cid for cid, state in self.campaigns.items()
                      if state.interrupted is None)
        if not cids:
            return
        for slot in idle:
            assigned = False
            for offset in range(len(cids)):
                cid = cids[(self._assign_rotor + offset) % len(cids)]
                state = self.campaigns[cid]
                unit = state.scheduler.take()
                if unit is None:
                    continue
                if state.scheduler.attempts(unit) \
                        > self.config.unit_attempts:
                    # bounced between dying workers too often: the
                    # parent finishes it with its own daemon.
                    self._run_unit_inline(state, unit)
                    continue
                if self._dispatch(slot, state, unit):
                    self._assign_rotor = (self._assign_rotor + offset
                                          + 1) % len(cids)
                    assigned = True
                    break
                state.scheduler.requeue(unit)
            if not assigned:
                return

    def _dispatch(self, slot, state, unit):
        try:
            if state.cid not in slot.known:
                slot.conn.send(("campaign", state.context()))
                slot.known.add(state.cid)
            slot.conn.send(("unit", state.cid, unit))
        except (BrokenPipeError, OSError, AttributeError):
            # dead worker caught at send time; liveness will handle it
            return False
        slot.current = (state.cid, unit)
        slot.status = BUSY
        slot.last_beat = time.monotonic()
        self._mark_unit(state, unit, status="started")
        self._emit(state, "unit-started", unit=unit.unit_id,
                   worker=slot.worker, points=len(unit.points))
        return True

    # -- inline fallback -----------------------------------------------

    def _inline_fallback(self):
        """When every slot is retired, finish remaining units in the
        parent process with the campaigns' own daemons (which are
        known-good: they enumerated and ran golden)."""
        if any(slot.status in (IDLE, BUSY, BACKOFF)
               for slot in self.slots.values()):
            return
        pending = [state for state in self.campaigns.values()
                   if not state.finished and state.interrupted is None]
        if not pending:
            return
        self.events["degraded"] += 1
        for state in pending:
            while True:
                unit = state.scheduler.take()
                if unit is None:
                    break
                self._run_unit_inline(state, unit)

    def _run_unit_inline(self, state, unit):
        from ..analysis.serialize import (quarantined_to_dict,
                                          result_to_dict)
        self.events["inline_points"] += len(unit.points)
        _LOGGER.warning("running unit %s of %s inline in the parent "
                        "(%d points)", unit.unit_id, state.cid,
                        len(unit.points))
        journal = (shard_journal_path(state.journal, self._inline_tid)
                   if state.journal is not None else None)
        tracer = (Tracer(sink=None, tid=self._inline_tid + 1)
                  if state.trace_path is not None else None)
        runner = CampaignRunner(
            state.daemon, state.client_name, state.client_factory,
            encoding=state.encoding, kinds=state.kinds,
            budget=state.budget, points=list(unit.points),
            ranges=state.ranges, journal=journal, resume=True,
            retries=state.retries,
            watchdog=Watchdog(state.watchdog_config),
            fault_model=state.model, trace=tracer,
            forensics=state.forensics, trace_root="shard",
            trace_attrs={"shard": self._inline_tid,
                         "unit": unit.unit_id, "inline": True},
            journal_fsync=state.journal_fsync, journal_salvage=True,
            full_restore=state.full_restore,
            session_cache=self._inline_sessions,
            prune=state.prune, audit_fraction=state.audit_fraction,
            audit_seed=state.audit_seed, golden=state.golden,
            # inline units run in the parent, feeding the campaign's
            # own sampler directly (no profile payload to fold).
            sampler=state.sampler)
        self._mark_unit(state, unit, status="started")
        self._emit(state, "unit-started", unit=unit.unit_id,
                   worker=self._inline_tid, points=len(unit.points),
                   inline=True)
        campaign = runner.run()
        unit_keys = set(unit.keys)
        quarantined = [entry for entry in campaign.quarantined
                       if _point_key(entry.point) in unit_keys]
        metrics = campaign.metrics
        metrics["counters"]["quarantined"] = len(quarantined)
        timing = dict(campaign.timing or {})
        timing.update(shard=self._inline_tid, unit=unit.unit_id,
                      points=len(unit.points), inline=True)
        payload = {
            "results": [result_to_dict(result)
                        for result in campaign.results],
            "quarantined": [quarantined_to_dict(entry)
                            for entry in quarantined],
            "timing": timing,
            "metrics": metrics,
            "trace": tracer.events() if tracer is not None else None,
        }
        scheduler = state.scheduler
        for record in payload["results"]:
            scheduler.record(_record_key(record), record)
        for record in payload["quarantined"]:
            from ..analysis.serialize import point_from_dict
            key = _point_key(point_from_dict(record["point"]))
            scheduler.record_quarantine(key, record)
        scheduler.complete(unit)
        state.payloads[unit.index] = payload
        state.executed += payload["timing"].get("executed", 0)
        self._mark_unit(state, unit, status="done",
                        records=len(payload["results"])
                        + len(payload["quarantined"]))
        self._emit(state, "unit-finished", unit=unit.unit_id,
                   worker=self._inline_tid,
                   results=len(payload["results"]),
                   quarantined=len(payload["quarantined"]),
                   completed=scheduler.completed,
                   total=scheduler.total, inline=True)
        if self.telemetry is not None:
            self.telemetry.emit_outcomes(state.telemetry_campaign,
                                         payload["results"])
        state.report_progress()
        if state.on_unit is not None:
            state.on_unit(state, unit, payload)

    # -- checkpoint drain ----------------------------------------------

    def drain(self, reason):
        """Graceful checkpoint: SIGTERM busy workers, collect their
        unit checkpoints, mark every unfinished campaign interrupted.
        The fleet stays alive (idle workers keep their warm caches);
        call :meth:`stop` to shut it down."""
        self._draining = True
        self.events["checkpoint_exits"] += 1
        _LOGGER.warning("checkpoint requested (%s): draining fleet",
                        reason)
        for state in self.campaigns.values():
            state.tracer.instant("fleet-checkpoint", cat="supervisor",
                                 reason=reason)
        for slot in self.slots.values():
            if slot.status == BUSY and slot.process is not None \
                    and slot.process.is_alive():
                slot.process.terminate()
        deadline = time.monotonic() + self.config.drain_timeout
        while (any(slot.status == BUSY for slot in self.slots.values())
               and time.monotonic() < deadline):
            self._pump_messages()
            for slot in self.slots.values():
                if slot.status == BUSY and slot.process is not None \
                        and not slot.process.is_alive() \
                        and slot.conn is None:
                    # died instead of checkpointing: salvage + requeue
                    cid = slot.current[0]
                    state = self.campaigns.get(cid)
                    if state is not None:
                        self._release_unit(slot, state, salvage=True)
        self._pump_messages()
        for slot in self.slots.values():
            if slot.status != BUSY:
                continue
            if slot.process is not None and slot.process.is_alive():
                slot.process.kill()
                join_process(slot.process)
            cid, state = slot.current[0], None
            state = self.campaigns.get(cid)
            if state is not None:
                self._release_unit(slot, state, salvage=True)
            slot.status = RETIRED
        for state in self.campaigns.values():
            if not state.finished and state.interrupted is None:
                state.interrupted = reason
                self._emit(state, "checkpoint", reason=reason,
                           completed=state.scheduler.completed)
        self._draining = False

    # -- finalize ------------------------------------------------------

    def finalize(self, cid):
        """Merge a finished campaign into a
        :class:`~repro.injection.campaign.CampaignResult` (or raise
        :class:`~repro.injection.runner.CampaignInterrupted` for a
        drained one); flushes its trace and metrics sinks either way
        and forgets the campaign."""
        state = self.campaigns.pop(cid)
        state.root_span.set("experiments",
                            len(state.scheduler.results))
        try:
            state.root_cm.__exit__(None, None, None)
        except Exception:
            pass
        if state.interrupted is not None or not state.finished:
            registry = declare_campaign_metrics(MetricsRegistry())
            record_supervision_metrics(registry, self.events)
            self._flush_observability(state, registry)
            raise CampaignInterrupted(
                state.interrupted or "incomplete",
                journal=state.journal,
                completed=state.scheduler.completed)
        if state.sampler is not None:
            with state.sampler.host_phase("merge"):
                campaign, registry = self._merge(state)
        else:
            campaign, registry = self._merge(state)
        self._emit(state, "campaign-finished",
                   counts=campaign.counts(),
                   quarantined=len(campaign.quarantined))
        self._flush_observability(state, registry)
        return campaign

    def _flush_observability(self, state, registry):
        if state.profile_path is not None \
                and state.sampler is not None:
            state.sampler.save(state.profile_path)
        if state.trace_path is not None:
            events = list(state.tracer.events())
            for index in sorted(state.payloads):
                unit_events = state.payloads[index].get("trace")
                if unit_events:
                    events.extend(unit_events)
            merge_trace_files(state.trace_path, events, [])
        if state.metrics_path is not None and registry is not None:
            registry.save(state.metrics_path)

    def _merge(self, state):
        from ..analysis.serialize import (quarantined_from_dict,
                                          result_from_dict)
        from .campaign import CampaignResult
        scheduler = state.scheduler
        campaign = CampaignResult(
            daemon_name=type(state.daemon).__name__,
            client_name=state.client_name, encoding=state.encoding,
            fault_model=state.model.name, golden=state.golden)
        campaign.results = [result_from_dict(record)
                            for record in scheduler.merged_results()]
        campaign.quarantined = [
            quarantined_from_dict(record)
            for record in scheduler.merged_quarantined()]
        perf = PerfCounters()
        perf.absorb_dict(state.golden.perf)
        for index in sorted(state.payloads):
            perf.absorb_dict(
                state.payloads[index]["timing"].get("perf"))
        wall_clock = time.monotonic() - state.started
        campaign.timing = campaign_timing(
            wall_clock=wall_clock,
            experiments=len(campaign.results)
            + len(campaign.quarantined),
            executed=state.executed,
            workers=self.config.workers,
            shards=[state.payloads[index]["timing"]
                    for index in sorted(state.payloads)],
            perf=perf.as_dict())
        # Exact metric aggregation, mirroring the parallel merge: unit
        # registries absorbed in unit order, then what only the parent
        # saw -- records preloaded from journals at submit, its own
        # golden run (or cell-cache reuse) and the fleet's supervision
        # counters.  The deterministic section comes out identical to
        # a serial run's.
        registry = declare_campaign_metrics(MetricsRegistry())
        for index in sorted(state.payloads):
            registry.absorb_dict(state.payloads[index].get("metrics"))
        order = scheduler.order
        resumed_results = sorted(
            (key for key in scheduler.resumed
             if key in scheduler.results), key=order.__getitem__)
        for key in resumed_results:
            record_result_metrics(
                registry, result_from_dict(scheduler.results[key]))
        registry.counter("runtime.resumed", volatile=True).inc(
            len(scheduler.resumed))
        registry.counter("quarantined").inc(
            len(state.resumed_quarantined))
        registry.gauge("points").set(scheduler.total)
        if state.golden_reused:
            registry.counter("runtime.golden_reused",
                             volatile=True).inc()
        else:
            registry.counter("runtime.golden_runs",
                             volatile=True).inc()
        parent_perf = PerfCounters()
        parent_perf.absorb_dict(state.golden.perf)
        record_runtime_metrics(registry, wall_clock, state.executed,
                               perf=parent_perf.as_dict(),
                               workers=self.config.workers)
        record_supervision_metrics(registry, self.events)
        campaign.metrics = registry.as_dict()
        return campaign, registry


# ----------------------------------------------------------------------
# One-shot facade (what the CLI's --workers path uses)

def run_fleet_campaign(daemon, client_name, client_factory, workers=2,
                       fleet=None, config=None, chaos=None,
                       deadline=None, graceful_signals=False,
                       telemetry=None, **options):
    """Run one campaign on a (possibly shared) warm fleet.

    With ``fleet=None`` a private fleet is started and stopped around
    the campaign -- the CLI's in-process thin-client path.  Passing an
    existing started :class:`WorkerFleet` reuses its warm workers (and
    leaves it running); the service front-end does exactly that.
    ``deadline``/``graceful_signals`` checkpoint the campaign through
    :meth:`WorkerFleet.drain`, raising
    :class:`~repro.injection.runner.CampaignInterrupted`.
    """
    owns = fleet is None
    if fleet is None:
        if config is None:
            config = FleetConfig(workers=workers)
        fleet = WorkerFleet(config, chaos=chaos, telemetry=telemetry)
        fleet.start()
    stop = {"reason": None}
    restore = (install_stop_handlers(
        lambda name: stop.__setitem__("reason", name))
        if graceful_signals else (lambda: None))
    deadline_at = (time.monotonic() + deadline
                   if deadline is not None else None)
    try:
        cid = fleet.submit(daemon, client_name, client_factory,
                           **options)
        while not fleet.finished(cid):
            fleet.pump()
            reason = stop["reason"]
            if reason is None and deadline_at is not None \
                    and time.monotonic() > deadline_at:
                reason = "deadline"
            if reason is not None:
                fleet.drain(reason)
                break
        return fleet.finalize(cid)
    finally:
        restore()
        if owns:
            fleet.stop()
