"""Deterministic chaos harness for the campaign fleet.

In the spirit of the source paper -- which injects faults into
daemons to see how they fail -- this module injects faults into our
*own* campaign harness to prove the supervision layer
(:mod:`repro.injection.supervisor`) degrades gracefully instead of
assuming it does.  A :class:`ChaosPolicy` is a picklable, seeded,
fully deterministic schedule of harness faults:

* **kill** -- the worker process ``os._exit``\\ s (any exit code,
  including the treacherous ``0``) right after journaling its N-th
  experiment, leaving the shard journal at a clean resume boundary;
* **stall** -- the worker sleeps past its heartbeat deadline, the
  signature of a wedged process that is alive but making no progress;
* **fail-write** -- a journal append raises ``ENOSPC``, the classic
  full-disk failure of long-running fleets.

Every action is gated on ``(shard, attempt)``: by default a fault
fires only in a worker's first incarnation (``attempt == 0``), so the
supervisor's respawn is not re-faulted and tests can also script
multi-attempt failures explicitly (kill attempts 0..K to exhaust the
restart budget and force degraded-mode completion).

Journal *file* corruption -- the on-disk half of the chaos model --
is covered by :func:`corrupt_journal_tail`, used by tests and the CI
chaos job against the salvage loader
(``CampaignJournal.load(strict=False)``).

The acceptance property for every recovery path is byte-identical
Table 1/3/5 and Figure 4 counts versus an undisturbed serial run;
``benchmarks/check_chaos.py`` gates it in CI.
"""

from __future__ import annotations

import errno
import os
import random
import time
from dataclasses import dataclass

#: action kinds.
KILL = "kill"
STALL = "stall"
FAIL_WRITE = "fail-write"

ACTION_KINDS = (KILL, STALL, FAIL_WRITE)


@dataclass(frozen=True)
class ChaosAction:
    """One scheduled harness fault.

    ``after`` counts *executed* experiments (for :data:`KILL` and
    :data:`STALL`) or journal record writes (for :data:`FAIL_WRITE`)
    within the targeted attempt; the action fires once, the first
    time the count reaches it.
    """

    kind: str
    shard: int
    after: int = 1
    attempt: int = 0
    #: stall duration -- longer than any heartbeat deadline by default.
    seconds: float = 3600.0
    #: kill exit status.  0 reproduces the historical silent-hang bug
    #: (a worker that dies "successfully" without its done payload).
    exit_code: int = 42

    def __post_init__(self):
        if self.kind not in ACTION_KINDS:
            raise ValueError("unknown chaos action %r (have: %s)"
                             % (self.kind, ", ".join(ACTION_KINDS)))


@dataclass(frozen=True)
class ChaosPolicy:
    """A deterministic schedule of :class:`ChaosAction`\\ s.

    Picklable pure data: the policy crosses the fork boundary inside
    the worker spec, and each worker derives its own
    :class:`ChaosAgent` for its ``(shard, attempt)`` incarnation.
    """

    actions: tuple = ()

    @classmethod
    def seeded(cls, seed, shards, max_point=8):
        """A reproducible single-kill + single-ENOSPC schedule drawn
        from *seed* -- the CI chaos job's input, printable from the
        seed alone."""
        rng = random.Random(seed)
        kill_shard = rng.randrange(shards)
        return cls(actions=(
            ChaosAction(kind=KILL, shard=kill_shard,
                        after=1 + rng.randrange(max_point),
                        exit_code=rng.choice((0, 1, 42))),
            ChaosAction(kind=FAIL_WRITE,
                        shard=rng.randrange(shards),
                        after=1 + rng.randrange(max_point)),
        ))

    def agent(self, shard, attempt):
        """The live hook object for one worker incarnation (or
        ``None`` when no action targets it, keeping the fast path
        unhooked)."""
        actions = tuple(action for action in self.actions
                        if action.shard == shard
                        and action.attempt == attempt)
        if not actions:
            return None
        return ChaosAgent(actions)

    def describe(self):
        return "; ".join(
            "%s shard %d attempt %d after %d"
            % (action.kind, action.shard, action.attempt, action.after)
            for action in self.actions) or "no actions"


class ChaosAgent:
    """Worker-side hook bundle for one ``(shard, attempt)``.

    ``on_point`` is called by the campaign runner after each executed
    (journaled) experiment; ``on_journal_write`` by the journal before
    each record append.  Each action fires at most once.
    """

    def __init__(self, actions):
        self._point_actions = [action for action in actions
                               if action.kind in (KILL, STALL)]
        self._write_actions = [action for action in actions
                               if action.kind == FAIL_WRITE]
        self._fired = set()

    def on_point(self, executed):
        for action in self._point_actions:
            if action in self._fired or executed < action.after:
                continue
            self._fired.add(action)
            if action.kind == KILL:
                # os._exit skips every atexit/finally: the harness
                # equivalent of a SIGKILL, except the exit code is
                # scriptable (0 reproduces the silent-hang bug).
                os._exit(action.exit_code)
            else:
                time.sleep(action.seconds)

    def on_journal_write(self, index):
        for action in self._write_actions:
            if action in self._fired or index < action.after:
                continue
            self._fired.add(action)
            raise OSError(errno.ENOSPC,
                          "chaos: no space left on device")


# ----------------------------------------------------------------------
# On-disk journal corruption (the other half of the fault model)

def corrupt_journal_tail(path, mode="garbage-line", seed=0):
    """Deterministically damage a journal file in place.

    ``truncate-tail``
        chop the final line mid-record (the on-disk signature of a
        SIGKILL during an append) -- tolerated even by strict loads;
    ``garbage-line``
        overwrite one complete mid-file line with non-JSON bytes (a
        torn sector / concurrent-writer artifact) -- fatal to strict
        loads, quarantined by ``strict=False`` salvage.

    Returns the 1-based line number that was damaged.
    """
    with open(path) as handle:
        lines = handle.read().splitlines(keepends=True)
    if not lines:
        raise ValueError("cannot corrupt empty journal %s" % path)
    if mode == "truncate-tail":
        victim = len(lines)
        lines[-1] = lines[-1][:max(1, len(lines[-1]) // 2)]
    elif mode == "garbage-line":
        # never the meta header (line 1): salvage keeps the meta so
        # resume validation still runs.
        if len(lines) < 2:
            raise ValueError("journal %s has no record lines" % path)
        victim = 2 + random.Random(seed).randrange(len(lines) - 1)
        victim = min(victim, len(lines))
        lines[victim - 1] = "\x00garbage {not json%d\n" % seed
    else:
        raise ValueError("unknown corruption mode %r" % mode)
    with open(path, "w") as handle:
        handle.writelines(lines)
    return victim
