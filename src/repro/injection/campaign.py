"""Selective-exhaustive injection campaigns (Sections 4-6).

A campaign fixes a daemon, a client access pattern, an encoding
(old = stock IA-32, new = the Table 4 re-encoding) and a fault model
(:mod:`repro.injection.faultmodels`; default: the paper's single-bit
branch flips), then runs the model's full experiment list over the
authentication functions and tallies the outcome distribution.
:class:`CampaignSpec` names one cell of that
daemon x client x encoding x fault-model space; specs are what get
enumerated, sharded, journaled and resumed.

Execution is delegated to the fault-tolerant engine in
:mod:`repro.injection.runner`: experiments are isolated (a harness
exception becomes one ``HARNESS_FAULT`` record instead of killing the
campaign), hangs are caught by a watchdog, and an optional JSONL
journal makes campaigns resumable (``journal=path, resume=True``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..apps.common import CONNECTION_INSTRUCTION_BUDGET
from .outcomes import (ALL_OUTCOMES, FAIL_SILENCE_VIOLATION,
                       FOLD_TO_PAPER, HANG, REFINED_OUTCOMES,
                       SECURITY_BREAKIN, SYSTEM_DETECTION)
from .targets import DEFAULT_TARGET_KINDS

ENCODING_OLD = "old"
ENCODING_NEW = "new"
ALL_ENCODINGS = (ENCODING_OLD, ENCODING_NEW)


@dataclass(frozen=True)
class CampaignSpec:
    """One cell of the campaign design space: which daemon, driven by
    which scripted client, under which instruction encoding, injected
    with which fault model.

    A spec is pure data (names, not objects), so it is picklable,
    journal-stampable and cheap to enumerate; :meth:`build_daemon`,
    :meth:`client_factory` and :meth:`model` resolve the names through
    the daemon and fault-model registries when a run is actually
    wanted.
    """

    daemon: str = "ftpd"
    client: str = "Client1"
    encoding: str = ENCODING_OLD
    fault_model: str = "branch-bit"

    def daemon_spec(self):
        from ..apps.registry import get_daemon_spec
        return get_daemon_spec(self.daemon)

    def build_daemon(self, **kwargs):
        return self.daemon_spec().build(**kwargs)

    def client_factory(self):
        return self.daemon_spec().client_factory(self.client)

    def model(self):
        from .faultmodels import get_fault_model
        return get_fault_model(self.fault_model)

    def label(self):
        return "%s %s %s %s" % (self.daemon, self.client,
                                self.encoding, self.fault_model)


def enumerate_specs(daemons=None, clients=None, encodings=(ENCODING_OLD,),
                    fault_models=None):
    """The daemon x client x encoding x fault-model product, as specs.

    ``None`` means "everything registered" for daemons and fault
    models, and "every client of that daemon" for clients.  This is
    the sweep the CI plugin matrix and extension studies iterate.
    """
    from ..apps.registry import available_daemons, get_daemon_spec
    from .faultmodels import available_fault_models
    if daemons is None:
        daemons = available_daemons()
    if fault_models is None:
        fault_models = available_fault_models()
    specs = []
    for daemon in daemons:
        daemon_clients = (clients if clients is not None
                          else get_daemon_spec(daemon).clients())
        for client in daemon_clients:
            for encoding in encodings:
                for fault_model in fault_models:
                    specs.append(CampaignSpec(
                        daemon=daemon, client=client,
                        encoding=encoding, fault_model=fault_model))
    return specs


@dataclass
class QuarantinedPoint:
    """A point whose outcome would not stabilise across re-executions
    (nondeterminism smoke signal); excluded from every tally, counted
    explicitly."""

    point: object
    location: str
    outcomes: tuple          # the disagreeing outcomes observed
    rounds: int              # retry rounds spent before giving up


@dataclass
class CampaignResult:
    """All experiments of one (daemon, client, encoding) campaign."""

    daemon_name: str
    client_name: str
    encoding: str
    fault_model: str = "branch-bit"
    results: list = field(default_factory=list)
    golden: object = None
    #: points excluded after quarantine-with-retry; never part of
    #: ``results`` or any percentage.
    quarantined: list = field(default_factory=list)
    #: wall-clock/throughput record (see
    #: :func:`repro.injection.runner.campaign_timing`); observational
    #: metadata only -- never part of any tally or comparison.
    timing: dict | None = None
    #: serialized metrics registry
    #: (:class:`repro.obs.metrics.MetricsRegistry`): outcome tallies,
    #: crash-latency histogram, quarantine/retry counts, plus a
    #: ``volatile`` section (wall clock, engine counters) that may
    #: differ between runs.  Observational only, like ``timing``.
    metrics: dict | None = None

    @property
    def total_runs(self):
        return len(self.results)

    @property
    def quarantined_count(self):
        return len(self.quarantined)

    def counts(self, refined=False):
        """Outcome tally.  The default folds the runner's refinements
        back onto the paper's five-way taxonomy (HANG into FSV, HF
        into NA) so Tables 1/3/5 are directly comparable; pass
        ``refined=True`` for the full seven-way breakdown."""
        tally = Counter(result.outcome for result in self.results)
        if refined:
            return {outcome: tally.get(outcome, 0)
                    for outcome in REFINED_OUTCOMES}
        folded = Counter()
        for outcome, count in tally.items():
            folded[FOLD_TO_PAPER.get(outcome, outcome)] += count
        return {outcome: folded.get(outcome, 0)
                for outcome in ALL_OUTCOMES}

    @property
    def activated_count(self):
        return sum(1 for result in self.results if result.activated)

    def percentage_of_activated(self, outcome):
        activated = self.activated_count
        if not activated:
            return 0.0
        table = self.counts(refined=outcome not in ALL_OUTCOMES)
        return 100.0 * table[outcome] / activated

    def crash_latencies(self):
        """Instruction counts between activation and crash (Figure 4)."""
        return [result.crash_latency for result in self.results
                if result.outcome == SYSTEM_DETECTION
                and result.crash_latency is not None]

    def by_location(self, outcomes=(SECURITY_BREAKIN,
                                    FAIL_SILENCE_VIOLATION, HANG)):
        """Location breakdown of selected outcomes (Table 3).  HANG is
        included by default because it folds into FSV there."""
        tally = Counter(result.location for result in self.results
                        if result.outcome in outcomes)
        return dict(tally)

    def results_with_outcome(self, outcome):
        return [result for result in self.results
                if result.outcome == outcome]


def run_campaign(daemon, client_name, client_factory,
                 encoding=ENCODING_OLD, kinds=DEFAULT_TARGET_KINDS,
                 budget=CONNECTION_INSTRUCTION_BUDGET, progress=None,
                 max_points=None, ranges=None, journal=None,
                 resume=False, retries=0, watchdog=None, workers=None,
                 daemon_factory=None, fault_model=None, trace=None,
                 metrics=None, forensics=False, deadline=None,
                 graceful_signals=False, journal_fsync=None,
                 journal_salvage=False, chaos=None, supervisor=None,
                 full_restore=False, session_cache=None, prune=False,
                 audit_fraction=0.0, audit_seed=0, telemetry=None,
                 telemetry_campaign=None, sampler=None, profile=None):
    """Run one full selective-exhaustive campaign.

    ``fault_model`` selects the injected fault family by registry name
    or instance (:mod:`repro.injection.faultmodels`); the default is
    the paper's ``branch-bit`` model, under which campaigns are
    byte-identical to the pre-plugin pipeline.

    ``max_points`` truncates the experiment list (used by fast tests);
    benchmarks always run the complete set.  ``ranges`` overrides the
    injected code regions (default: the daemon's authentication
    functions) -- used by extension experiments that target other
    security-relevant sections, e.g. the path-validation code.

    ``journal`` appends every result to a JSONL file as it completes;
    with ``resume=True`` already-journaled points are skipped, so a
    killed campaign restarts where it stopped with identical tallies.
    ``retries`` re-executes each activated experiment that many times
    and quarantines points whose outcome will not stabilise.

    ``workers=N`` (N > 1) shards the experiment list across N
    processes (:mod:`repro.injection.parallel`); tallies and tables
    are identical to a serial run, the journal becomes one
    ``<journal>.shardK`` file per worker, and ``daemon_factory``
    optionally overrides how each worker rebuilds its daemon.

    Observability (:mod:`repro.obs`): ``trace`` writes a Chrome-trace
    span file (parallel runs merge per-shard ``<trace>.shardK``
    sinks), ``metrics`` writes the serialized metrics registry (also
    attached as ``CampaignResult.metrics``), and ``forensics=True``
    captures the last-instructions ring plus a register/flags snapshot
    on every SD/HANG/HF record.  All three are observational: tables
    and tallies are byte-identical with any combination enabled.

    Resilience (:mod:`repro.injection.supervisor`): ``deadline``
    bounds the campaign's wall clock and ``graceful_signals=True``
    converts SIGTERM/SIGINT into a clean checkpoint -- both raise
    :class:`~repro.injection.runner.CampaignInterrupted` with a
    resumable journal.  ``journal_fsync=N`` fsyncs the journal every N
    records (durability against power loss), ``journal_salvage=True``
    quarantines corrupt journal lines on resume instead of raising,
    ``chaos`` injects harness faults from a
    :class:`~repro.injection.chaos.ChaosPolicy`, and ``supervisor``
    overrides the parallel runner's
    :class:`~repro.injection.supervisor.SupervisorConfig` (restart
    budget, backoff, heartbeat deadline).

    Pruning (:mod:`repro.injection.pruning`): ``prune=True`` partitions
    the points into equivalence classes, runs one representative per
    class and fans the outcome out to every member -- ``counts()``,
    tables and figures are byte-identical to the exhaustive sweep,
    journal records carry ``class_id``/``representative`` provenance.
    ``audit_fraction`` exhaustively re-runs a seeded
    (``audit_seed``) sample of classes and raises
    :class:`~repro.injection.pruning.PruningAuditError` on any member
    whose outcome diverges from its representative.

    ``full_restore=True`` disables the dirty-page snapshot restore and
    rewrites every memory region between experiments (the escape
    hatch; outcomes are byte-identical either way).  ``session_cache``
    shares breakpoint sessions across sequential serial campaigns --
    e.g. a fault-model sweep over the same daemon reuses one site
    snapshot per instruction (ignored by parallel runs, whose workers
    each keep a private cache).

    Telemetry (:mod:`repro.obs.events` / :mod:`repro.obs.sampler`):
    ``telemetry`` is an :class:`~repro.obs.events.EventBus` receiving
    typed campaign events (``telemetry_campaign`` labels them when one
    bus serves several campaigns); ``sampler`` attaches a
    deterministic instruction-count sampling profiler (an instance, a
    period, or ``True`` for the default period) and ``profile`` saves
    its merged profile JSON at that path.  Both are volatile-only:
    the deterministic metrics core, tables and figures are
    byte-identical with telemetry and sampling enabled.
    """
    if workers is not None and workers > 1:
        from .parallel import ParallelCampaignRunner
        runner = ParallelCampaignRunner(
            daemon, client_name, client_factory, workers=workers,
            encoding=encoding, kinds=kinds, budget=budget,
            progress=progress, max_points=max_points, ranges=ranges,
            journal=journal, resume=resume, retries=retries,
            watchdog=watchdog, daemon_factory=daemon_factory,
            fault_model=fault_model, trace=trace, metrics=metrics,
            forensics=forensics, deadline=deadline,
            graceful_signals=graceful_signals,
            journal_fsync=journal_fsync,
            journal_salvage=journal_salvage, chaos=chaos,
            supervisor=supervisor, full_restore=full_restore,
            prune=prune, audit_fraction=audit_fraction,
            audit_seed=audit_seed, telemetry=telemetry,
            telemetry_campaign=telemetry_campaign, sampler=sampler,
            profile=profile)
        return runner.run()
    from .runner import CampaignRunner
    # a serial run is "shard 0, attempt 0" to a chaos policy (an
    # already-built agent passes through).
    chaos_agent = (chaos.agent(0, 0) if hasattr(chaos, "agent")
                   else chaos)
    runner = CampaignRunner(daemon, client_name, client_factory,
                            encoding=encoding, kinds=kinds,
                            budget=budget, progress=progress,
                            max_points=max_points, ranges=ranges,
                            journal=journal, resume=resume,
                            retries=retries, watchdog=watchdog,
                            fault_model=fault_model, trace=trace,
                            metrics=metrics, forensics=forensics,
                            deadline=deadline,
                            graceful_signals=graceful_signals,
                            journal_fsync=journal_fsync,
                            journal_salvage=journal_salvage,
                            chaos=chaos_agent,
                            full_restore=full_restore,
                            telemetry=telemetry,
                            telemetry_campaign=telemetry_campaign,
                            sampler=sampler, profile=profile,
                            session_cache=session_cache, prune=prune,
                            audit_fraction=audit_fraction,
                            audit_seed=audit_seed)
    return runner.run()


def run_spec(spec, daemon=None, **kwargs):
    """Run the campaign a :class:`CampaignSpec` names.

    The daemon is compiled through the registry (pass ``daemon=`` to
    reuse an already-compiled instance); every execution option of
    :func:`run_campaign` (``workers``, ``journal``, ``resume``, ...)
    passes through unchanged.
    """
    if daemon is None:
        daemon = spec.build_daemon()
    return run_campaign(daemon, spec.client, spec.client_factory(),
                        encoding=spec.encoding,
                        fault_model=spec.fault_model, **kwargs)


def _instruction_bytes(module, point):
    offset = point.instruction_address - module.text_base
    return bytes(module.text[offset:offset + point.instruction_length])


def run_both_encodings(daemon, client_name, client_factory, **kwargs):
    """Convenience: the Table 1 and Table 5 campaigns for one client.

    A ``journal`` argument is split into ``<journal>.old`` and
    ``<journal>.new`` so the two campaigns never share a file.
    """
    journal = kwargs.pop("journal", None)
    old = run_campaign(daemon, client_name, client_factory,
                       encoding=ENCODING_OLD,
                       journal=None if journal is None
                       else "%s.old" % journal, **kwargs)
    new = run_campaign(daemon, client_name, client_factory,
                       encoding=ENCODING_NEW,
                       journal=None if journal is None
                       else "%s.new" % journal, **kwargs)
    return old, new
