"""Selective-exhaustive injection campaigns (Sections 4-6).

A campaign fixes a daemon, a client access pattern and an encoding
(old = stock IA-32, new = the Table 4 re-encoding), then runs one
experiment per bit of every branch instruction in the authentication
functions and tallies the outcome distribution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..apps.common import CONNECTION_INSTRUCTION_BUDGET
from ..encoding import inject_under_new_encoding
from ..x86 import decode
from .golden import record_golden
from .injector import BreakpointSession
from .locations import classify_location
from .outcomes import (ALL_OUTCOMES, classify_completed_run,
                       FAIL_SILENCE_VIOLATION, InjectionResult,
                       NOT_ACTIVATED, SECURITY_BREAKIN, SYSTEM_DETECTION)
from .targets import DEFAULT_TARGET_KINDS, enumerate_points

ENCODING_OLD = "old"
ENCODING_NEW = "new"


@dataclass
class CampaignResult:
    """All experiments of one (daemon, client, encoding) campaign."""

    daemon_name: str
    client_name: str
    encoding: str
    results: list = field(default_factory=list)
    golden: object = None

    @property
    def total_runs(self):
        return len(self.results)

    def counts(self):
        tally = Counter(result.outcome for result in self.results)
        return {outcome: tally.get(outcome, 0) for outcome in ALL_OUTCOMES}

    @property
    def activated_count(self):
        return sum(1 for result in self.results if result.activated)

    def percentage_of_activated(self, outcome):
        activated = self.activated_count
        if not activated:
            return 0.0
        return 100.0 * self.counts()[outcome] / activated

    def crash_latencies(self):
        """Instruction counts between activation and crash (Figure 4)."""
        return [result.crash_latency for result in self.results
                if result.outcome == SYSTEM_DETECTION
                and result.crash_latency is not None]

    def by_location(self, outcomes=(SECURITY_BREAKIN,
                                    FAIL_SILENCE_VIOLATION)):
        """Location breakdown of selected outcomes (Table 3)."""
        tally = Counter(result.location for result in self.results
                        if result.outcome in outcomes)
        return dict(tally)

    def results_with_outcome(self, outcome):
        return [result for result in self.results
                if result.outcome == outcome]


def run_campaign(daemon, client_name, client_factory,
                 encoding=ENCODING_OLD, kinds=DEFAULT_TARGET_KINDS,
                 budget=CONNECTION_INSTRUCTION_BUDGET, progress=None,
                 max_points=None, ranges=None):
    """Run one full selective-exhaustive campaign.

    ``max_points`` truncates the experiment list (used by fast tests);
    benchmarks always run the complete set.  ``ranges`` overrides the
    injected code regions (default: the daemon's authentication
    functions) -- used by extension experiments that target other
    security-relevant sections, e.g. the path-validation code.
    """
    golden = record_golden(daemon, client_factory, budget)
    if ranges is None:
        ranges = daemon.auth_ranges()
    points = enumerate_points(daemon.module, ranges, kinds)
    if max_points is not None:
        points = points[:max_points]
    campaign = CampaignResult(daemon_name=type(daemon).__name__,
                              client_name=client_name, encoding=encoding,
                              golden=golden)
    session = None
    session_address = None
    for index, point in enumerate(points):
        location = classify_location(point)
        if point.instruction_address not in golden.coverage:
            campaign.results.append(InjectionResult(
                point=point, location=location, outcome=NOT_ACTIVATED))
            continue
        if session_address != point.instruction_address:
            session = BreakpointSession(daemon, client_factory,
                                        point.instruction_address, budget)
            session_address = point.instruction_address
            if not session.reached:
                # Defensive: coverage said reachable; treat as NA.
                session = None
                session_address = None
                campaign.results.append(InjectionResult(
                    point=point, location=location,
                    outcome=NOT_ACTIVATED,
                    detail="coverage/breakpoint disagreement"))
                continue
        if session is None:
            campaign.results.append(InjectionResult(
                point=point, location=location, outcome=NOT_ACTIVATED))
            continue
        if encoding == ENCODING_NEW:
            raw = _instruction_bytes(daemon.module, point)
            replacement = inject_under_new_encoding(raw, point.byte_offset,
                                                    point.bit)
            status, kernel, client = session.run_with_bytes(
                point.instruction_address, replacement)
        else:
            status, kernel, client = session.run_with_flip(
                point.flip_address, point.bit)
        outcome, detail = classify_completed_run(
            golden, client, kernel.channel.normalized_transcript(), status)
        latency = None
        if status.kind == "crash":
            latency = status.instret - session.activation_instret
        campaign.results.append(InjectionResult(
            point=point, location=location, outcome=outcome,
            activated=True,
            activation_instret=session.activation_instret,
            exit_kind=status.kind, exit_code=status.exit_code,
            signal=status.signal, crash_latency=latency,
            broke_in=client.broke_in(),
            crashed_after_breakin=(outcome == SECURITY_BREAKIN
                                   and status.kind == "crash"),
            detail=detail))
        if progress is not None:
            progress(index + 1, len(points))
    return campaign


def _instruction_bytes(module, point):
    offset = point.instruction_address - module.text_base
    return bytes(module.text[offset:offset + point.instruction_length])


def run_both_encodings(daemon, client_name, client_factory, **kwargs):
    """Convenience: the Table 1 and Table 5 campaigns for one client."""
    old = run_campaign(daemon, client_name, client_factory,
                       encoding=ENCODING_OLD, **kwargs)
    new = run_campaign(daemon, client_name, client_factory,
                       encoding=ENCODING_NEW, **kwargs)
    return old, new
