"""Pluggable fault models.

The paper's experiment -- single-bit flips in the branch instructions
of the authentication sections -- is one point in a much larger design
space.  A :class:`FaultModel` packages everything the campaign engine
needs to sweep one region of that space:

* **point enumeration** -- which experiments exist for a module and a
  set of code ranges (``enumerate_points``);
* **fault application** -- how one experiment's corruption is applied
  at the breakpoint (``apply``), including how it composes with the
  Table 4 re-encoding evaluation when the model mutates text bytes;
* **serialization** -- how its points round-trip through the JSONL
  journal and campaign JSON (``point_to_dict``/``point_from_dict``),
  so journaled campaigns of any model resume correctly.

Models register themselves in :data:`FAULT_MODELS` under a CLI-stable
name; :func:`get_fault_model` resolves names (or instances) anywhere a
campaign is constructed.  The paper's original experiment is
:class:`BranchBitFlip`, and stays the default everywhere -- a default
campaign is byte-identical to the pre-plugin pipeline.

Shipped models
--------------

==============  ============  ==================================================
class           name          fault
==============  ============  ==================================================
BranchBitFlip   branch-bit    one bit of one branch-instruction byte (the paper)
MultiBitBurst   burst2        two adjacent bits of one branch byte (stresses the
                              Table 4 minimum-Hamming-distance-2 claim)
RegisterBitFlip register-bit  one bit of one GPR at activation (data error,
                              Example 3 family)
MemoryBitFlip   memory-bit    one bit of a stack or data byte at activation
==============  ============  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..encoding import inject_mask_under_new_encoding
from ..x86.registers import REG32_NAMES
from .locations import classify_location, LOCATION_MISC
from .targets import (branch_instructions, DEFAULT_TARGET_KINDS,
                      enumerate_points as enumerate_branch_points)

#: registry of fault-model classes keyed by their CLI name.
FAULT_MODELS = {}

#: the model every pre-plugin campaign implicitly used.
DEFAULT_FAULT_MODEL = "branch-bit"


def register_fault_model(cls):
    """Class decorator: publish a model under its ``name``."""
    if not cls.name:
        raise ValueError("fault model %r has no name" % cls)
    FAULT_MODELS[cls.name] = cls
    return cls


def available_fault_models():
    """Registered model names, sorted for stable CLI/help output."""
    return sorted(FAULT_MODELS)


def get_fault_model(model=None):
    """Resolve *model* (name, class, instance or ``None``) to an
    instance.  ``None`` means the paper's :class:`BranchBitFlip`."""
    if model is None:
        model = DEFAULT_FAULT_MODEL
    if isinstance(model, FaultModel):
        return model
    if isinstance(model, type) and issubclass(model, FaultModel):
        return model()
    try:
        return FAULT_MODELS[model]()
    except KeyError:
        raise KeyError("unknown fault model %r (have: %s)"
                       % (model, ", ".join(available_fault_models())))


# ----------------------------------------------------------------------
# The interface

class FaultModel:
    """One family of injectable faults.

    Subclasses set ``name`` (the registry/CLI identifier) and
    ``ptype`` (the discriminator stamped into serialized points;
    ``None`` keeps the legacy pre-plugin record shape so old journals
    and new BranchBitFlip journals are interchangeable).
    """

    name = ""
    ptype = None
    #: whether the model corrupts *text* bytes, i.e. whether the
    #: Section 6.2 map->flip->map-back evaluation changes what is
    #: injected under ``encoding="new"``.  Data-error models run
    #: identically under both encodings.
    reencodes = False

    def enumerate_points(self, module, ranges,
                         kinds=DEFAULT_TARGET_KINDS):
        """Deterministic, ordered experiment list for *module* within
        *ranges*.  Every point must carry ``instruction_address`` (the
        activation breakpoint), a unique ``key`` and a ``sort_key``
        matching enumeration order."""
        raise NotImplementedError

    def location(self, point):
        """Table 2 location code of a point (MISC for data errors)."""
        return LOCATION_MISC

    def point_key(self, point):
        """Journal/resume identity of a point within one campaign."""
        return point.key

    def point_to_dict(self, point):
        raise NotImplementedError

    def point_from_dict(self, record):
        raise NotImplementedError

    def apply(self, session, point, encoding, module):
        """Apply the point's fault at *session*'s breakpoint and run
        the suffix; returns ``(status, kernel, client)``."""
        raise NotImplementedError

    # -- equivalence-class pruning hooks -------------------------------

    def corrupted_bytes(self, module, point, encoding):
        """The text image this point's fault writes at its site, or
        ``None`` for models whose corruption is not a text write.
        Must agree byte-for-byte with what :meth:`apply` injects --
        the pruning classifier's static analysis decodes it."""
        return None

    def classify_points(self, module, points, encoding, coverage,
                        ranges=None):
        """Partition *points* into a
        :class:`~repro.injection.pruning.PruningPlan`.  The default
        merges dead (never-activated) sites -- sound for every model,
        since activation is a property of the site alone -- and keeps
        covered points as singletons.  Text-corrupting models override
        this with the full static classifier."""
        from .pruning import default_classify
        return default_classify(self, module, points, encoding,
                                coverage, ranges)


# ----------------------------------------------------------------------
# BranchBitFlip -- the paper's model

@register_fault_model
class BranchBitFlip(FaultModel):
    """Single-bit flips in branch-instruction bytes (Sections 4-6).

    Points are :class:`~repro.injection.targets.InjectionPoint` and
    serialize in the legacy (pre-plugin) record shape, so journals
    written before the registry existed resume under this model
    unchanged.
    """

    name = "branch-bit"
    ptype = None
    reencodes = True

    def enumerate_points(self, module, ranges,
                         kinds=DEFAULT_TARGET_KINDS):
        return enumerate_branch_points(module, ranges, kinds)

    def location(self, point):
        return classify_location(point)

    def point_to_dict(self, point):
        return {
            "address": point.instruction_address,
            "byte_offset": point.byte_offset,
            "bit": point.bit,
            "length": point.instruction_length,
            "mnemonic": point.mnemonic,
            "opcode": point.opcode,
            "kind": point.kind,
        }

    def point_from_dict(self, record):
        from .targets import InjectionPoint
        return InjectionPoint(
            instruction_address=record["address"],
            byte_offset=record["byte_offset"],
            bit=record["bit"],
            instruction_length=record["length"],
            mnemonic=record["mnemonic"],
            opcode=record["opcode"],
            kind=record["kind"])

    def apply(self, session, point, encoding, module):
        if encoding == "new":
            raw = _instruction_bytes(module, point)
            replacement = inject_mask_under_new_encoding(
                raw, point.byte_offset, 1 << point.bit)
            return session.run_with_bytes(point.instruction_address,
                                          replacement)
        return session.run_with_flip(point.flip_address, point.bit)

    def corrupted_bytes(self, module, point, encoding):
        raw = _instruction_bytes(module, point)
        if encoding == "new":
            return inject_mask_under_new_encoding(
                raw, point.byte_offset, 1 << point.bit)
        replacement = bytearray(raw)
        replacement[point.byte_offset] ^= 1 << point.bit
        return bytes(replacement)

    def classify_points(self, module, points, encoding, coverage,
                        ranges=None):
        from .pruning import classify_text_points
        return classify_text_points(self, module, points, encoding,
                                    coverage, ranges)


def _instruction_bytes(module, point):
    offset = point.instruction_address - module.text_base
    return bytes(module.text[offset:offset + point.instruction_length])


# ----------------------------------------------------------------------
# MultiBitBurst -- the Table 4 stress test

@dataclass(frozen=True)
class BurstInjectionPoint:
    """Flip bits ``bit`` and ``bit+1`` of one branch byte."""

    instruction_address: int
    byte_offset: int
    bit: int                       # low bit of the adjacent pair
    instruction_length: int
    mnemonic: str
    opcode: int
    kind: str

    @property
    def flip_address(self):
        return self.instruction_address + self.byte_offset

    @property
    def mask(self):
        return (1 << self.bit) | (1 << (self.bit + 1))

    @property
    def key(self):
        return "burst:%x:%d:%d" % (self.instruction_address,
                                   self.byte_offset, self.bit)

    @property
    def sort_key(self):
        return (self.instruction_address, self.byte_offset, self.bit)


@register_fault_model
class MultiBitBurst(FaultModel):
    """Two-adjacent-bit flips in branch bytes.

    The Table 4 re-encoding guarantees a minimum Hamming distance of
    *two* between conditional branches, so it defeats every
    single-bit error by construction -- and stops there.  This model
    injects the cheapest error the scheme does not cover (a burst of
    two adjacent bits, the classic coupled-cell fault) and so measures
    the claim's boundary directly: under ``encoding="new"`` a burst
    can still turn one re-encoded branch into another.
    """

    name = "burst2"
    ptype = "burst"
    reencodes = True

    def enumerate_points(self, module, ranges,
                         kinds=DEFAULT_TARGET_KINDS):
        points = []
        for instruction in branch_instructions(module, ranges, kinds):
            for byte_offset in range(instruction.length):
                for bit in range(7):          # pairs (0,1) .. (6,7)
                    points.append(BurstInjectionPoint(
                        instruction_address=instruction.address,
                        byte_offset=byte_offset, bit=bit,
                        instruction_length=instruction.length,
                        mnemonic=instruction.mnemonic,
                        opcode=instruction.opcode,
                        kind=instruction.kind))
        return points

    def location(self, point):
        return classify_location(point)

    def point_to_dict(self, point):
        return {
            "ptype": self.ptype,
            "address": point.instruction_address,
            "byte_offset": point.byte_offset,
            "bit": point.bit,
            "length": point.instruction_length,
            "mnemonic": point.mnemonic,
            "opcode": point.opcode,
            "kind": point.kind,
        }

    def point_from_dict(self, record):
        return BurstInjectionPoint(
            instruction_address=record["address"],
            byte_offset=record["byte_offset"],
            bit=record["bit"],
            instruction_length=record["length"],
            mnemonic=record["mnemonic"],
            opcode=record["opcode"],
            kind=record["kind"])

    def apply(self, session, point, encoding, module):
        raw = _instruction_bytes(module, point)
        if encoding == "new":
            replacement = inject_mask_under_new_encoding(
                raw, point.byte_offset, point.mask)
        else:
            replacement = bytearray(raw)
            replacement[point.byte_offset] ^= point.mask
            replacement = bytes(replacement)
        return session.run_with_bytes(point.instruction_address,
                                      replacement)

    def corrupted_bytes(self, module, point, encoding):
        raw = _instruction_bytes(module, point)
        if encoding == "new":
            return inject_mask_under_new_encoding(
                raw, point.byte_offset, point.mask)
        replacement = bytearray(raw)
        replacement[point.byte_offset] ^= point.mask
        return bytes(replacement)

    def classify_points(self, module, points, encoding, coverage,
                        ranges=None):
        from .pruning import classify_text_points
        return classify_text_points(self, module, points, encoding,
                                    coverage, ranges)


# ----------------------------------------------------------------------
# RegisterBitFlip -- data errors in the register file

@dataclass(frozen=True)
class RegisterInjectionPoint:
    """Flip one bit of one GPR when execution reaches the anchor
    instruction (the paper's Example 3 family)."""

    instruction_address: int
    register: int                  # hardware index, EAX=0 .. EDI=7
    bit: int
    mnemonic: str = ""
    kind: str = ""

    @property
    def register_name(self):
        return REG32_NAMES[self.register]

    @property
    def key(self):
        return "reg:%x:%d:%d" % (self.instruction_address,
                                 self.register, self.bit)

    @property
    def sort_key(self):
        return (self.instruction_address, self.register, self.bit)


@register_fault_model
class RegisterBitFlip(FaultModel):
    """Single-bit flips of one general-purpose register at activation.

    Anchored at the same branch instructions as the text models (the
    decision points of the auth sections), but the corruption is
    *transient data*: it does not persist in the text image, so there
    is no permanent vulnerability window -- only the decision made
    with the corrupted value.
    """

    name = "register-bit"
    ptype = "register"
    reencodes = False

    #: default bit plane: every bit of the low byte plus the sign-ish
    #: bits that flip comparison outcomes; 8 registers x 11 bits keeps
    #: a full campaign in the same ballpark as branch-bit.
    BITS = (0, 1, 2, 3, 4, 5, 6, 7, 15, 23, 31)

    def __init__(self, registers=range(8), bits=BITS):
        self.registers = tuple(registers)
        self.bits = tuple(bits)

    def enumerate_points(self, module, ranges,
                         kinds=DEFAULT_TARGET_KINDS):
        points = []
        for instruction in branch_instructions(module, ranges, kinds):
            for register in self.registers:
                for bit in self.bits:
                    points.append(RegisterInjectionPoint(
                        instruction_address=instruction.address,
                        register=register, bit=bit,
                        mnemonic=instruction.mnemonic,
                        kind=instruction.kind))
        return points

    def point_to_dict(self, point):
        return {
            "ptype": self.ptype,
            "address": point.instruction_address,
            "register": point.register,
            "bit": point.bit,
            "mnemonic": point.mnemonic,
            "kind": point.kind,
        }

    def point_from_dict(self, record):
        return RegisterInjectionPoint(
            instruction_address=record["address"],
            register=record["register"],
            bit=record["bit"],
            mnemonic=record.get("mnemonic", ""),
            kind=record.get("kind", ""))

    def apply(self, session, point, encoding, module):
        return session.run_with_register_flip(point.register, point.bit)


# ----------------------------------------------------------------------
# MemoryBitFlip -- data errors in stack/data bytes

@dataclass(frozen=True)
class MemoryInjectionPoint:
    """Flip one bit of one stack or data byte at activation.

    ``space="stack"`` offsets are relative to ESP at the breakpoint
    (the live frame: saved registers, locals, argument words);
    ``space="data"`` offsets are relative to the module's data base
    (globals -- for the daemons, the head of the passwd tables).
    """

    instruction_address: int
    space: str                     # "stack" | "data"
    offset: int
    bit: int

    @property
    def key(self):
        return "mem:%x:%s:%d:%d" % (self.instruction_address,
                                    self.space, self.offset, self.bit)

    @property
    def sort_key(self):
        return (self.instruction_address,
                0 if self.space == "stack" else 1, self.offset,
                self.bit)


@register_fault_model
class MemoryBitFlip(FaultModel):
    """Single-bit flips of stack/data bytes at activation.

    Like :class:`RegisterBitFlip` a data-error model, but aimed at
    memory operands: the stack window covers the current frame's
    saved state and arguments, the data window the daemon's globals.
    """

    name = "memory-bit"
    ptype = "memory"
    reencodes = False

    def __init__(self, stack_window=8, data_window=8):
        self.stack_window = stack_window
        self.data_window = data_window

    def enumerate_points(self, module, ranges,
                         kinds=DEFAULT_TARGET_KINDS):
        points = []
        for instruction in branch_instructions(module, ranges, kinds):
            for space, window in (("stack", self.stack_window),
                                  ("data", self.data_window)):
                for offset in range(window):
                    for bit in range(8):
                        points.append(MemoryInjectionPoint(
                            instruction_address=instruction.address,
                            space=space, offset=offset, bit=bit))
        return points

    def point_to_dict(self, point):
        return {
            "ptype": self.ptype,
            "address": point.instruction_address,
            "space": point.space,
            "offset": point.offset,
            "bit": point.bit,
        }

    def point_from_dict(self, record):
        return MemoryInjectionPoint(
            instruction_address=record["address"],
            space=record["space"],
            offset=record["offset"],
            bit=record["bit"])

    def apply(self, session, point, encoding, module):
        if point.space == "stack":
            return session.run_with_stack_relative_flip(point.offset,
                                                        point.bit)
        return session.run_with_memory_flip(
            module.data_base + point.offset, point.bit)


# ----------------------------------------------------------------------
# Serialization dispatch (used by repro.analysis.serialize)

def point_to_dict(point):
    """Serialize any registered model's point (dispatch on type)."""
    if isinstance(point, BurstInjectionPoint):
        return MultiBitBurst().point_to_dict(point)
    if isinstance(point, RegisterInjectionPoint):
        return RegisterBitFlip().point_to_dict(point)
    if isinstance(point, MemoryInjectionPoint):
        return MemoryBitFlip().point_to_dict(point)
    return BranchBitFlip().point_to_dict(point)


_PTYPE_MODELS = {
    "burst": MultiBitBurst,
    "register": RegisterBitFlip,
    "memory": MemoryBitFlip,
}


def point_from_dict(record):
    """Deserialize a point record (``ptype`` discriminates; records
    without one are legacy/BranchBitFlip)."""
    ptype = record.get("ptype")
    if ptype is None:
        return BranchBitFlip().point_from_dict(record)
    try:
        model = _PTYPE_MODELS[ptype]()
    except KeyError:
        raise ValueError("unknown point type %r" % ptype)
    return model.point_from_dict(record)
