"""Error-location taxonomy of the paper's Table 2.

========  ==========================================================
2BC       opcode byte of a 2-byte conditional branch
2BO       operand (offset) byte of a 2-byte conditional branch
6BC1      first opcode byte (0F) of a 6-byte conditional branch
6BC2      second opcode byte of a 6-byte conditional branch
6BO       operand (offset) bytes of a 6-byte conditional branch
MISC      anything else (unconditional jmp, call, ...)
========  ==========================================================
"""

from __future__ import annotations

from ..x86 import KIND_COND_BRANCH

LOCATION_2BC = "2BC"
LOCATION_2BO = "2BO"
LOCATION_6BC1 = "6BC1"
LOCATION_6BC2 = "6BC2"
LOCATION_6BO = "6BO"
LOCATION_MISC = "MISC"

ALL_LOCATIONS = (LOCATION_2BC, LOCATION_2BO, LOCATION_6BC1,
                 LOCATION_6BC2, LOCATION_6BO, LOCATION_MISC)

LOCATION_DEFINITIONS = {
    LOCATION_2BC: "Opcode of 2-byte conditional branch instruction",
    LOCATION_2BO: "Operand of 2-byte conditional branch instruction",
    LOCATION_6BC1: "Byte 1 of opcode of 6-byte conditional branch "
                   "instruction",
    LOCATION_6BC2: "Byte 2 of opcode of 6-byte conditional branch "
                   "instruction",
    LOCATION_6BO: "Operand of 6-byte conditional branch instruction",
    LOCATION_MISC: "Others",
}


def classify_location(point):
    """Map an :class:`InjectionPoint` to its Table 2 location code."""
    if point.kind == KIND_COND_BRANCH and point.instruction_length == 2 \
            and 0x70 <= point.opcode <= 0x7F:
        return LOCATION_2BC if point.byte_offset == 0 else LOCATION_2BO
    if point.kind == KIND_COND_BRANCH and point.instruction_length == 6 \
            and 0x0F80 <= point.opcode <= 0x0F8F:
        if point.byte_offset == 0:
            return LOCATION_6BC1
        if point.byte_offset == 1:
            return LOCATION_6BC2
        return LOCATION_6BO
    return LOCATION_MISC
