"""Outcome categories (Section 5.1 of the paper) and the differential
classifier that assigns them."""

from __future__ import annotations

from dataclasses import dataclass

NOT_ACTIVATED = "NA"
NOT_MANIFESTED = "NM"
SYSTEM_DETECTION = "SD"
FAIL_SILENCE_VIOLATION = "FSV"
SECURITY_BREAKIN = "BRK"

#: refinements introduced by the fault-tolerant runner (not part of
#: the paper's five-way taxonomy; fold back via FOLD_TO_PAPER).
HANG = "HANG"
HARNESS_FAULT = "HF"

ALL_OUTCOMES = (NOT_ACTIVATED, NOT_MANIFESTED, SYSTEM_DETECTION,
                FAIL_SILENCE_VIOLATION, SECURITY_BREAKIN)

#: the full tally produced by the runner: the paper's five outcomes
#: plus the two refinements.
REFINED_OUTCOMES = ALL_OUTCOMES + (HANG, HARNESS_FAULT)

#: how the refinements map back onto the paper's taxonomy for Table
#: 1/3/5 comparisons: a detected tight loop was classified FSV
#: ("server looping") before the watchdog existed, and a harness
#: fault yields no valid observation of the target at all, like NA.
FOLD_TO_PAPER = {HANG: FAIL_SILENCE_VIOLATION,
                 HARNESS_FAULT: NOT_ACTIVATED}

OUTCOME_DESCRIPTIONS = {
    NOT_ACTIVATED: "breakpoint never reached; behaviour unchanged",
    NOT_MANIFESTED: "corrupted instruction executed, no visible impact",
    SYSTEM_DETECTION: "server process crashed (illegal instruction, "
                      "segmentation violation, ...)",
    FAIL_SILENCE_VIOLATION: "communication inconsistent with the "
                            "error-free run",
    SECURITY_BREAKIN: "access granted when it should have been denied",
    HANG: "watchdog: server stuck in a tight loop / no forward "
          "progress (refines FSV)",
    HARNESS_FAULT: "harness/emulator raised an unexpected exception; "
                   "no valid observation (excluded like NA)",
}


@dataclass
class InjectionResult:
    """One single-bit experiment's outcome."""

    point: object                  # targets.InjectionPoint
    location: str                  # Table 2 code (2BC, ..., MISC)
    outcome: str                   # NA / NM / SD / FSV / BRK
    activated: bool = False
    activation_instret: int = 0
    exit_kind: str = ""            # exit / crash / limit / hang
    exit_code: int = 0
    signal: str = ""
    crash_latency: int | None = None
    broke_in: bool = False
    crashed_after_breakin: bool = False
    detail: str = ""
    #: (low, high) EIP bounds of the loop body when outcome is HANG
    #: and the instruction-rate probe identified a tight loop.
    hang_eip_range: tuple | None = None
    #: crash-forensics snapshot (:mod:`repro.obs.forensics`) captured
    #: at SD/HANG/HF time when the campaign ran with forensics on;
    #: observational only, never part of any tally.
    forensics: dict | None = None
    #: equivalence-class provenance (:mod:`repro.injection.pruning`):
    #: set on every member of a multi-point class when the campaign
    #: ran with pruning on.  ``representative`` is the point key whose
    #: actual execution this record's outcome was copied from (the
    #: representative's own record carries its own key).  ``None`` on
    #: exhaustive campaigns and singleton classes.
    class_id: str | None = None
    representative: str | None = None


def classify_completed_run(golden, client, transcript, status):
    """Classify a run that was *activated* and ran to some end.

    Returns ``(outcome, detail)``.  Priority order:

    1. BRK -- the client obtained access the golden run was denied
       (paper: "a special type of FSV that creates security holes");
       a subsequent crash does not undo the breach.
    2. SD  -- the server crashed.
    3. FSV -- hang, or transcript differs from golden.
    4. NM  -- transcript identical and the server exited.
    """
    broke_in = client.broke_in() and not golden.broke_in
    if broke_in:
        detail = "unauthorised access granted"
        if status.kind == "crash":
            detail += " (server crashed afterwards: %s)" % status.signal
        return SECURITY_BREAKIN, detail
    if status.kind == "crash":
        return SYSTEM_DETECTION, "%s %s" % (status.signal, status.vector)
    if status.kind == "limit":
        return FAIL_SILENCE_VIOLATION, "server looping (budget exhausted)"
    if status.kind == "hang":
        return FAIL_SILENCE_VIOLATION, "client left waiting (server hang)"
    if transcript != golden.transcript:
        return FAIL_SILENCE_VIOLATION, _transcript_difference(
            golden.transcript, transcript)
    return NOT_MANIFESTED, ""


def _transcript_difference(golden_transcript, transcript):
    """Short human-readable description of the first divergence."""
    for index, (golden_chunk, chunk) in enumerate(
            zip(golden_transcript, transcript)):
        if golden_chunk != chunk:
            return ("message %d differs: expected %s %r..., got %s %r..."
                    % (index, golden_chunk[0], golden_chunk[1][:24],
                       chunk[0], chunk[1][:24]))
    if len(transcript) < len(golden_transcript):
        missing = golden_transcript[len(transcript)]
        return "missing message: %s %r..." % (missing[0], missing[1][:24])
    extra = transcript[len(golden_transcript)]
    return "extra message: %s %r..." % (extra[0], extra[1][:24])
