"""Golden (error-free) run recording.

Outcome classification is differential: every injected run is compared
against the golden run of the same (daemon, client) pair.  The golden
run also records instruction-level coverage, which gives an exact NA
(not-activated) oracle: execution before the first arrival at the
breakpoint address is byte-for-byte identical to the golden run, so an
address absent from golden coverage is provably never reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps.common import CONNECTION_INSTRUCTION_BUDGET
from ..emu import Process
from ..x86 import decode


@dataclass
class GoldenRun:
    """Reference behaviour of one (daemon, client factory) pair."""

    transcript: tuple
    exit_kind: str
    exit_code: int
    broke_in: bool
    granted: bool
    coverage: frozenset
    instret: int
    client_state: dict = field(default_factory=dict)
    #: individual text bytes fetched as part of any executed
    #: instruction; a flip outside this set is provably NA.
    coverage_bytes: frozenset = frozenset()
    #: execution-engine counters of the golden run (the golden run
    #: records coverage, so it exercises the reference stepwise path).
    perf: dict = field(default_factory=dict)


def record_golden(daemon, client_factory,
                  budget=CONNECTION_INSTRUCTION_BUDGET):
    """Run one clean connection and capture the reference behaviour."""
    client = client_factory()
    kernel = daemon.make_kernel(client)
    process = Process(daemon.module, kernel)
    process.cpu.coverage = set()
    status = process.run(budget)
    if status.kind != "exit":
        raise RuntimeError("golden run did not exit cleanly: %s" % status)
    return GoldenRun(
        transcript=kernel.channel.normalized_transcript(),
        exit_kind=status.kind,
        exit_code=status.exit_code,
        broke_in=client.broke_in(),
        granted=getattr(client, "granted",
                        getattr(client, "auth_success", False)),
        coverage=frozenset(process.cpu.coverage),
        instret=status.instret,
        client_state=_milestones(client),
        coverage_bytes=_byte_coverage(daemon.module,
                                      process.cpu.coverage),
        perf=process.cpu.perf.as_dict(),
    )


def _byte_coverage(module, instruction_starts):
    """Expand executed instruction starts to the full byte ranges their
    fetches consumed."""
    covered = set()
    text_start = module.text_base
    text_end = module.text_base + len(module.text)
    for address in instruction_starts:
        if not text_start <= address < text_end:
            continue
        offset = address - text_start
        instruction = decode(module.text[offset:offset + 15], address)
        covered.update(range(address, address + instruction.length))
    return frozenset(covered)


def _milestones(client):
    """Snapshot the milestone attributes a client exposes."""
    names = ("granted", "denied", "retrieved_files", "auth_success",
             "got_shell", "failures", "confusion")
    return {name: getattr(client, name) for name in names
            if hasattr(client, name)}
