"""Fault-injection framework: targets, injector, outcomes, campaigns."""

from .campaign import (ALL_ENCODINGS, CampaignResult, CampaignSpec,
                       ENCODING_NEW, ENCODING_OLD, enumerate_specs,
                       QuarantinedPoint, run_both_encodings,
                       run_campaign, run_spec)
from .faultmodels import (available_fault_models, BranchBitFlip,
                          BurstInjectionPoint, DEFAULT_FAULT_MODEL,
                          FAULT_MODELS, FaultModel, get_fault_model,
                          MemoryBitFlip, MemoryInjectionPoint,
                          MultiBitBurst, register_fault_model,
                          RegisterBitFlip, RegisterInjectionPoint)
from .golden import GoldenRun, record_golden
from .injector import (BreakpointSession, plain_run,
                       run_clean_connection, SessionCache,
                       single_injection)
from .snapshot import MachineSnapshot
from .runner import (campaign_timing, CampaignInterrupted,
                     CampaignJournal, CampaignRunner, JournalError,
                     JournalLoadReport, run_resilient_campaign,
                     Watchdog, WatchdogConfig)
from .chaos import (ChaosAction, ChaosPolicy, corrupt_journal_tail)
from .pruning import (class_is_audited, default_classify,
                      fan_out_result, GuardedWatchdog, PointClass,
                      PRUNE_BYTES, PRUNE_DEAD, PRUNE_FAULT,
                      PRUNE_SOLO, PRUNE_SUCC, PruningAuditError,
                      PruningPlan, result_signature, SitePlan)
from .supervisor import (ShardSupervisor, SupervisionReport,
                         SupervisorConfig)
from .scheduler import (build_units, CampaignScheduler,
                        instruction_groups, UNIT_INSTRUCTIONS,
                        WorkUnit)
from .fleet import (FleetConfig, run_fleet_campaign, WorkerFleet)
from .parallel import (discover_shard_journals, load_shard_journals,
                       ParallelCampaignRunner, run_parallel_campaign,
                       shard_journal_path, shard_points)
from .locations import (ALL_LOCATIONS, classify_location,
                        LOCATION_2BC, LOCATION_2BO, LOCATION_6BC1,
                        LOCATION_6BC2, LOCATION_6BO,
                        LOCATION_DEFINITIONS, LOCATION_MISC)
from .outcomes import (ALL_OUTCOMES, classify_completed_run,
                       FAIL_SILENCE_VIOLATION, FOLD_TO_PAPER, HANG,
                       HARNESS_FAULT, InjectionResult, NOT_ACTIVATED,
                       NOT_MANIFESTED, OUTCOME_DESCRIPTIONS,
                       REFINED_OUTCOMES, SECURITY_BREAKIN,
                       SYSTEM_DETECTION)
from .latent import (LatentErrorResult, LatentStudyResult,
                     run_latent_study, sample_text_faults)
from .random_campaign import RandomCampaignResult, run_random_campaign
from .targets import (branch_instructions, DEFAULT_TARGET_KINDS,
                      describe_targets, enumerate_points, InjectionPoint,
                      TARGET_KINDS_WITH_CALLS)

__all__ = [
    "ALL_ENCODINGS", "CampaignSpec", "enumerate_specs", "run_spec",
    "FaultModel", "FAULT_MODELS", "DEFAULT_FAULT_MODEL",
    "available_fault_models", "get_fault_model", "register_fault_model",
    "BranchBitFlip", "MultiBitBurst", "RegisterBitFlip", "MemoryBitFlip",
    "BurstInjectionPoint", "RegisterInjectionPoint",
    "MemoryInjectionPoint",
    "CampaignResult", "ENCODING_OLD", "ENCODING_NEW", "run_campaign",
    "run_both_encodings", "QuarantinedPoint", "GoldenRun",
    "record_golden", "BreakpointSession", "MachineSnapshot",
    "SessionCache", "plain_run",
    "single_injection", "run_clean_connection", "CampaignRunner",
    "CampaignJournal", "JournalError", "run_resilient_campaign",
    "campaign_timing", "CampaignInterrupted", "JournalLoadReport",
    "ChaosAction", "ChaosPolicy", "corrupt_journal_tail",
    "PruningAuditError", "PruningPlan", "SitePlan", "PointClass",
    "GuardedWatchdog", "default_classify", "fan_out_result",
    "class_is_audited", "result_signature", "PRUNE_DEAD",
    "PRUNE_BYTES", "PRUNE_FAULT", "PRUNE_SUCC", "PRUNE_SOLO",
    "ShardSupervisor", "SupervisionReport", "SupervisorConfig",
    "CampaignScheduler", "WorkUnit", "build_units",
    "instruction_groups", "UNIT_INSTRUCTIONS",
    "FleetConfig", "WorkerFleet", "run_fleet_campaign",
    "ParallelCampaignRunner",
    "run_parallel_campaign", "shard_points", "shard_journal_path",
    "discover_shard_journals", "load_shard_journals",
    "Watchdog", "WatchdogConfig", "HANG", "HARNESS_FAULT",
    "REFINED_OUTCOMES", "FOLD_TO_PAPER",
    "ALL_LOCATIONS", "classify_location", "LOCATION_2BC", "LOCATION_2BO",
    "LOCATION_6BC1", "LOCATION_6BC2", "LOCATION_6BO", "LOCATION_MISC",
    "LOCATION_DEFINITIONS", "ALL_OUTCOMES", "classify_completed_run",
    "InjectionResult", "NOT_ACTIVATED", "NOT_MANIFESTED",
    "SYSTEM_DETECTION", "FAIL_SILENCE_VIOLATION", "SECURITY_BREAKIN",
    "OUTCOME_DESCRIPTIONS", "branch_instructions", "describe_targets",
    "enumerate_points", "InjectionPoint", "DEFAULT_TARGET_KINDS",
    "TARGET_KINDS_WITH_CALLS", "RandomCampaignResult",
    "run_random_campaign", "LatentErrorResult", "LatentStudyResult",
    "run_latent_study", "sample_text_faults",
]
