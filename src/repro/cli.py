"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``campaign``   run one selective-exhaustive injection campaign and
               print its Table 1 column (optionally under the new
               encoding).
``disasm``     disassemble a daemon's authentication functions with
               the injection targets marked.
``table4``     print the regenerated branch re-encoding table.
``figure4``    run the FTP attacker campaign and print the crash
               latency histogram.
``random``     run the Section 7 random-injection testbed.
``forensics``  render the crash-forensics snapshots stored in a
               campaign journal (``--divergence`` replays a point and
               locates where it left the golden path).
``serve``      run the persistent campaign service: a warm worker
               fleet behind a Unix socket accepting concurrent
               campaign submissions (see :mod:`repro.service`).
``status``     summarise a campaign journal (and its shard files):
               completed points, quarantines, unit progress,
               in-flight units, live ETA, salvageable damage.
``top``        live terminal view of running campaigns: point a
               target at a service socket (streams telemetry) or a
               journal base path (polls markers and shard files).
``report``     render a self-contained HTML campaign report from a
               journal (plus optional ``--events`` / ``--profile``
               artifacts).

Every command takes ``--daemon`` (any daemon registered in
:mod:`repro.apps.registry`; ``--app`` is a back-compat alias), and
``campaign`` takes ``--fault-model`` (any model registered in
:mod:`repro.injection.faultmodels`).  An option-first invocation such
as ``python -m repro --daemon pop3d --fault-model register-bit``
implies the ``campaign`` command.  ``--verbose`` / ``--quiet`` adjust
the ``repro`` logger (:mod:`repro.obs.log`); progress and warnings go
to stderr, results to stdout.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (build_histogram, build_table1, build_table3,
                       format_forensics, format_histogram,
                       format_table1, format_table3)
from .apps.registry import available_daemons, get_daemon_spec
from .encoding import format_table4, minimum_branch_distance
from .injection import (available_fault_models, CampaignInterrupted,
                        DEFAULT_FAULT_MODEL, describe_targets,
                        run_campaign, run_random_campaign)

#: exit status of a checkpointed (interrupted but resumable) campaign
#: -- EX_TEMPFAIL: re-running with ``--resume`` will finish the job.
EXIT_CHECKPOINTED = 75
from .obs import configure_logging, ProgressReporter
from .x86 import disassemble_range, format_listing


def _make_daemon(name):
    """Resolve a daemon name through the registry
    (:mod:`repro.apps.registry`): compiled daemon + client factories."""
    spec = get_daemon_spec(name)
    return spec.build(), spec.client_factories


def _add_daemon_arg(parser):
    """``--daemon`` with every registered daemon as a choice;
    ``--app`` is kept as an alias for pre-registry scripts."""
    parser.add_argument("--daemon", "--app", dest="daemon",
                        choices=available_daemons(), default="ftpd",
                        help="target daemon (registered: %s)"
                             % ", ".join(available_daemons()))


def _progress(args):
    """``--progress`` now routes through the ``repro.campaign`` logger
    (so ``--quiet`` silences it) instead of ad-hoc stream writes."""
    return ProgressReporter() if args.progress else None


def _telemetry_kwargs(args):
    """Map ``--events`` / ``--profile`` / ``--sample-period`` to the
    engine's telemetry keywords.  Returns ``(bus, kwargs)``; the bus
    is ``None`` unless ``--events`` asked for a stream (zero overhead
    when off: no flag, no object, no emit sites)."""
    kwargs = {}
    bus = None
    if getattr(args, "events", None):
        from .obs.events import EventBus
        bus = EventBus()
        kwargs["telemetry"] = bus
    if getattr(args, "sample_period", None):
        from .obs.sampler import Sampler
        kwargs["sampler"] = Sampler(getattr(args, "sample_period"))
    if getattr(args, "profile", None):
        kwargs["profile"] = args.profile
    return bus, kwargs


def _write_telemetry_artifacts(out, args, bus, daemon=None):
    """Save the event stream and acknowledge the artifact paths (the
    same contract as the ``trace:`` / ``metrics:`` lines)."""
    if bus is not None and args.events:
        bus.save(args.events)
        out.write("events: %s (%d event(s))\n" % (args.events,
                                                  len(bus)))
    if getattr(args, "profile", None):
        out.write("profile: %s\n" % args.profile)
        if daemon is not None:
            from .obs.sampler import hotspot_table, load_profile
            out.write(hotspot_table(load_profile(args.profile),
                                    daemon.module) + "\n")


def _write_timing(out, campaign):
    timing = campaign.timing
    if not timing:
        return
    out.write("timing: %.1fs wall clock, %d experiments "
              "(%.1f/sec, %d worker%s)\n"
              % (timing["wall_clock"], timing["experiments"],
                 timing["experiments_per_sec"], timing["workers"],
                 "" if timing["workers"] == 1 else "s"))
    perf = timing.get("perf")
    if perf:
        out.write("engine: %d prepared-op hits / %d misses, "
                  "%d flags forced / %d elided, %d supersteps "
                  "(%d instructions), %d syscalls\n"
                  % (perf.get("prepared_hits", 0),
                     perf.get("prepared_misses", 0),
                     perf.get("flags_forced", 0),
                     perf.get("flags_elided", 0),
                     perf.get("superstep_entries", 0),
                     perf.get("superstep_instructions", 0),
                     perf.get("syscalls", 0)))


def cmd_campaign(args, out):
    daemon, clients = _make_daemon(args.daemon)
    if args.client not in clients:
        raise SystemExit("unknown client %r (have: %s)"
                         % (args.client, ", ".join(sorted(clients))))
    bus, telemetry = _telemetry_kwargs(args)
    if args.workers and args.workers > 1:
        # thin client of the scheduler/fleet layers: a private warm
        # fleet runs this one campaign in-process
        from .injection import run_fleet_campaign
        campaign = run_fleet_campaign(
            daemon, args.client, clients[args.client],
            workers=args.workers, deadline=args.deadline,
            graceful_signals=True,
            encoding=args.encoding, fault_model=args.fault_model,
            max_points=args.max_points,
            journal=args.journal, resume=args.resume,
            retries=args.retries,
            trace=args.trace, metrics=args.metrics,
            forensics=args.forensics, progress=_progress(args),
            journal_fsync=args.journal_fsync,
            journal_salvage=args.journal_salvage,
            full_restore=args.full_restore,
            prune=args.prune, audit_fraction=args.audit_fraction,
            audit_seed=args.audit_seed, **telemetry)
    else:
        campaign = run_campaign(
            daemon, args.client, clients[args.client],
            encoding=args.encoding,
            fault_model=args.fault_model,
            max_points=args.max_points,
            journal=args.journal, resume=args.resume,
            retries=args.retries, workers=args.workers,
            trace=args.trace, metrics=args.metrics,
            forensics=args.forensics, progress=_progress(args),
            deadline=args.deadline, journal_fsync=args.journal_fsync,
            journal_salvage=args.journal_salvage,
            full_restore=args.full_restore,
            prune=args.prune, audit_fraction=args.audit_fraction,
            audit_seed=args.audit_seed,
            # SIGTERM/SIGINT checkpoint the campaign instead of
            # killing it; resume with --resume.
            graceful_signals=True, **telemetry)
    if args.journal:
        if args.workers and args.workers > 1:
            out.write("journal: %s.shard0..%d\n"
                      % (args.journal, args.workers - 1))
        else:
            out.write("journal: %s\n" % args.journal)
    if args.trace:
        out.write("trace: %s\n" % args.trace)
    if args.metrics:
        out.write("metrics: %s\n" % args.metrics)
    _write_telemetry_artifacts(out, args, bus, daemon=daemon)
    _write_timing(out, campaign)
    if campaign.quarantined_count:
        out.write("quarantined (unstable, excluded from percentages): "
                  "%d\n" % campaign.quarantined_count)
    if args.save:
        from .analysis import save_campaign
        save_campaign(campaign, args.save)
        out.write("saved raw results to %s\n" % args.save)
    title = "%s %s (%s encoding)" % (args.daemon, args.client,
                                     args.encoding)
    if args.fault_model != DEFAULT_FAULT_MODEL:
        title = "%s %s (%s encoding, %s faults)" % (
            args.daemon, args.client, args.encoding, args.fault_model)
    out.write(format_table1(build_table1([campaign]), title) + "\n")
    out.write("\nBRK+FSV by location:\n")
    out.write(format_table3(build_table3([campaign]), "") + "\n")
    if args.forensics:
        section = format_forensics(campaign)
        if section:
            out.write("\n" + section + "\n")
    return 0


def cmd_disasm(args, out):
    daemon, __ = _make_daemon(args.daemon)
    functions = ([args.function] if args.function
                 else list(daemon.AUTH_FUNCTIONS))
    info = describe_targets(daemon.module, daemon.auth_ranges())
    out.write("injection targets: %d branch instructions / %d bits "
              "(%.1f%% of the section bytes)\n\n"
              % (info["instructions"], info["bits"],
                 100 * info["branch_fraction"]))
    for function in functions:
        start, end = daemon.program.function_range(function)
        out.write("%s: [0x%x, 0x%x)\n" % (function, start, end))
        listing = disassemble_range(daemon.module.text,
                                    daemon.module.text_base, start, end)
        if args.branches_only:
            listing = [i for i in listing
                       if i.kind in ("cond_branch", "jump")]
        out.write(format_listing(listing) + "\n\n")
    return 0


def cmd_table4(args, out):
    out.write(format_table4() + "\n")
    out.write("\nminimum intra-block Hamming distance: old=%d new=%d\n"
              % (minimum_branch_distance("old"),
                 minimum_branch_distance("new")))
    return 0


def cmd_figure4(args, out):
    daemon, clients = _make_daemon(args.daemon)
    attacker = get_daemon_spec(args.daemon).attacker_client
    bus, telemetry = _telemetry_kwargs(args)
    if args.workers and args.workers > 1:
        from .injection import run_fleet_campaign
        campaign = run_fleet_campaign(
            daemon, attacker, clients[attacker],
            workers=args.workers, graceful_signals=True,
            trace=args.trace, metrics=args.metrics,
            progress=_progress(args), **telemetry)
    else:
        campaign = run_campaign(
            daemon, attacker, clients[attacker],
            workers=args.workers, trace=args.trace,
            metrics=args.metrics, progress=_progress(args),
            **telemetry)
    histogram = build_histogram(campaign.crash_latencies())
    out.write(format_histogram(histogram) + "\n")
    _write_telemetry_artifacts(out, args, bus, daemon=daemon)
    _write_timing(out, campaign)
    return 0


def cmd_random(args, out):
    daemon, clients = _make_daemon(args.daemon)
    attacker = get_daemon_spec(args.daemon).attacker_client
    result = run_random_campaign(daemon, clients[attacker],
                                 trials=args.trials, seed=args.seed)
    out.write("trials: %d\n" % result.trials)
    for outcome in sorted(result.outcomes):
        out.write("  %-4s %d\n" % (outcome, result.outcomes[outcome]))
    if result.breakin_count:
        out.write("break-in rate: one in %.0f\n" % result.one_in)
    else:
        out.write("no break-ins in this sample\n")
    return 0


def _spec_from_journal_meta(meta):
    """Map a journal's recorded daemon class name ("FtpDaemon") back to
    its registry spec, so the ``forensics`` command can rebuild the
    campaign for a divergence replay."""
    recorded = meta.get("daemon")
    for name in available_daemons():
        spec = get_daemon_spec(name)
        if spec.daemon_class.__name__ == recorded:
            return spec
    raise SystemExit("journal daemon %r matches no registered daemon "
                     "(have: %s)" % (recorded,
                                     ", ".join(available_daemons())))


def cmd_forensics(args, out):
    from .analysis import point_from_dict
    from .injection.runner import CampaignJournal
    from .obs.forensics import format_forensics_record
    meta, results, __ = CampaignJournal.load(args.journal)
    if meta is None:
        raise SystemExit("journal %s has no meta header" % args.journal)
    records = sorted(results.values(),
                     key=lambda record: point_from_dict(record).sort_key)
    if args.key:
        records = [record for record in records
                   if record.get("key") == args.key]
        if not records:
            raise SystemExit("no journaled record with key %r"
                             % args.key)
    snapshots = [record for record in records
                 if record.get("forensics")]
    if not snapshots:
        out.write("no forensics snapshots in %s (campaign ran without "
                  "--forensics?)\n" % args.journal)
        return 1
    shown = snapshots[:args.limit] if args.limit else snapshots
    out.write("%d snapshot(s) in %s (showing %d)\n"
              % (len(snapshots), args.journal, len(shown)))
    for record in shown:
        out.write("\n%s  %s at %s  (%s)\n"
                  % (record["key"], record["outcome"],
                     record["location"], record.get("detail") or "-"))
        out.write(format_forensics_record(record["forensics"]) + "\n")
        if args.divergence:
            _write_divergence(out, meta, record)
    return 0


def _write_divergence(out, meta, record):
    """Replay one journaled point (clean vs flipped) and report where
    the faulty run left the golden path (offline divergence locator:
    two traced replays per point are far too slow to run in-campaign).
    """
    from .analysis import analyze_propagation, format_propagation
    point = None
    try:
        from .analysis import point_from_dict
        point = point_from_dict(record)
        flip_address = point.flip_address
    except (KeyError, AttributeError):
        out.write("  (divergence replay supports bit-flip points "
                  "only)\n")
        return
    spec = _spec_from_journal_meta(meta)
    daemon = spec.build()
    client_factory = spec.client_factory(meta["client"])
    report = analyze_propagation(
        daemon, client_factory, point.instruction_address,
        flip_address, point.bit,
        budget=meta.get("budget") or 2_000_000)
    out.write(format_propagation(report) + "\n")


def cmd_serve(args, out):
    from .injection.fleet import FleetConfig
    from .service import CampaignService
    config = FleetConfig(workers=args.workers,
                         session_capacity=args.session_capacity)
    if args.unit_instructions:
        config.unit_instructions = args.unit_instructions
    service = CampaignService(socket_path=args.socket, config=config,
                              quota=args.quota)
    out.write("serving on %s (%d workers, quota %d per client)\n"
              % (service.socket_path, args.workers, args.quota))
    out.flush()
    return service.run()


def cmd_status(args, out):
    import os
    from .injection.parallel import discover_shard_journals
    from .injection.runner import CampaignJournal, JournalError
    from .obs.top import format_eta, unit_progress
    paths = ([args.journal] if os.path.exists(args.journal) else [])
    paths += discover_shard_journals(args.journal)
    if not paths:
        raise SystemExit("no journal at %s (or %s.shard*)"
                         % (args.journal, args.journal))
    results = {}
    quarantined = {}
    units = []
    damage = 0
    for path in paths:
        try:
            meta, shard_results, shard_quarantined, report = \
                CampaignJournal.load_with_report(path, strict=False)
        except JournalError as error:
            out.write("%s: unreadable (%s)\n" % (path, error))
            damage += 1
            continue
        results.update(shard_results)
        quarantined.update(shard_quarantined)
        out.write("%s:\n" % path)
        if meta is not None:
            out.write("  campaign: %s %s (%s encoding, %s faults, "
                      "schema v%s)\n"
                      % (meta.get("daemon"), meta.get("client"),
                         meta.get("encoding"),
                         meta.get("model", "branch-bit"),
                         meta.get("schema")))
        else:
            out.write("  campaign: no meta header\n")
        out.write("  results: %d   quarantined: %d\n"
                  % (len(shard_results), len(shard_quarantined)))
        if report.units:
            units.extend(report.units)
            in_flight, done, __, __, __ = unit_progress(report.units)
            line = "  work units: %d completed" % done
            if in_flight:
                shown = [str(marker.get("unit"))
                         for marker in in_flight[:4]]
                more = len(in_flight) - len(shown)
                line += ", %d in flight (%s%s)" % (
                    len(in_flight), ", ".join(shown),
                    ", +%d more" % more if more else "")
            out.write(line + "\n")
        if report.corrupt_count or report.truncated_tail:
            damage += 1
            notes = []
            if report.corrupt_count:
                notes.append("%d corrupt line(s)"
                             % report.corrupt_count)
            if report.truncated_tail:
                notes.append("truncated tail")
            out.write("  damage: %s (salvageable with "
                      "--journal-salvage)\n" % ", ".join(notes))
    out.write("total: %d completed point(s), %d quarantined, across "
              "%d journal file(s)\n"
              % (len(results), len(quarantined), len(paths)))
    in_flight, __, total_points, first_ts, last_ts = \
        unit_progress(units)
    if total_points:
        completed = len(results)
        remaining = max(0, total_points - completed)
        line = ("progress: %d/%d point(s) (%.0f%%)"
                % (completed, total_points,
                   100.0 * completed / total_points))
        if remaining and completed and last_ts and first_ts \
                and last_ts > first_ts:
            rate = completed / (last_ts - first_ts)
            line += ", eta %s at the journaled rate" \
                % format_eta(remaining / rate)
        out.write(line + "\n")
    out.write("resume with: repro campaign --journal %s --resume%s\n"
              % (args.journal,
                 " --journal-salvage" if damage else ""))
    return 0


def cmd_top(args, out):
    import os
    import stat
    try:
        mode = os.stat(args.target).st_mode
    except OSError:
        mode = 0
    if stat.S_ISSOCK(mode):
        return _top_socket(args, out)
    return _top_journal(args, out)


def _render_frame(out, frame, live):
    """One frame; live TTY mode repaints in place (ANSI clear)."""
    if live and getattr(out, "isatty", lambda: False)():
        out.write("\x1b[2J\x1b[H")
    out.write(frame + "\n")
    out.flush()


def _top_journal(args, out):
    """``repro top <journal>``: poll the journal's unit markers and
    shard files until the campaign looks finished (or forever with a
    live TTY; ^C exits cleanly)."""
    import time
    from .obs.top import render_top, view_from_journals
    try:
        while True:
            try:
                view = view_from_journals(args.target)
            except FileNotFoundError as missing:
                raise SystemExit(str(missing))
            _render_frame(out, render_top({args.target: view}),
                          live=not args.once)
            if args.once or view.finished:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _top_socket(args, out):
    """``repro top <socket>``: subscribe to the service's telemetry
    plane and fold the live event stream into frames.  A reader
    thread pumps the blocking line protocol; the main loop renders
    every ``--interval`` seconds (one frame with ``--once``)."""
    import threading
    import time
    from .obs.top import fold_events, render_top
    from .service import ServiceClient
    client = ServiceClient(args.target)
    received = []
    drained = threading.Event()

    def pump():
        try:
            for event in client.telemetry():
                received.append(event)
        finally:
            drained.set()

    client.subscribe()
    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    views = {}
    cursor = 0
    try:
        while True:
            time.sleep(args.interval)
            batch = received[cursor:]
            cursor += len(batch)
            views = fold_events(batch, views)
            _render_frame(out, render_top(views),
                          live=not args.once)
            if args.once or drained.is_set():
                return 0
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def cmd_report(args, out):
    import os
    from .analysis.htmlreport import write_html_report
    from .injection.parallel import discover_shard_journals
    from .injection.runner import CampaignJournal, JournalError
    paths = ([args.journal] if os.path.exists(args.journal) else [])
    paths += discover_shard_journals(args.journal)
    if not paths:
        raise SystemExit("no journal at %s (or %s.shard*)"
                         % (args.journal, args.journal))
    # Symbolizing hotspots needs the compiled program's module; the
    # journal meta records which daemon that is.
    module = None
    if args.profile:
        for path in paths:
            try:
                meta, __, __, __ = CampaignJournal.load_with_report(
                    path, strict=False)
            except JournalError:
                continue
            if meta is not None:
                module = _spec_from_journal_meta(meta).build().module
                break
    output = args.out if args.out else args.journal + ".html"
    write_html_report(output, args.journal, events_path=args.events,
                      profile_path=args.profile, module=module)
    out.write("report: %s\n" % output)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'An Experimental Study of "
                    "Security Vulnerabilities Caused by Errors' "
                    "(DSN 2001)")
    verbosity = argparse.ArgumentParser(add_help=False)
    verbosity.add_argument("-v", "--verbose", action="count",
                           default=0,
                           help="per-component debug detail on stderr")
    verbosity.add_argument("-q", "--quiet", action="count", default=0,
                           help="warnings only on stderr")
    commands = parser.add_subparsers(dest="command", required=True)

    campaign = commands.add_parser(
        "campaign", parents=[verbosity],
        help="run an injection campaign")
    _add_daemon_arg(campaign)
    campaign.add_argument("--client", default="Client1")
    campaign.add_argument("--encoding", choices=("old", "new"),
                          default="old")
    campaign.add_argument("--fault-model",
                          choices=available_fault_models(),
                          default=DEFAULT_FAULT_MODEL,
                          help="injected fault family (registered "
                               "models: %s)"
                               % ", ".join(available_fault_models()))
    campaign.add_argument("--max-points", type=int, default=None,
                          help="truncate the experiment list (smoke "
                               "runs)")
    campaign.add_argument("--progress", action="store_true")
    campaign.add_argument("--save", default=None, metavar="PATH",
                          help="write per-experiment records as JSON")
    campaign.add_argument("--journal", default=None, metavar="PATH",
                          help="append-only JSONL run journal (one "
                               "record per completed experiment)")
    campaign.add_argument("--resume", action="store_true",
                          help="skip experiments already present in "
                               "the journal and rebuild their records "
                               "from it")
    campaign.add_argument("--retries", type=int, default=0,
                          metavar="N",
                          help="re-execute each activated experiment "
                               "N times; quarantine points whose "
                               "outcome will not stabilise")
    campaign.add_argument("--workers", type=int, default=None,
                          metavar="N",
                          help="shard the experiment list across N "
                               "processes; tallies are identical to "
                               "a serial run (journals become "
                               "per-shard <journal>.shardK files)")
    campaign.add_argument("--deadline", type=float, default=None,
                          metavar="SECONDS",
                          help="checkpoint and exit (status %d) after "
                               "this much wall clock; the journal "
                               "stays resumable" % EXIT_CHECKPOINTED)
    campaign.add_argument("--journal-fsync", type=int, default=None,
                          metavar="N",
                          help="fsync the journal every N records "
                               "(1 = every record); opt-in durability "
                               "against power loss / host SIGKILL")
    campaign.add_argument("--journal-salvage", action="store_true",
                          help="on resume, quarantine corrupt journal "
                               "lines (re-running their points) "
                               "instead of refusing the journal")
    campaign.add_argument("--full-restore", action="store_true",
                          help="rewrite every memory region between "
                               "experiments instead of only pages the "
                               "previous run dirtied (escape hatch; "
                               "outcomes are identical either way)")
    _add_obs_args(campaign)
    campaign.add_argument("--prune", action="store_true", default=False,
                          help="partition points into equivalence "
                               "classes and run one representative per "
                               "class (tables stay byte-identical to "
                               "the exhaustive sweep)")
    campaign.add_argument("--no-prune", dest="prune",
                          action="store_false",
                          help="force the exhaustive sweep (default)")
    campaign.add_argument("--audit-fraction", type=float, default=0.0,
                          metavar="F",
                          help="with --prune: exhaustively re-run a "
                               "seeded fraction F of fanned-out "
                               "classes and fail on any divergence")
    campaign.add_argument("--audit-seed", type=int, default=0,
                          help="seed for the audit class sample "
                               "(default 0)")
    campaign.add_argument("--forensics", action="store_true",
                          help="capture the last-instructions ring and "
                               "a register/flags snapshot on every "
                               "SD/HANG/HF record (see the "
                               "'forensics' command)")
    campaign.set_defaults(handler=cmd_campaign)

    disasm = commands.add_parser(
        "disasm", parents=[verbosity],
        help="disassemble the authentication sections")
    _add_daemon_arg(disasm)
    disasm.add_argument("--function", default=None)
    disasm.add_argument("--branches-only", action="store_true")
    disasm.set_defaults(handler=cmd_disasm)

    table4 = commands.add_parser(
        "table4", parents=[verbosity],
        help="print the branch re-encoding table")
    table4.set_defaults(handler=cmd_table4)

    figure4 = commands.add_parser(
        "figure4", parents=[verbosity],
        help="crash-latency histogram (Figure 4)")
    _add_daemon_arg(figure4)
    figure4.add_argument("--progress", action="store_true")
    figure4.add_argument("--workers", type=int, default=None,
                         metavar="N",
                         help="shard the campaign across N processes")
    _add_obs_args(figure4)
    figure4.set_defaults(handler=cmd_figure4)

    random_cmd = commands.add_parser(
        "random", parents=[verbosity],
        help="random-injection testbed (Section 7)")
    _add_daemon_arg(random_cmd)
    random_cmd.add_argument("--trials", type=int, default=1000)
    random_cmd.add_argument("--seed", type=int, default=2001)
    random_cmd.set_defaults(handler=cmd_random)

    forensics = commands.add_parser(
        "forensics", parents=[verbosity],
        help="render crash-forensics snapshots from a campaign "
             "journal")
    forensics.add_argument("journal",
                           help="JSONL journal written by 'campaign "
                                "--journal ... --forensics'")
    forensics.add_argument("--key", default=None,
                           metavar="ADDR:BYTE:BIT",
                           help="show only the record with this point "
                                "key")
    forensics.add_argument("--limit", type=int, default=10,
                           metavar="N",
                           help="show at most N snapshots (0 = all)")
    forensics.add_argument("--divergence", action="store_true",
                           help="replay each shown point and report "
                                "where it left the golden path")
    forensics.set_defaults(handler=cmd_forensics)

    serve = commands.add_parser(
        "serve", parents=[verbosity],
        help="persistent campaign service on a Unix socket (warm "
             "worker fleet; see repro.service for the protocol)")
    serve.add_argument("--socket", default=None, metavar="PATH",
                       help="Unix socket path (default "
                            "repro-service.sock)")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="long-lived warm workers in the fleet")
    serve.add_argument("--quota", type=int, default=2, metavar="N",
                       help="max in-flight campaigns per client "
                            "connection")
    serve.add_argument("--unit-instructions", type=int,
                       default=None, metavar="K",
                       help="whole instructions per work unit")
    serve.add_argument("--session-capacity", type=int, default=64,
                       metavar="N",
                       help="per-worker breakpoint-session cache "
                            "bound (LRU)")
    serve.set_defaults(handler=cmd_serve)

    status = commands.add_parser(
        "status", parents=[verbosity],
        help="summarise a campaign journal and its shard files")
    status.add_argument("journal",
                        help="journal base path (shard files "
                             "<journal>.shardK are discovered too)")
    status.set_defaults(handler=cmd_status)

    top = commands.add_parser(
        "top", parents=[verbosity],
        help="live campaign progress view (service socket or "
             "journal)")
    top.add_argument("target",
                     help="service Unix socket (streams telemetry) "
                          "or journal base path (polls markers)")
    top.add_argument("--interval", type=float, default=1.0,
                     metavar="SECONDS",
                     help="refresh period (default 1s)")
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (scripts, CI)")
    top.set_defaults(handler=cmd_top)

    report = commands.add_parser(
        "report", parents=[verbosity],
        help="self-contained HTML campaign report from a journal")
    report.add_argument("journal",
                        help="journal base path (shard files "
                             "<journal>.shardK are discovered too)")
    report.add_argument("--out", default=None, metavar="FILE",
                        help="output path (default <journal>.html)")
    report.add_argument("--events", default=None, metavar="FILE",
                        help="telemetry stream saved by campaign "
                             "--events: adds the supervision "
                             "timeline")
    report.add_argument("--profile", default=None, metavar="FILE",
                        help="profile saved by campaign --profile: "
                             "adds guest hotspot tables")
    report.set_defaults(handler=cmd_report)

    return parser


def _add_obs_args(parser):
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome-trace span file "
                             "(chrome://tracing / Perfetto); parallel "
                             "runs merge per-shard sinks into FILE")
    parser.add_argument("--metrics", default=None, metavar="FILE",
                        help="write the unified metrics registry "
                             "(outcome tallies, crash-latency "
                             "histogram, engine counters) as JSON")
    parser.add_argument("--events", default=None, metavar="FILE",
                        help="write the campaign's telemetry event "
                             "stream (unit/worker/outcome "
                             "milestones) as JSONL; replayable by "
                             "'repro report --events'")
    parser.add_argument("--profile", default=None, metavar="FILE",
                        help="write a deterministic guest-EIP "
                             "sampling profile as JSON (implies the "
                             "default --sample-period)")
    parser.add_argument("--sample-period", type=int, default=None,
                        metavar="N",
                        help="sample the guest EIP every N retired "
                             "instructions (default 997 when "
                             "--profile is set)")


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # ``python -m repro --daemon pop3d --fault-model register-bit``:
    # option-first invocations implicitly mean "campaign".
    if argv and argv[0].startswith("-") and argv[0] not in ("-h",
                                                            "--help"):
        argv = ["campaign"] + argv
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(getattr(args, "verbose", 0)
                      - getattr(args, "quiet", 0))
    try:
        return args.handler(args, out)
    except CampaignInterrupted as interrupted:
        out.write("%s\n" % interrupted)
        out.write("hint: %s\n" % interrupted.resume_hint())
        return EXIT_CHECKPOINTED
    except BrokenPipeError:
        # stdout went away (e.g. piped into head); exit quietly.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
