"""SPARC generality analysis.

Section 6 observes that the continuous encoding of conditional
branches "is also observed in the Sun SPARC instruction set".  This
module pins that observation down for SPARC V8's Bicc family: the
4-bit ``cond`` field (instruction bits 25-28) encodes the sixteen
integer-condition branches contiguously, and -- exactly like x86's
``je``/``jne`` -- every condition and its logical negation differ in
only the top ``cond`` bit, i.e. Hamming distance one.

It also applies the paper's odd-parity construction to a hypothetical
5-bit condition field (the 4 ``cond`` bits plus one reserved bit from
the instruction word), showing the same minimum-distance-2 fix carries
over to a RISC encoding.
"""

from __future__ import annotations

from dataclasses import dataclass

from .parity import odd_parity_bit

#: SPARC V8 Bicc cond field values (The SPARC Architecture Manual V8,
#: table on page 178).  cond ^ 8 is always the logical negation.
SPARC_BICC_CONDITIONS = {
    0b0000: "BN",      # branch never
    0b0001: "BE",      # equal
    0b0010: "BLE",     # less or equal
    0b0011: "BL",      # less
    0b0100: "BLEU",    # less or equal unsigned
    0b0101: "BCS",     # carry set
    0b0110: "BNEG",    # negative
    0b0111: "BVS",     # overflow set
    0b1000: "BA",      # branch always
    0b1001: "BNE",     # not equal
    0b1010: "BG",      # greater
    0b1011: "BGE",     # greater or equal
    0b1100: "BGU",     # greater unsigned
    0b1101: "BCC",     # carry clear
    0b1110: "BPOS",    # positive
    0b1111: "BVC",     # overflow clear
}


def condition_distance(cond_a, cond_b):
    """Hamming distance between two cond-field values."""
    return bin((cond_a ^ cond_b) & 0xF).count("1")


@dataclass(frozen=True)
class NegationPair:
    condition: str
    negation: str
    distance: int


def negation_pairs():
    """Each condition with its logical negation (cond ^ 8).

    On stock SPARC every pair has distance 1: the same one-bit
    grant/deny inversions the paper measures on x86.
    """
    pairs = []
    for cond in range(8):
        pairs.append(NegationPair(
            condition=SPARC_BICC_CONDITIONS[cond],
            negation=SPARC_BICC_CONDITIONS[cond | 8],
            distance=condition_distance(cond, cond | 8)))
    return pairs


def minimum_distance(encoding="old"):
    """Minimum pairwise distance over the Bicc condition block."""
    if encoding == "old":
        values = list(SPARC_BICC_CONDITIONS)
    else:
        values = [reencode_condition(cond)
                  for cond in SPARC_BICC_CONDITIONS]
    return min(bin(a ^ b).count("1")
               for i, a in enumerate(values)
               for b in values[i + 1:])


def reencode_condition(cond):
    """The paper's parity construction on a 5-bit condition field.

    Bit 4 (a reserved instruction bit in this hypothetical encoding)
    carries the odd parity of the four ``cond`` bits, giving every
    pair of conditions Hamming distance >= 2.
    """
    return ((odd_parity_bit(cond) << 4) | (cond & 0xF))


def format_sparc_analysis():
    """ASCII summary used by the extension benchmark."""
    lines = ["SPARC V8 Bicc condition field (bits 28..25):"]
    for pair in negation_pairs():
        lines.append("  %-5s <-> %-5s  Hamming distance %d"
                     % (pair.condition, pair.negation, pair.distance))
    lines.append("minimum intra-block distance: old=%d, parity "
                 "re-encoding=%d"
                 % (minimum_distance("old"), minimum_distance("new")))
    return "\n".join(lines)
