"""The proposed branch re-encoding scheme (paper Section 6)."""

from .parity import hamming_distance, odd_parity_bit, reencode_opcode
from .scheme import (format_table4, inject_mask_under_new_encoding,
                     inject_under_new_encoding, map_instruction,
                     MappingRow, minimum_branch_distance, SIX_BYTE_MAP,
                     table4_rows, TWO_BYTE_MAP)
from . import sparc

__all__ = [
    "hamming_distance", "odd_parity_bit", "reencode_opcode",
    "format_table4", "inject_mask_under_new_encoding",
    "inject_under_new_encoding", "map_instruction",
    "MappingRow", "minimum_branch_distance", "SIX_BYTE_MAP",
    "table4_rows", "TWO_BYTE_MAP", "sparc",
]
