"""The new instruction-set encoding (Table 4) and its evaluation trick.

The scheme re-encodes the sixteen conditional branch opcodes of each
block (2-byte ``0x70-0x7F``; second byte ``0x80-0x8F`` of the 6-byte
``0F``-prefixed block) with an odd-parity bit, raising the minimum
Hamming distance between any two conditional branches to two.  New
encodings that collide with existing non-branch opcodes *swap* with
them (e.g. ``jno`` takes 0x61 and ``popa`` moves to 0x71), so the map
is a bijection on byte values.

Evaluation works exactly as in Section 6.2: no re-encoded processor is
built.  Instead, the instruction picked for injection is mapped
old->new, the bit is flipped in the new encoding, and the result is
mapped new->old and executed on the ordinary processor.  Any byte not
named by Table 4 maps to itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from .parity import hamming_distance, reencode_opcode

_JCC2_RANGE = range(0x70, 0x80)
_JCC6_RANGE = range(0x80, 0x90)   # second byte of 0F-prefixed Jcc

_MNEMONICS = ("JO", "JNO", "JB", "JNB", "JE", "JNE", "JNA", "JA",
              "JS", "JNS", "JP", "JNP", "JL", "JNL", "JNG", "JG")


def _build_byte_map(block):
    """Bijective byte map for one branch block (with swaps)."""
    mapping = {byte: byte for byte in range(256)}
    for opcode in block:
        new = reencode_opcode(opcode)
        mapping[opcode] = new
        if new != opcode:
            # the displaced non-branch opcode takes the branch's slot
            mapping[new] = opcode
    return mapping


#: old->new map for the first opcode byte (2-byte Jcc block).
TWO_BYTE_MAP = _build_byte_map(_JCC2_RANGE)
#: old->new map for the second opcode byte of 0F-prefixed instructions.
SIX_BYTE_MAP = _build_byte_map(_JCC6_RANGE)

# Both maps are involutions (swap pairs), so old->new == new->old;
# keep distinct names for readability at call sites.
TWO_BYTE_INVERSE = TWO_BYTE_MAP
SIX_BYTE_INVERSE = SIX_BYTE_MAP


@dataclass(frozen=True)
class MappingRow:
    """One row of the paper's Table 4."""

    mnemonic: str
    two_byte_old: int
    two_byte_new: int
    six_byte_old: int
    six_byte_new: int


def table4_rows():
    """Regenerate Table 4 from the parity rule."""
    rows = []
    for index, mnemonic in enumerate(_MNEMONICS):
        old2 = 0x70 + index
        old6 = 0x80 + index
        rows.append(MappingRow(
            mnemonic=mnemonic,
            two_byte_old=old2, two_byte_new=TWO_BYTE_MAP[old2],
            six_byte_old=old6, six_byte_new=SIX_BYTE_MAP[old6]))
    return rows


def minimum_branch_distance(encoding="new"):
    """Minimum pairwise Hamming distance within each branch block."""
    if encoding == "new":
        two = [TWO_BYTE_MAP[b] for b in _JCC2_RANGE]
        six = [SIX_BYTE_MAP[b] for b in _JCC6_RANGE]
    else:
        two = list(_JCC2_RANGE)
        six = list(_JCC6_RANGE)
    def min_distance(values):
        return min(hamming_distance(a, b)
                   for i, a in enumerate(values)
                   for b in values[i + 1:])
    return min(min_distance(two), min_distance(six))


# ---------------------------------------------------------------------
# Instruction-level mapping

def map_instruction(raw, direction="to_new"):
    """Map an instruction's bytes between encodings.

    Only opcode bytes are re-encoded: byte 0 through the 2-byte map
    and, when byte 0 is the 0F escape, byte 1 through the 6-byte map.
    Prefix bytes ahead of the opcode are *themselves* potential swap
    targets (0x64 fs: is je's new slot), which the byte map handles
    uniformly; for the compiled daemons the opcode is always first.
    """
    mapping2 = TWO_BYTE_MAP if direction == "to_new" else TWO_BYTE_INVERSE
    mapping6 = SIX_BYTE_MAP if direction == "to_new" else SIX_BYTE_INVERSE
    out = bytearray(raw)
    if not out:
        return bytes(out)
    out[0] = mapping2[out[0]]
    if out[0] == 0x0F and len(out) > 1:
        out[1] = mapping6[out[1]]
    return bytes(out)


def inject_under_new_encoding(raw, byte_offset, bit):
    """The Section 6.2 procedure: map old->new, flip, map new->old.

    Returns the byte string to execute on the ordinary processor.
    """
    return inject_mask_under_new_encoding(raw, byte_offset, 1 << bit)


def inject_mask_under_new_encoding(raw, byte_offset, mask):
    """Section 6.2 generalised to an arbitrary error *mask*.

    Fault models are free to corrupt more than one bit of a byte
    (e.g. the two-adjacent-bit bursts that stress the Table 4
    minimum-distance claim); the map->flip->map-back evaluation is the
    same, only the XOR differs.
    """
    new_bytes = bytearray(map_instruction(raw, "to_new"))
    new_bytes[byte_offset] ^= mask & 0xFF
    return map_instruction(bytes(new_bytes), "to_old")


def format_table4():
    """Render Table 4 as ASCII (used by the benchmark)."""
    lines = ["%-10s %-10s %-10s %-12s %-12s"
             % ("Mnemonic", "2-byte Old", "2-byte New", "6-byte Old",
                "6-byte New")]
    for row in table4_rows():
        lines.append("%-10s %-10s %-10s %-12s %-12s"
                     % (row.mnemonic, "%02X" % row.two_byte_old,
                        "%02X" % row.two_byte_new,
                        "0F %02X" % row.six_byte_old,
                        "0F %02X" % row.six_byte_new))
    return "\n".join(lines)
