"""The paper's parity rule for re-encoding conditional branches.

Section 6.1: "the last bit of the most significant four bits of the
old opcode is used as the parity bit for the least four significant
bits (odd parity)".  Any parity code has minimum Hamming distance two,
so no single-bit flip can turn one re-encoded conditional branch into
another.
"""

from __future__ import annotations


def odd_parity_bit(nibble):
    """Parity bit such that (bit + popcount(nibble)) is odd."""
    ones = bin(nibble & 0xF).count("1")
    return 0 if ones % 2 else 1


def reencode_opcode(opcode):
    """Apply the parity rule to one opcode byte.

    Bit 4 (the last bit of the high nibble) becomes the odd-parity bit
    of the low nibble; the rest of the byte is unchanged.  For the
    2-byte block this maps 0x70-0x7F into 0x60-0x7F; for the 6-byte
    block's second byte it maps 0x80-0x8F into 0x80-0x9F.
    """
    low = opcode & 0xF
    if odd_parity_bit(low):
        return opcode | 0x10
    return opcode & ~0x10


def hamming_distance(a, b):
    """Number of differing bits between two byte values."""
    return bin((a ^ b) & 0xFF).count("1")
