"""Daemon registry: first-class, discoverable injection targets.

Before the registry, the ftpd/sshd pair was baked into if/else chains
in the CLI, the nightly gate and every benchmark, and wiring a new
daemon meant touching all of them.  A :class:`DaemonSpec` now carries
everything the injection pipeline needs to know about one target --
how to build it, which scripted clients drive it, which client is the
attacker -- and the campaign layers look targets up by name.

Adding a daemon is one :func:`register_daemon` call; it then appears
in ``--daemon`` choices, the CI plugin matrix and
:func:`repro.injection.campaign.enumerate_specs` with no further code
changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ftpd import CLIENT_FACTORIES as _FTP_CLIENTS, FtpDaemon
from .pop3d import CLIENT_FACTORIES as _POP3_CLIENTS, Pop3Daemon
from .sshd import CLIENT_FACTORIES as _SSH_CLIENTS, SshDaemon


@dataclass(frozen=True)
class DaemonSpec:
    """Registry entry for one injectable server."""

    name: str                      # CLI identifier ("ftpd")
    daemon_class: type             # apps.common.Daemon subclass
    client_factories: dict = field(default_factory=dict)
    #: the access pattern BRK is defined for (wrong credentials).
    attacker_client: str = "Client1"
    description: str = ""

    def build(self, **kwargs):
        """Compile a fresh daemon instance."""
        return self.daemon_class(**kwargs)

    def client_factory(self, client):
        try:
            return self.client_factories[client]
        except KeyError:
            raise KeyError(
                "daemon %r has no client %r (have: %s)"
                % (self.name, client,
                   ", ".join(sorted(self.client_factories))))

    def clients(self):
        """Client names in their canonical (insertion) order."""
        return tuple(self.client_factories)


_REGISTRY = {}


def register_daemon(spec):
    """Publish *spec*; returns it so modules can keep a handle.

    Names are unique -- re-registration is almost always an import
    mistake, so it raises instead of silently shadowing.
    """
    if spec.name in _REGISTRY:
        raise ValueError("daemon %r already registered" % spec.name)
    _REGISTRY[spec.name] = spec
    return spec


def available_daemons():
    """Registered daemon names, sorted for stable CLI/help output."""
    return sorted(_REGISTRY)


def get_daemon_spec(name):
    """Look a daemon up by name (KeyError lists what exists)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError("unknown daemon %r (have: %s)"
                       % (name, ", ".join(available_daemons())))


def make_daemon(name, **kwargs):
    """Compile a registered daemon by name."""
    return get_daemon_spec(name).build(**kwargs)


register_daemon(DaemonSpec(
    name="ftpd", daemon_class=FtpDaemon,
    client_factories=dict(_FTP_CLIENTS),
    description="wu-ftpd-2.6.0-like FTP daemon (user/pass_)"))

register_daemon(DaemonSpec(
    name="sshd", daemon_class=SshDaemon,
    client_factories=dict(_SSH_CLIENTS),
    description="ssh-1.2.30-like SSH daemon (do_authentication, "
                "auth_rhosts, auth_password)"))

register_daemon(DaemonSpec(
    name="pop3d", daemon_class=Pop3Daemon,
    client_factories=dict(_POP3_CLIENTS),
    description="qpopper-like POP3 daemon (pop3_user, pop3_pass, "
                "pop3_apop)"))
