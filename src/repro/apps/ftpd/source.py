'''Mini-C source of the FTP daemon (wu-ftpd-2.6.0-like).

The authentication section -- ``user()`` and ``pass_()`` -- mirrors
the structure and *breadth* of wu-ftpd's ftpd.c (the paper reports
1211 lines of C for the two functions): guest/anonymous handling with
its own policy block, /etc/ftpusers denial, shutdown checks, access
classes with connection limits, name validation, the crypt+strcmp
password comparison of the paper's Example 1, login attempt limits
with lockout, account expiry, and post-grant bookkeeping.  The breadth
matters experimentally: activation rate and the NM/SD/FSV/BRK split
depend on how much policy code surrounds each decision point.

Protocol simplification (documented in DESIGN.md): RETR streams the
file inline on the control channel between the 150 and 226 replies
instead of opening a data connection; the break-in criterion
("client retrieved files") is unchanged.
'''

FTPD_SOURCE = r"""
/* ---- server configuration --------------------------------------------- */

int anon_allowed = 1;
int server_shutdown = 0;
int max_login_attempts = 3;
int min_uid = 100;
int guest_uid = 65534;
int limit_real = 16;
int limit_guest = 32;
int deny_severity = 1;
/* optional subsystems, disabled in the stock configuration -- their
 * policy code is present in user()/pass_() (as in wu-ftpd) but not
 * exercised by the standard client patterns */
int use_host_acl = 0;
int password_aging = 0;
int use_skey = 0;
int use_banner = 0;
int guest_email_required = 0;
int deny_host_count = 2;
char *deny_hosts[] = {"cracker.example.org", "darkside.example.org"};
char remote_host[32] = "client.example.com";
char guest_root[32];

/* ---- per-connection state ---------------------------------------------- */

int logged_in;
int askpasswd;
int guest;
int denied_user;
int login_attempts;
int anonymous_connections;
int real_connections;
int acl_class;
int account_uid;
char curname[32];
char reply_buf[16];
char guest_email[64];

/* ---- replies ------------------------------------------------------------ */

void reply(int code, char *text) {
    itoa10(code, reply_buf);
    send_str(reply_buf);
    send_str(" ");
    send_str(text);
    send_str("\r\n");
}

void lreply(int code, char *text) {
    itoa10(code, reply_buf);
    send_str(reply_buf);
    send_str("-");
    send_str(text);
    send_str("\r\n");
}

/* syslog(3) stand-in: severity-gated write to stderr */
void log_event(int severity, char *message) {
    if (severity <= deny_severity) {
        write(2, message, strlen(message));
        write(2, "\n", 1);
    }
}

/* ---- policy helpers ------------------------------------------------------ */

/* /etc/ftpusers check: non-zero when the account may not use FTP. */
int checkuser(int idx) {
    if (idx < 0) {
        return 0;
    }
    if (pw_denied[idx]) {
        return 1;
    }
    return 0;
}

/* System accounts (uid < min_uid) never get FTP access. */
int uid_restricted(int idx) {
    if (idx < 0) {
        return 0;
    }
    if (pw_uids[idx] < min_uid) {
        return 1;
    }
    return 0;
}

/* Access class determination (wu-ftpd's acl_getclass): 0 = real,
 * 1 = guest, 2 = anonymous. */
int acl_getclass(int is_guest, int idx) {
    if (is_guest) {
        return 2;
    }
    if (idx >= 0 && pw_uids[idx] >= guest_uid) {
        return 1;
    }
    return 0;
}

/* Per-class connection limit check (acl_countusers). */
int class_limit_reached(int class_id) {
    if (class_id == 2) {
        if (anonymous_connections >= limit_guest) {
            return 1;
        }
        return 0;
    }
    if (real_connections >= limit_real) {
        return 1;
    }
    return 0;
}

/* User names must be short and printable (wu-ftpd rejects others). */
int valid_name(char *name) {
    int i;
    i = 0;
    while (name[i]) {
        if (name[i] < ' ') {
            return 0;
        }
        if (name[i] > 126) {
            return 0;
        }
        i = i + 1;
        if (i >= 24) {
            return 0;
        }
    }
    if (i == 0) {
        return 0;
    }
    return 1;
}

/* Guest passwords should look like an email address; wu-ftpd only
 * warns, so the return value is advisory. */
int looks_like_email(char *addr) {
    int i;
    int has_at;
    int has_dot;
    i = 0;
    has_at = 0;
    has_dot = 0;
    while (addr[i]) {
        if (addr[i] == '@') {
            has_at = has_at + 1;
        }
        if (addr[i] == '.') {
            has_dot = has_dot + 1;
        }
        i = i + 1;
    }
    if (has_at == 1 && has_dot >= 1) {
        return 1;
    }
    return 0;
}

/* Account expiry stand-in (wu-ftpd consults pw_change/pw_expire). */
int account_expired(int idx) {
    int now;
    if (idx < 0) {
        return 0;
    }
    now = time_now();
    if (now < 0) {
        return 1;
    }
    return 0;
}

/* ---- USER ----------------------------------------------------------------- */

void user(char *name) {
    int idx;
    int class_id;
    int i;
    int fd;
    int n;
    char banner_line[64];

    if (logged_in) {
        if (guest) {
            reply(530, "Can't change user from guest login.");
            return;
        }
        reply(530, "Already logged in.");
        return;
    }
    logged_in = 0;
    askpasswd = 0;
    guest = 0;
    denied_user = 0;
    account_uid = 0 - 1;

    if (name[0] == 0) {
        reply(500, "USER: command requires a parameter.");
        return;
    }
    if (valid_name(name) == 0) {
        log_event(1, "refused bad user name");
        reply(530, "Invalid user name.");
        return;
    }

    /* tcp-wrappers-style host ACL (disabled in the stock config) */
    if (use_host_acl) {
        i = 0;
        while (i < deny_host_count) {
            if (strcmp(remote_host, deny_hosts[i]) == 0) {
                log_event(0, "refused connection from denied host");
                reply(530, "Access from your host is not allowed.");
                exit(1);
            }
            i = i + 1;
        }
    }

    if (strcasecmp_c(name, "ftp") == 0
            || strcasecmp_c(name, "anonymous") == 0) {
        /* ---- anonymous branch (wu-ftpd's guest block) ---- */
        if (server_shutdown) {
            lreply(530, "System shutdown in progress.");
            reply(530, "No anonymous login during shutdown.");
            return;
        }
        if (anon_allowed == 0) {
            log_event(1, "anonymous access refused by configuration");
            reply(530, "User anonymous access denied.");
            return;
        }
        class_id = acl_getclass(1, 0 - 1);
        if (class_limit_reached(class_id)) {
            lreply(530, "Too many anonymous users right now.");
            reply(530, "Try again later.");
            return;
        }
        acl_class = class_id;
        guest = 1;
        askpasswd = 1;
        account_uid = guest_uid;
        anonymous_connections = anonymous_connections + 1;
        strncpy(curname, "ftp", 32);
        /* chroot jail setup for the guest account */
        strcpy(guest_root, "/home/ftp");
        if (use_banner) {
            /* show the pre-login banner file line by line */
            fd = open("/etc/ftpbanner");
            if (fd >= 0) {
                n = read(fd, banner_line, 63);
                while (n > 0) {
                    banner_line[n] = 0;
                    lreply(331, banner_line);
                    n = read(fd, banner_line, 63);
                }
                close(fd);
            }
        }
        reply(331, "Guest login ok, send your email as password.");
        return;
    }

    if (server_shutdown) {
        lreply(530, "System shutdown in progress.");
        reply(530, "Try again later.");
        return;
    }

    idx = getpwnam_index(name);
    if (idx >= 0) {
        account_uid = pw_uids[idx];
        if (checkuser(idx)) {
            log_event(1, "user in ftpusers, marked for denial");
            denied_user = 1;
        }
        if (uid_restricted(idx)) {
            log_event(1, "system account, marked for denial");
            denied_user = 1;
        }
        class_id = acl_getclass(0, idx);
        if (class_limit_reached(class_id)) {
            reply(530, "Too many users in your class, try later.");
            return;
        }
        acl_class = class_id;
    } else {
        /* Unknown user: ask for a password anyway so the reply does
         * not leak which accounts exist (wu-ftpd behaviour), but mark
         * the session for denial. */
        denied_user = 1;
    }

    strncpy(curname, name, 32);
    askpasswd = 1;
    reply(331, "Password required.");
}

/* ---- PASS ------------------------------------------------------------------ */

void pass_(char *passwd) {
    char *xpasswd;
    int rval;
    int idx;
    int age;
    int delay;

    if (logged_in) {
        reply(503, "Already logged in.");
        return;
    }
    if (askpasswd == 0) {
        reply(503, "Login with USER first.");
        return;
    }

    if (guest == 0) {
        rval = 1;
        idx = getpwnam_index(curname);
        if (idx >= 0 && denied_user == 0 && passwd[0] != 0
                && (strcmp(crypt13(passwd, pw_salts[idx]),
                           pw_hashes[idx]) == 0)) {
            rval = 0;
        }
        if (rval == 0 && account_expired(idx)) {
            reply(530, "Account expired, contact the administrator.");
            askpasswd = 0;
            return;
        }
        /* password-aging warnings (disabled in the stock config) */
        if (password_aging) {
            if (rval == 0) {
                age = time_now() % 90;
                if (age > 75) {
                    lreply(230, "Your password expires in a few days.");
                }
                if (age > 85) {
                    lreply(230, "Change it with passwd(1) soon.");
                }
            }
        }
        /* s/key one-time-password fallback (disabled) */
        if (use_skey && rval) {
            reply(331, "s/key 97 ke1234 -- respond with your one-time "
                       "password");
            askpasswd = 1;
            return;
        }
        if (rval) {
            reply(530, "Login incorrect.");
            askpasswd = 0;
            login_attempts = login_attempts + 1;
            log_event(1, "failed login attempt");
            if (login_attempts >= max_login_attempts) {
                /* progressive back-off before dropping the link */
                delay = 0;
                while (delay < login_attempts * 8) {
                    delay = delay + 1;
                }
                log_event(0, "repeated login failures, dropping link");
                reply(421, "Too many login failures, goodbye.");
                exit(1);
            }
            return;
        }
        real_connections = real_connections + 1;
    } else {
        /* Anonymous: any password accepted; remember the email and
         * warn when it does not look like one (wu-ftpd behaviour). */
        strncpy(guest_email, passwd, 64);
        if (looks_like_email(passwd) == 0) {
            if (guest_email_required) {
                reply(530, "Guest login requires a valid e-mail "
                           "address as password.");
                askpasswd = 0;
                return;
            }
            lreply(230, "Next time please use your e-mail address as "
                        "your password.");
        }
    }

    /* ---- grant path ---- */
    login_attempts = 0;
    logged_in = 1;
    if (guest) {
        log_event(1, "ANONYMOUS FTP LOGIN");
        reply(230, "Guest login ok, access restrictions apply.");
    } else {
        log_event(1, "FTP LOGIN");
        reply(230, "User logged in, proceed.");
    }
}

/* ---- RETR ------------------------------------------------------------------- */

/* File names must stay inside the /pub tree: no absolute paths, no
 * ".." components (wu-ftpd's guest-path policing). */
int safe_filename(char *name) {
    int i;
    if (name[0] == '/') {
        return 0;
    }
    i = 0;
    while (name[i]) {
        if (name[i] == '.' && name[i + 1] == '.') {
            return 0;
        }
        i = i + 1;
    }
    return 1;
}

void retrieve(char *name) {
    int fd;
    int n;
    char buf[128];
    char path[96];

    if (logged_in == 0) {
        reply(530, "Please login with USER and PASS.");
        return;
    }
    if (name[0] == 0) {
        reply(500, "RETR: command requires a parameter.");
        return;
    }
    if (strlen(name) > 64) {
        reply(553, "File name too long.");
        return;
    }
    if (safe_filename(name) == 0) {
        log_event(1, "path traversal attempt refused");
        reply(553, "Path not allowed.");
        return;
    }
    strcpy(path, "/pub/");
    strcat(path, name);
    fd = open(path);
    if (fd < 0) {
        reply(550, "No such file or directory.");
        return;
    }
    reply(150, "Opening ASCII mode data connection.");
    n = read(fd, buf, 128);
    while (n > 0) {
        write(1, buf, n);
        n = read(fd, buf, 128);
    }
    close(fd);
    send_str("\r\n");
    reply(226, "Transfer complete.");
}

/* ---- command loop ------------------------------------------------------------ */

void upcase(char *s) {
    int i;
    i = 0;
    while (s[i]) {
        if (s[i] >= 'a' && s[i] <= 'z') {
            s[i] = s[i] - 32;
        }
        i = i + 1;
    }
}

int main() {
    char line[128];
    char verb[8];
    char *arg;
    int n;
    int i;
    int commands;

    logged_in = 0;
    askpasswd = 0;
    login_attempts = 0;
    commands = 0;
    reply(220, "repro FTP server (wu-ftpd-2.6.0 reproduction) ready.");

    while (1) {
        n = read_line(line, 128);
        if (n < 0) {
            return 0;
        }
        commands = commands + 1;
        if (commands > 64) {
            reply(421, "Command limit exceeded.");
            return 1;
        }

        /* split verb from argument */
        i = 0;
        while (line[i] && line[i] != ' ' && i < 7) {
            verb[i] = line[i];
            i = i + 1;
        }
        verb[i] = 0;
        arg = line + i;
        while (arg[0] == ' ') {
            arg = arg + 1;
        }
        upcase(verb);

        if (strcmp(verb, "USER") == 0) {
            user(arg);
        } else if (strcmp(verb, "PASS") == 0) {
            pass_(arg);
        } else if (strcmp(verb, "RETR") == 0) {
            retrieve(arg);
        } else if (strcmp(verb, "SYST") == 0) {
            reply(215, "UNIX Type: L8");
        } else if (strcmp(verb, "NOOP") == 0) {
            reply(200, "NOOP command successful.");
        } else if (strcmp(verb, "TYPE") == 0) {
            reply(200, "Type set.");
        } else if (strcmp(verb, "QUIT") == 0) {
            reply(221, "Goodbye.");
            return 0;
        } else {
            reply(500, "Command not understood.");
        }
    }
    return 0;
}
"""
