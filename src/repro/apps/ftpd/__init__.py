"""FTP application: daemon, protocol constants and scripted clients."""

from .clients import (CLIENT_FACTORIES, FtpClient, client1, client2,
                      client3, client4, traversal_client)
from .server import FtpDaemon
from .source import FTPD_SOURCE

__all__ = ["FtpDaemon", "FtpClient", "CLIENT_FACTORIES", "client1",
           "client2", "client3", "client4", "traversal_client",
           "FTPD_SOURCE"]
