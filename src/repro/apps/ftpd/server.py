"""FTP daemon harness: compiles the mini-C server and exposes the
injection-relevant metadata (the ``user``/``pass_`` address ranges)."""

from __future__ import annotations

from ..common import Daemon
from .source import FTPD_SOURCE


class FtpDaemon(Daemon):
    """wu-ftpd-2.6.0-like daemon; see :mod:`.source` for the C code."""

    SOURCE = FTPD_SOURCE
    AUTH_FUNCTIONS = ("user", "pass_")
