"""Scripted FTP clients reproducing the paper's four access patterns.

* Client1 -- existing user, wrong password (the attacker; the only
  pattern for which BRK is defined).
* Client2 -- existing user, correct password.
* Client3 -- non-existing user name and password.
* Client4 -- anonymous login.

All clients try to retrieve files when the server authorises the
login, because the paper's break-in criterion for ftpd is "a client
successfully logged in and retrieved files from the server".
"""

from __future__ import annotations

from ...kernel import ScriptedClient

#: give up after this many unparseable/unexpected server lines.
MAX_CONFUSION = 8


class FtpClient(ScriptedClient):
    """Reply-code-driven FTP user agent with outcome milestones."""

    def __init__(self, username, password, retrieve=("readme.txt",
                                                     "data.bin")):
        super().__init__()
        self.username = username
        self.password = password
        self.retrieve_queue = list(retrieve)
        self.buffer = b""
        self.in_data_mode = False
        self.data_payload = b""
        self.current_payload = b""
        # Milestones used by outcome classification.
        self.granted = False
        self.denied = False
        self.retrieved_files = 0
        self.confusion = 0
        self.quit_sent = False

    # -- plumbing --------------------------------------------------------

    def receive(self, data):
        self.buffer += data
        while b"\n" in self.buffer and not self.closed:
            line, __, rest = self.buffer.partition(b"\n")
            self.buffer = rest
            self._handle_line(line.rstrip(b"\r"))

    def describe_wait(self):
        return "ftp client (user=%s) awaiting a reply" % self.username

    def _give_up(self):
        self.confusion += 1
        if self.confusion >= MAX_CONFUSION:
            self.close()

    # -- protocol ---------------------------------------------------------

    def _handle_line(self, line):
        if self.in_data_mode:
            if line.startswith(b"226"):
                self.in_data_mode = False
                if self.current_payload:
                    self.retrieved_files += 1
                    self.data_payload += self.current_payload
                self._next_action()
            else:
                self.current_payload += line + b"\n"
            return
        code = self._parse_code(line)
        if code is None:
            self._give_up()
            return
        self._handle_reply(code)

    @staticmethod
    def _parse_code(line):
        if len(line) < 3 or not line[:3].isdigit():
            return None
        return int(line[:3])

    def _handle_reply(self, code):
        if code == 220:
            self.send("USER %s\r\n" % self.username)
        elif code == 331:
            self.send("PASS %s\r\n" % self.password)
        elif code == 230:
            self.granted = True
            self._next_action()
        elif code in (530, 503, 421):
            self.denied = True
            self._quit()
        elif code == 150:
            self.in_data_mode = True
            self.current_payload = b""
        elif code in (550, 553, 500):
            # Failed transfer or rejected command: move on.
            self._next_action()
        elif code == 221:
            self.close()
        elif code in (200, 215, 226):
            self._next_action()
        else:
            self._give_up()

    def _next_action(self):
        if not self.granted:
            self._give_up()
            return
        if self.retrieve_queue:
            target = self.retrieve_queue.pop(0)
            self.send("RETR %s\r\n" % target)
        else:
            self._quit()

    def _quit(self):
        if self.quit_sent:
            # Second terminal reply after QUIT: stop talking entirely.
            self.close()
            return
        self.quit_sent = True
        self.send("QUIT\r\n")

    # -- outcome ----------------------------------------------------------

    def broke_in(self):
        """True when the server granted access AND served file data."""
        return self.granted and self.retrieved_files > 0


def client1():
    """Existing user, wrong password (attacker)."""
    return FtpClient("alice", "letmein-wrong")


def client2():
    """Existing user, correct password."""
    return FtpClient("alice", "correcthorse")


def client3():
    """Non-existing user name and password."""
    return FtpClient("mallory", "whatever123")


def client4():
    """Anonymous login."""
    return FtpClient("anonymous", "guest@example.net")


def traversal_client():
    """Extension attack pattern (paper Section 7 future work: "other
    forms of security attacks besides login with fake password").

    Logs in legitimately as the anonymous guest, then attempts a path
    traversal (``RETR ../etc/motd``).  The clean server refuses the
    name, so golden retrieves nothing; any injected run in which the
    client obtains the file is a break-in against the *authorization*
    code rather than the authentication code.
    """
    return FtpClient("anonymous", "guest@example.net",
                     retrieve=("../etc/motd",))


CLIENT_FACTORIES = {
    "Client1": client1,
    "Client2": client2,
    "Client3": client3,
    "Client4": client4,
}
