'''Mini-C source of the POP3 daemon (extension application).

The paper's Section 7 calls for "more experimentation ... on a variety
of applications".  POP3 (RFC 1939) is a natural third target: its
authorization state has *two* entry points -- USER/PASS and APOP --
placing it between wu-ftpd (one mechanism) and sshd (three) on the
paper's single-vs-multiple-points-of-entry axis.

The daemon mirrors qpopper-era structure: a greeting banner carrying
the APOP timestamp, an AUTHORIZATION state with ``pop3_user()``,
``pop3_pass()`` and ``pop3_apop()`` (the injection targets), and a
TRANSACTION state serving a per-account maildrop.  APOP's MD5 digest
is replaced by the same ``crypt13`` used everywhere else (the digest
input is banner + password, exactly APOP's shape).
'''

POP3D_SOURCE = r"""
/* ---- configuration ------------------------------------------------------ */

int apop_enabled = 1;
int max_auth_failures = 3;

/* ---- session state ------------------------------------------------------- */

int authorized;
int have_user;
int auth_failures;
int session_user_idx;
char session_user[32];
char apop_banner[32];

/* ---- replies --------------------------------------------------------------- */

void ok(char *text) {
    send_str("+OK ");
    send_str(text);
    send_str("\r\n");
}

void err(char *text) {
    send_str("-ERR ");
    send_str(text);
    send_str("\r\n");
}

/* ---- AUTHORIZATION state (injection targets) -------------------------------- */

void pop3_user(char *name) {
    if (authorized) {
        err("already authenticated");
        return;
    }
    if (name[0] == 0) {
        err("USER requires a name");
        return;
    }
    /* qpopper accepts any name here and fails at PASS, so account
     * existence is not leaked. */
    strncpy(session_user, name, 32);
    session_user_idx = getpwnam_index(name);
    have_user = 1;
    ok("name is a valid mailbox");
}

void auth_failed() {
    auth_failures = auth_failures + 1;
    if (auth_failures >= max_auth_failures) {
        err("too many authentication failures");
        exit(1);
    }
    err("invalid password");
}

void pop3_pass(char *password) {
    char *digest;
    int rval;

    if (authorized) {
        err("already authenticated");
        return;
    }
    if (have_user == 0) {
        err("send USER first");
        return;
    }
    rval = 1;
    if (session_user_idx >= 0 && password[0] != 0
            && pw_denied[session_user_idx] == 0
            && (strcmp(crypt13(password, pw_salts[session_user_idx]),
                       pw_hashes[session_user_idx]) == 0)) {
        rval = 0;
    }
    if (rval) {
        auth_failed();
        return;
    }
    authorized = 1;
    ok("maildrop locked and ready");
}

/* APOP name digest: digest must equal crypt13(password, banner salt).
 * The second authentication entry point. */
void pop3_apop(char *arguments) {
    char name[32];
    char *digest;
    char *expected;
    int i;
    int j;
    int idx;

    if (authorized) {
        err("already authenticated");
        return;
    }
    if (apop_enabled == 0) {
        err("APOP not supported");
        return;
    }
    /* split "name digest" */
    i = 0;
    while (arguments[i] && arguments[i] != ' ' && i < 31) {
        name[i] = arguments[i];
        i = i + 1;
    }
    name[i] = 0;
    while (arguments[i] == ' ') {
        i = i + 1;
    }
    digest = arguments + i;
    if (name[0] == 0 || digest[0] == 0) {
        err("APOP requires name and digest");
        return;
    }
    idx = getpwnam_index(name);
    if (idx < 0) {
        auth_failed();
        return;
    }
    if (pw_denied[idx]) {
        auth_failed();
        return;
    }
    /* expected digest: crypt13 of the stored password hash, salted by
     * the banner (stands in for MD5(banner + password)) */
    expected = crypt13(pw_hashes[idx], apop_banner);
    if (strcmp(digest, expected) != 0) {
        auth_failed();
        return;
    }
    strncpy(session_user, name, 32);
    session_user_idx = idx;
    authorized = 1;
    ok("maildrop locked and ready");
}

/* ---- TRANSACTION state -------------------------------------------------------- */

void stat_cmd() {
    char count_buf[16];
    if (authorized == 0) {
        err("not authenticated");
        return;
    }
    itoa10(mail_count, count_buf);
    send_str("+OK ");
    send_str(count_buf);
    send_str(" messages\r\n");
}

void retr_cmd(char *argument) {
    int index;
    if (authorized == 0) {
        err("not authenticated");
        return;
    }
    index = atoi(argument);
    if (index < 1 || index > mail_count) {
        err("no such message");
        return;
    }
    ok("message follows");
    send_str(mail_bodies[index - 1]);
    send_str("\r\n.\r\n");
}

/* ---- command loop ---------------------------------------------------------------- */

void upcase4(char *s) {
    int i;
    i = 0;
    while (s[i]) {
        if (s[i] >= 'a' && s[i] <= 'z') {
            s[i] = s[i] - 32;
        }
        i = i + 1;
    }
}

int main() {
    char line[128];
    char verb[8];
    char *arg;
    int n;
    int i;
    int commands;

    authorized = 0;
    have_user = 0;
    auth_failures = 0;
    session_user_idx = 0 - 1;
    commands = 0;
    strcpy(apop_banner, "17");

    send_str("+OK POP3 server ready <1207.17@repro>\r\n");

    while (1) {
        n = read_line(line, 128);
        if (n < 0) {
            return 0;
        }
        commands = commands + 1;
        if (commands > 48) {
            err("command limit exceeded");
            return 1;
        }
        i = 0;
        while (line[i] && line[i] != ' ' && i < 7) {
            verb[i] = line[i];
            i = i + 1;
        }
        verb[i] = 0;
        arg = line + i;
        while (arg[0] == ' ') {
            arg = arg + 1;
        }
        upcase4(verb);

        /* first-character dispatch, then exact match (qpopper's
         * command table walks are switch-shaped like this) */
        switch (verb[0]) {
        case 'U':
            if (strcmp(verb, "USER") == 0) {
                pop3_user(arg);
            } else {
                err("unknown command");
            }
            break;
        case 'P':
            if (strcmp(verb, "PASS") == 0) {
                pop3_pass(arg);
            } else {
                err("unknown command");
            }
            break;
        case 'A':
            if (strcmp(verb, "APOP") == 0) {
                pop3_apop(arg);
            } else {
                err("unknown command");
            }
            break;
        case 'S':
            if (strcmp(verb, "STAT") == 0) {
                stat_cmd();
            } else {
                err("unknown command");
            }
            break;
        case 'R':
            if (strcmp(verb, "RETR") == 0) {
                retr_cmd(arg);
            } else {
                err("unknown command");
            }
            break;
        case 'N':
            if (strcmp(verb, "NOOP") == 0) {
                ok("");
            } else {
                err("unknown command");
            }
            break;
        case 'Q':
            if (strcmp(verb, "QUIT") == 0) {
                ok("bye");
                return 0;
            }
            err("unknown command");
            break;
        default:
            err("unknown command");
        }
    }
    return 0;
}
"""

MAILDROP_SOURCE = """
int mail_count = 2;
char *mail_bodies[] = {
    "From: root@repro\\r\\nSubject: welcome\\r\\n\\r\\nhello",
    "From: ops@repro\\r\\nSubject: reminder\\r\\n\\r\\nrotate the logs"
};
"""
