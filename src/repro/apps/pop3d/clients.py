"""Scripted POP3 clients.

Client1 is the attacker (existing user, wrong password), Client2 the
legitimate user, ClientA an APOP user with the correct digest.
Break-in for POP3 means the client *retrieved mail* it should not have
been able to read.
"""

from __future__ import annotations

import re

from ...kernel import crypt13, ScriptedClient

MAX_CONFUSION = 8

_BANNER_SALT_RE = re.compile(rb"<\d+\.(\d+)@")


class Pop3Client(ScriptedClient):
    """+OK/-ERR driven POP3 user agent."""

    def __init__(self, username, password, use_apop=False):
        super().__init__()
        self.username = username
        self.password = password
        self.use_apop = use_apop
        self.buffer = b""
        self.state = "banner"
        self.in_message = False
        # Milestones.
        self.granted = False
        self.denied = False
        self.messages_read = 0
        self.mail_payload = b""
        self.confusion = 0

    def receive(self, data):
        self.buffer += data
        while b"\n" in self.buffer and not self.closed:
            line, __, self.buffer = self.buffer.partition(b"\n")
            self._handle_line(line.rstrip(b"\r"))

    def describe_wait(self):
        return "pop3 client (user=%s) awaiting a reply" % self.username

    def _give_up(self):
        self.confusion += 1
        if self.confusion >= MAX_CONFUSION:
            self.close()

    # -- protocol -----------------------------------------------------

    def _handle_line(self, line):
        if self.in_message:
            if line == b".":
                self.in_message = False
                self.messages_read += 1
                self.state = "quit"
                self.send("QUIT\r\n")
            else:
                self.mail_payload += line + b"\n"
            return
        if line.startswith(b"+OK"):
            self._advance(line)
        elif line.startswith(b"-ERR"):
            self._failed(line)
        else:
            self._give_up()

    def _advance(self, line):
        if self.state == "banner":
            if self.use_apop:
                digest = self._apop_digest(line)
                self.state = "auth"
                self.send("APOP %s %s\r\n" % (self.username, digest))
            else:
                self.state = "user"
                self.send("USER %s\r\n" % self.username)
        elif self.state == "user":
            self.state = "auth"
            self.send("PASS %s\r\n" % self.password)
        elif self.state == "auth":
            self.granted = True
            self.state = "retr"
            self.send("RETR 1\r\n")
        elif self.state == "retr":
            self.in_message = True
        elif self.state == "quit":
            self.close()
        else:
            self._give_up()

    def _failed(self, line):
        if self.state in ("user", "auth"):
            self.denied = True
            self.state = "quit"
            self.send("QUIT\r\n")
        elif self.state == "quit":
            self.close()
        else:
            self._give_up()

    def _apop_digest(self, banner):
        """crypt13 of the account's stored hash, salted by the banner
        timestamp (twin of the daemon's pop3_apop)."""
        match = _BANNER_SALT_RE.search(banner)
        salt = match.group(1).decode() if match else ".."
        stored = crypt13(self.password, self._salt_for_user())
        return crypt13(stored, salt)

    def _salt_for_user(self):
        # scripted clients know the account salts (same machine in the
        # paper's testbed)
        from ...kernel import default_database
        account = default_database().lookup(self.username)
        return account.salt if account else ".."

    # -- outcome --------------------------------------------------------

    def broke_in(self):
        return self.granted and self.messages_read > 0


def client1():
    """Existing user, wrong password (attacker)."""
    return Pop3Client("alice", "guessed-wrong")


def client2():
    """Existing user, correct password."""
    return Pop3Client("alice", "correcthorse")


def client_apop():
    """Existing user authenticating via APOP with the right digest."""
    return Pop3Client("carol", "wonderland", use_apop=True)


def client_apop_attacker():
    """APOP attempt with a wrong password (digest will not match)."""
    return Pop3Client("carol", "not-wonderland", use_apop=True)


CLIENT_FACTORIES = {
    "Client1": client1,
    "Client2": client2,
    "ClientA": client_apop,
}
