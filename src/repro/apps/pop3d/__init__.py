"""POP3 application (extension): daemon and scripted clients."""

from .clients import (CLIENT_FACTORIES, client1, client2, client_apop,
                      client_apop_attacker, Pop3Client)
from .server import Pop3Daemon
from .source import POP3D_SOURCE

__all__ = ["Pop3Daemon", "Pop3Client", "CLIENT_FACTORIES", "client1",
           "client2", "client_apop", "client_apop_attacker",
           "POP3D_SOURCE"]
