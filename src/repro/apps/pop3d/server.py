"""POP3 daemon harness."""

from __future__ import annotations

from ..common import Daemon
from .source import MAILDROP_SOURCE, POP3D_SOURCE


class Pop3Daemon(Daemon):
    """qpopper-like POP3 daemon with USER/PASS and APOP entry points."""

    SOURCE = MAILDROP_SOURCE + POP3D_SOURCE
    AUTH_FUNCTIONS = ("pop3_user", "pop3_pass", "pop3_apop")
