"""Pieces shared by both daemons: the generated passwd table and the
connection-harness base class."""

from __future__ import annotations

from ..cc import compile_program
from ..emu import Process
from ..kernel import (FileSystem, Kernel, PasswdDatabase, default_database,
                      default_ftp_files)

# Instruction budget per connection: a golden run needs a few tens of
# thousands; anything that exhausts this is a hung/looping server, the
# emulator's analogue of a client-side timeout.
CONNECTION_INSTRUCTION_BUDGET = 400_000


def passwd_table_source(database):
    """Generate the mini-C globals holding the account table.

    Real daemons obtain this through getpwnam(3); here the same data
    is baked into the data segment, which is equivalent for the study
    because the paper only injects faults into the *text* segment of
    the authentication functions.
    """
    names = ", ".join('"%s"' % a.name for a in database)
    hashes = ", ".join('"%s"' % a.password_hash for a in database)
    salts = ", ".join('"%s"' % a.salt for a in database)
    uids = ", ".join(str(a.uid) for a in database)
    denied = ", ".join(str(1 if a.denied else 0) for a in database)
    rhosts = ", ".join(str(1 if a.rhosts_allowed else 0) for a in database)
    empty_ok = ", ".join(str(1 if a.empty_password_ok else 0)
                         for a in database)
    return """
int pw_count = %d;
char *pw_names[] = {%s};
char *pw_hashes[] = {%s};
char *pw_salts[] = {%s};
int pw_uids[] = {%s};
int pw_denied[] = {%s};
int pw_rhosts[] = {%s};
int pw_emptyok[] = {%s};

/* getpwnam(3) replacement: index into the table, -1 if absent. */
int getpwnam_index(char *name) {
    int i;
    i = 0;
    while (i < pw_count) {
        if (strcmp(name, pw_names[i]) == 0) {
            return i;
        }
        i = i + 1;
    }
    return 0 - 1;
}
""" % (len(database), names, hashes, salts, uids, denied, rhosts,
       empty_ok)


class Daemon:
    """Base harness: compiles the daemon once, spawns per-connection
    processes against scripted clients."""

    #: subclasses set the mini-C source (sans passwd table).
    SOURCE = ""
    #: names of the functions the study injects faults into.
    AUTH_FUNCTIONS = ()
    #: ablation hook: build with every Jcc in the 6-byte form.
    FORCE_LONG_BRANCHES = False

    def __init__(self, database=None, files=None):
        self.database = database if database is not None \
            else default_database()
        self.files = dict(files) if files is not None \
            else default_ftp_files()
        self.program = compile_program(
            self.SOURCE,
            extra_sources=(passwd_table_source(self.database),),
            force_long_branches=self.FORCE_LONG_BRANCHES)

    @property
    def module(self):
        return self.program.module

    def auth_ranges(self):
        """[(start, end)] address ranges of the injection targets."""
        return [self.program.function_range(name)
                for name in self.AUTH_FUNCTIONS]

    def make_kernel(self, client):
        return Kernel.for_client(client, FileSystem(self.files))

    def spawn(self, client):
        """Fresh process (pristine text) serving *client*."""
        return Process(self.module, self.make_kernel(client))

    def run_connection(self, client,
                       budget=CONNECTION_INSTRUCTION_BUDGET):
        """Run one full connection; returns (ExitStatus, kernel)."""
        kernel = self.make_kernel(client)
        process = Process(self.module, kernel)
        status = process.run(budget)
        return status, kernel
