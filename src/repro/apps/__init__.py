"""Target applications: the FTP and SSH daemons plus their clients."""

from .common import (CONNECTION_INSTRUCTION_BUDGET, Daemon,
                     passwd_table_source)

__all__ = ["Daemon", "passwd_table_source",
           "CONNECTION_INSTRUCTION_BUDGET"]
