"""Target applications: the registered daemons plus their clients.

``repro.apps.registry`` is the discovery point: every daemon the
injection pipeline can target (ftpd, sshd, pop3d, ...) registers a
:class:`~repro.apps.registry.DaemonSpec` there.
"""

from .common import (CONNECTION_INSTRUCTION_BUDGET, Daemon,
                     passwd_table_source)
from .registry import (available_daemons, DaemonSpec, get_daemon_spec,
                       make_daemon, register_daemon)

__all__ = ["Daemon", "passwd_table_source",
           "CONNECTION_INSTRUCTION_BUDGET", "DaemonSpec",
           "available_daemons", "get_daemon_spec", "make_daemon",
           "register_daemon"]
