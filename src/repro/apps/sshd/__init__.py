"""SSH application: daemon and scripted clients."""

from .clients import CLIENT_FACTORIES, SshClient, client1, client2
from .server import SshDaemon
from .source import SSHD_SOURCE

__all__ = ["SshDaemon", "SshClient", "CLIENT_FACTORIES", "client1",
           "client2", "SSHD_SOURCE"]
