"""SSH daemon harness with the paper's three injection-target
functions."""

from __future__ import annotations

from ..common import Daemon
from .source import SSHD_SOURCE


class SshDaemon(Daemon):
    """ssh-1.2.30-like daemon; see :mod:`.source` for the C code."""

    SOURCE = SSHD_SOURCE
    AUTH_FUNCTIONS = ("do_authentication", "auth_rhosts", "auth_password")
