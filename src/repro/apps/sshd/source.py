'''Mini-C source of the SSH daemon (ssh-1.2.30-like).

Mirrors the structure of sshd's auth.c/sshd.c that the paper targets:
``do_authentication()`` with *multiple entry points* (rhosts, password,
RSA), ``auth_rhosts()`` and ``auth_password()``.  The paper blames the
multi-entry-point structure for sshd's higher break-in rate: a flip in
*any* of the per-method accept branches grants a shell.

Substitutions (see DESIGN.md): the session cipher is an XOR keystream
(control-flow-equivalent stand-in for the SSH-1 stream cipher) and the
wire format is 1 length byte + type byte + payload, reproducing the
shape of ``packet_read()`` from the paper's Example 3 including its
``sizeof(buf)`` bounds handling.  RSA authentication is present as an
entry point but always refuses (the server has no host key pair) --
matching a 1.2.30 deployment without RSA keys, where the code path
still runs.
'''

SSHD_SOURCE = r"""
/* ---- server configuration (sshd's ServerOptions) ------------------------ */

int rhosts_authentication = 1;
int password_authentication = 1;
int rsa_authentication = 1;
int permit_empty_passwd = 0;
int permit_root_login = 0;
int max_auth_attempts = 6;
int strict_modes = 1;
int log_level = 1;

/* ---- session state ------------------------------------------------------- */

int encryption_on;
int cipher_state_in;     /* client->server keystream */
int cipher_state_out;    /* server->client keystream */
int authenticated;
int auth_attempts;
int failed_methods;
int client_host_trusted = 0;    /* the scripted clients connect from an
                                 * untrusted address */
char client_host[32] = "evil.example.net";
char session_user[32];
int session_user_idx;

/* hosts.equiv stand-in */
int trusted_host_count = 2;
char *trusted_hosts[] = {"trusted.example.net", "backup.example.net"};

void sshd_log(int level, char *message) {
    if (level <= log_level) {
        write(2, message, strlen(message));
        write(2, "\n", 1);
    }
}

/* ---- packet layer (Example 3 of the paper) ----------------------------- */

char packet_buf[256];
int packet_len;

/* Independent keystreams per direction, like the SSH-1 cipher
 * contexts: receive and send never share state, so the streams stay
 * in step regardless of message interleaving. */
int cipher_next_in() {
    cipher_state_in = cipher_state_in * 1103515245 + 12345;
    return (cipher_state_in >> 16) & 255;
}

int cipher_next_out() {
    cipher_state_out = cipher_state_out * 69069 + 1;
    return (cipher_state_out >> 16) & 255;
}

/* Read one packet into packet_buf; returns the type byte or -1 on EOF.
 * Wire format: 1 plain length byte, then length bytes (type+payload),
 * encrypted after key exchange. */
int packet_read() {
    char head[4];
    int n;
    int i;
    int want;

    n = read(0, head, 1);
    if (n <= 0) {
        return 0 - 1;
    }
    want = head[0];
    if (want > sizeof(packet_buf) - 1) {
        /* oversized frame: protocol violation */
        return 0 - 2;
    }
    i = 0;
    while (i < want) {
        n = read(0, packet_buf + i, want - i);
        if (n <= 0) {
            return 0 - 1;
        }
        i = i + n;
    }
    if (encryption_on) {
        i = 0;
        while (i < want) {
            packet_buf[i] = packet_buf[i] ^ cipher_next_in();
            i = i + 1;
        }
    }
    packet_len = want;
    packet_buf[want] = 0;
    if (want == 0) {
        return 0 - 2;
    }
    return packet_buf[0];
}

char packet_out[256];

void packet_send(int type, char *payload) {
    int length;
    int i;
    length = strlen(payload) + 1;
    if (length > 255) {
        length = 255;
    }
    packet_out[0] = length;
    packet_out[1] = type;
    i = 1;
    while (i < length) {
        packet_out[i + 1] = payload[i - 1];
        i = i + 1;
    }
    if (encryption_on) {
        i = 0;
        while (i < length) {
            packet_out[i + 1] = packet_out[i + 1] ^ cipher_next_out();
            i = i + 1;
        }
    }
    write(1, packet_out, length + 1);
}

/* ---- authentication methods (paper targets) ----------------------------- */

/* Returns non-zero when the remote user may log in without a password
 * based on hosts.equiv / ~/.rhosts -- the paper's Example 2 call site. */
int auth_rhosts(int idx) {
    int i;
    int host_listed;

    if (rhosts_authentication == 0) {
        return 0;
    }
    if (idx < 0) {
        return 0;
    }
    /* root may never log in via rhosts */
    if (pw_uids[idx] == 0 && permit_root_login == 0) {
        return 0;
    }
    /* hosts.equiv lookup */
    host_listed = 0;
    i = 0;
    while (i < trusted_host_count) {
        if (strcmp(client_host, trusted_hosts[i]) == 0) {
            host_listed = 1;
        }
        i = i + 1;
    }
    if (host_listed == 0 && client_host_trusted == 0) {
        return 0;
    }
    /* ~/.rhosts must exist for the account and pass strict-modes */
    if (pw_rhosts[idx] == 0) {
        return 0;
    }
    if (strict_modes && pw_denied[idx]) {
        sshd_log(1, "rhosts refused: bad ownership or modes");
        return 0;
    }
    sshd_log(1, "rhosts authentication accepted");
    return 1;
}

/* Password authentication: crypt+strcmp, plus the empty-password
 * policy ssh-1.2.30 implements. */
int auth_password(int idx, char *password) {
    char *encrypted;

    if (password_authentication == 0) {
        return 0;
    }
    if (idx < 0) {
        return 0;
    }
    /* root password login may be disabled outright */
    if (pw_uids[idx] == 0 && permit_root_login == 0) {
        sshd_log(1, "root password login refused");
        return 0;
    }
    if (password[0] == 0) {
        if (permit_empty_passwd && pw_emptyok[idx]) {
            sshd_log(1, "empty password accepted by policy");
            return 1;
        }
        return 0;
    }
    if (strlen(password) > 48) {
        sshd_log(1, "over-long password rejected");
        return 0;
    }
    if (pw_denied[idx]) {
        sshd_log(1, "account locked");
        return 0;
    }
    encrypted = crypt13(password, pw_salts[idx]);
    if (strcmp(encrypted, pw_hashes[idx]) == 0) {
        return 1;
    }
    sshd_log(1, "password mismatch");
    return 0;
}

/* RSA authentication entry point: the daemon has no host key pair, so
 * every challenge is refused -- but the decision branch still runs. */
int auth_rsa(int idx, char *challenge) {
    if (rsa_authentication == 0) {
        return 0;
    }
    if (idx < 0) {
        return 0;
    }
    if (challenge[0] == 0) {
        return 0;
    }
    sshd_log(1, "no RSA host key pair configured");
    return 0;
}

/* The main authentication loop: reads auth request packets and tries
 * each mechanism -- the multiple points of entry the paper analyses. */
void do_authentication() {
    int type;

    authenticated = 0;
    auth_attempts = 0;
    failed_methods = 0;

    /* Unknown accounts continue through the full exchange so the
     * timing does not reveal which user names exist (sshd behaviour),
     * relying on every method to refuse idx < 0. */
    if (session_user_idx < 0) {
        sshd_log(1, "authentication attempt for unknown user");
    }

    /* Try rhosts first, as the client requests it implicitly by
     * connecting (ssh-1.2.30 behaviour with RhostsAuthentication). */
    if (rhosts_authentication) {
        if (auth_rhosts(session_user_idx)) {
            /* Authentication accepted. */
            authenticated = 1;
        }
    }

    while (authenticated == 0) {
        type = packet_read();
        if (type < 0) {
            sshd_log(1, "connection lost during authentication");
            exit(255);
        }
        auth_attempts = auth_attempts + 1;
        if (auth_attempts > max_auth_attempts) {
            sshd_log(0, "too many authentication failures");
            packet_send('F', "too many authentication failures");
            exit(255);
        }
        if (type == 'R') {
            if (rhosts_authentication == 0) {
                packet_send('F', "rhosts authentication disabled");
                continue;
            }
            if (auth_rhosts(session_user_idx)) {
                authenticated = 1;
                break;
            }
        } else if (type == 'P') {
            if (password_authentication == 0) {
                packet_send('F', "password authentication disabled");
                continue;
            }
            if (auth_password(session_user_idx, packet_buf + 1)) {
                authenticated = 1;
                break;
            }
        } else if (type == 'A') {
            if (rsa_authentication == 0) {
                packet_send('F', "rsa authentication disabled");
                continue;
            }
            if (auth_rsa(session_user_idx, packet_buf + 1)) {
                authenticated = 1;
                break;
            }
        } else {
            packet_send('F', "unsupported authentication method");
            continue;
        }
        failed_methods = failed_methods + 1;
        sshd_log(1, "authentication method failed");
        packet_send('F', "permission denied");
    }

    sshd_log(1, "authentication succeeded");
    packet_send('S', "authentication accepted");
}

/* ---- shell session ------------------------------------------------------ */

void do_shell() {
    int type;
    int commands;
    char out[160];

    commands = 0;
    while (1) {
        type = packet_read();
        if (type < 0) {
            return;
        }
        commands = commands + 1;
        if (commands > 32) {
            packet_send('F', "session limit");
            return;
        }
        if (type == 'E') {
            strcpy(out, "output: ");
            strcat(out, packet_buf + 1);
            packet_send('O', out);
        } else if (type == 'Q') {
            packet_send('O', "logout");
            return;
        } else {
            packet_send('F', "unknown session request");
        }
    }
}

/* ---- connection setup ---------------------------------------------------- */

int main() {
    char line[64];
    int n;
    int type;

    encryption_on = 0;
    authenticated = 0;

    /* version exchange (plaintext) */
    send_str("SSH-1.5-repro_1.2.30\n");
    n = read_line(line, 64);
    if (n <= 0) {
        return 255;
    }
    if (strncmp(line, "SSH-1.", 6) != 0) {
        send_str("Protocol mismatch.\n");
        return 255;
    }

    /* toy key exchange: send server key, receive session key */
    packet_send('K', "0x517E55ED");
    type = packet_read();
    if (type != 'S') {
        return 255;
    }
    cipher_state_in = atoi(packet_buf + 1);
    cipher_state_out = atoi(packet_buf + 1);
    encryption_on = 1;

    /* user name packet */
    type = packet_read();
    if (type != 'U') {
        return 255;
    }
    strncpy(session_user, packet_buf + 1, 32);
    session_user_idx = getpwnam_index(session_user);

    do_authentication();

    if (authenticated) {
        do_shell();
    }
    return 0;
}
"""
