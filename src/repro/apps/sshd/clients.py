"""Scripted SSH clients reproducing the paper's two access patterns.

* Client1 -- existing user, wrong password (the attacker).
* Client2 -- existing user, correct password.

The client mirrors ssh-1.2.30's method ordering: it asks for rhosts
authentication first, then falls back to password.  Break-in for sshd
means "the remote client successfully got a login shell when it
should not have", so the milestone tracked is the shell echo round
trip, not just the auth-success packet.
"""

from __future__ import annotations

from ...kernel import ScriptedClient

SESSION_KEY = 20011
_MASK32 = 0xFFFFFFFF

MAX_CONFUSION = 8


class SshClient(ScriptedClient):
    """Packet-driven SSH-1-like user agent."""

    def __init__(self, username, password, command="echo hello"):
        super().__init__()
        self.username = username
        self.password = password
        self.command = command
        self.buffer = b""
        self.version_sent = False
        self.encrypting = False
        # Independent per-direction keystreams (twins of the daemon's
        # cipher_next_in / cipher_next_out).
        self.cipher_state_out = 0   # client->server
        self.cipher_state_in = 0    # server->client
        self.auth_methods = ["rhosts", "password"]
        # Milestones.
        self.auth_success = False
        self.got_shell = False
        self.shell_output = b""
        self.failures = 0
        self.confusion = 0

    # -- cipher (twins of the daemon's per-direction keystreams) ---------

    def _keystream_out(self):
        self.cipher_state_out = (self.cipher_state_out * 1103515245
                                 + 12345) & _MASK32
        return (self.cipher_state_out >> 16) & 0xFF

    def _keystream_in(self):
        self.cipher_state_in = (self.cipher_state_in * 69069 + 1) \
            & _MASK32
        return (self.cipher_state_in >> 16) & 0xFF

    def _encrypt(self, payload):
        return bytes(b ^ self._keystream_out() for b in payload)

    def _decrypt(self, payload):
        return bytes(b ^ self._keystream_in() for b in payload)

    # -- packet layer ------------------------------------------------------

    def _send_packet(self, type_byte, payload=b""):
        if isinstance(payload, str):
            payload = payload.encode("latin-1")
        body = type_byte + payload
        if self.encrypting:
            body = self._encrypt(body)
        self.send(bytes([len(body)]) + body)

    def receive(self, data):
        self.buffer += data
        self._drain()

    def _drain(self):
        while not self.closed:
            if not self.version_sent:
                if b"\n" not in self.buffer:
                    return
                line, __, self.buffer = self.buffer.partition(b"\n")
                self._handle_version(line)
                continue
            if not self.buffer:
                return
            want = self.buffer[0]
            if len(self.buffer) < 1 + want:
                return
            body = self.buffer[1:1 + want]
            self.buffer = self.buffer[1 + want:]
            if self.encrypting:
                body = self._decrypt(body)
            if not body:
                self._give_up()
                continue
            self._handle_packet(body[0:1], body[1:])

    def describe_wait(self):
        return "ssh client (user=%s) awaiting a packet" % self.username

    def _give_up(self):
        self.confusion += 1
        if self.confusion >= MAX_CONFUSION:
            self.close()

    # -- protocol ----------------------------------------------------------

    def _handle_version(self, line):
        if not line.startswith(b"SSH-"):
            self._give_up()
            return
        self.version_sent = True
        self.send("SSH-1.5-repro_client\n")

    def _handle_packet(self, type_byte, payload):
        if type_byte == b"K":
            self._send_packet(b"S", str(SESSION_KEY))
            self.encrypting = True
            self.cipher_state_out = SESSION_KEY
            self.cipher_state_in = SESSION_KEY
            self._send_packet(b"U", self.username)
            self._try_next_method()
        elif type_byte == b"F":
            self.failures += 1
            self._try_next_method()
        elif type_byte == b"S":
            self.auth_success = True
            self._send_packet(b"E", self.command)
        elif type_byte == b"O":
            if payload.startswith(b"output:"):
                self.got_shell = True
                self.shell_output += payload
                self._send_packet(b"Q")
            else:
                self.close()
        else:
            self._give_up()

    def _try_next_method(self):
        if not self.auth_methods:
            self.close()
            return
        method = self.auth_methods.pop(0)
        if method == "rhosts":
            self._send_packet(b"R")
        else:
            self._send_packet(b"P", self.password)

    # -- outcome -------------------------------------------------------------

    def broke_in(self):
        """True when the client obtained a working shell."""
        return self.auth_success and self.got_shell


def client1():
    """Existing user, wrong password (attacker)."""
    return SshClient("alice", "open-sesame-wrong")


def client2():
    """Existing user, correct password."""
    return SshClient("alice", "correcthorse")


CLIENT_FACTORIES = {
    "Client1": client1,
    "Client2": client2,
}
