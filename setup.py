"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only exists
so that ``pip install -e .`` can fall back to the legacy editable-install
path when PEP 660 builds are unavailable (offline machines without the
``wheel`` backend).
"""

from setuptools import setup

setup()
