"""Channel transcripts, coalescing and hang detection."""

from __future__ import annotations

import pytest

from repro.kernel import Channel, ScriptedClient, ServerHang


class EchoOnce(ScriptedClient):
    def __init__(self):
        super().__init__()
        self.seen = b""

    def receive(self, data):
        self.seen += data
        if b"?" in data and b"!" not in self.seen:
            self.send(b"!")
            self.seen += b"!"


class TestTranscript:
    def test_directions_recorded(self):
        channel = Channel(EchoOnce())
        channel.server_write(b"hello?")
        assert channel.server_read(10) == b"!"
        transcript = channel.normalized_transcript()
        assert transcript == (("S", b"hello?"), ("C", b"!"))

    def test_consecutive_writes_coalesce(self):
        channel = Channel(EchoOnce())
        channel.server_write(b"he")
        channel.server_write(b"llo")
        assert channel.normalized_transcript() == (("S", b"hello"),)

    def test_empty_write_ignored(self):
        channel = Channel(EchoOnce())
        assert channel.server_write(b"") == 0
        assert channel.normalized_transcript() == ()


class TestReadSemantics:
    def test_partial_read(self):
        client = EchoOnce()
        channel = Channel(client)
        channel.server_write(b"?")
        assert channel.server_read(0) == b""  # zero-byte read? we take 0
        first = channel.server_read(1)
        assert first == b"!"[:1]

    def test_eof_after_client_close(self):
        client = EchoOnce()
        channel = Channel(client)
        client.close()
        assert channel.server_read(10) == b""

    def test_hang_when_client_waiting(self):
        client = EchoOnce()
        channel = Channel(client)
        with pytest.raises(ServerHang):
            channel.server_read(10)   # client never got its "?"

    def test_input_needed_hook(self):
        class Pusher(ScriptedClient):
            def receive(self, data):
                pass

            def input_needed(self):
                self.send(b"late")

        channel = Channel(Pusher())
        assert channel.server_read(10) == b"late"
