"""In-memory filesystem behaviour."""

from __future__ import annotations

from repro.kernel import default_ftp_files, FileSystem, OpenFile


class TestFileSystem:
    def test_add_and_read(self):
        fs = FileSystem()
        fs.add_file("/a", "hello")
        assert fs.exists("/a")
        assert fs.read("/a") == b"hello"

    def test_bytes_content(self):
        fs = FileSystem({"/b": b"\x00\x01"})
        assert fs.read("/b") == b"\x00\x01"

    def test_missing(self):
        fs = FileSystem()
        assert not fs.exists("/nope")

    def test_default_tree(self):
        files = default_ftp_files()
        assert "/pub/readme.txt" in files
        assert "/pub/data.bin" in files


class TestOpenFile:
    def test_sequential_reads(self):
        handle = OpenFile("/x", b"abcdef")
        assert handle.read(2) == b"ab"
        assert handle.read(2) == b"cd"
        assert handle.read(10) == b"ef"
        assert handle.read(10) == b""
