"""Syscall layer: Linux error semantics under corruption."""

from __future__ import annotations

import pytest

from repro.emu import Process
from repro.kernel import (FileSystem, Kernel, ScriptedClient,
                          default_ftp_files)
from repro.x86 import assemble


class Collector(ScriptedClient):
    def __init__(self):
        super().__init__()
        self.data = b""

    def receive(self, data):
        self.data += data


def run_asm(body, client=None, files=None):
    source = ".text\n.global _start\n_start:\n" + body + """
    movl $1, %eax
    movl $0, %ebx
    int $0x80
"""
    module = assemble(source)
    kernel = Kernel.for_client(client or Collector())
    if files:
        kernel.filesystem = FileSystem(files)
    process = Process(module, kernel)
    status = process.run()
    return status, kernel, process


class TestWrite:
    def test_write_to_socket(self):
        client = Collector()
        status, kernel, __ = run_asm("""
    movl $4, %eax
    movl $1, %ebx
    movl $0x0804C000, %ecx
    movl $3, %edx
    int $0x80
""", client)
        assert status.exit_code == 0
        assert len(client.data) == 3

    def test_write_bad_pointer_returns_efault(self):
        status, __, process = run_asm("""
    movl $4, %eax
    movl $1, %ebx
    movl $0x10, %ecx
    movl $4, %edx
    int $0x80
    movl %eax, %ebx
    movl $1, %eax
    int $0x80
""")
        assert status.kind == "exit"
        assert status.exit_code == (-14) & 0xFF   # EFAULT, not a crash

    def test_write_bad_fd_returns_ebadf(self):
        status, __, ___ = run_asm("""
    movl $4, %eax
    movl $9, %ebx
    movl $0x0804C000, %ecx
    movl $1, %edx
    int $0x80
    movl %eax, %ebx
    movl $1, %eax
    int $0x80
""")
        assert status.exit_code == (-9) & 0xFF

    def test_stderr_goes_to_log(self):
        __, kernel, ___ = run_asm("""
    movl $4, %eax
    movl $2, %ebx
    movl $msg, %ecx
    movl $5, %edx
    int $0x80
""" .replace("$msg", "$0x0804C000"))
        assert len(kernel.stderr_log) == 5


class TestOpenReadClose:
    def test_open_missing_returns_enoent(self):
        module = assemble("""
.text
.global _start
_start:
    movl $5, %eax
    movl $path, %ebx
    int $0x80
    movl %eax, %ebx
    movl $1, %eax
    int $0x80
.data
path: .asciz "/no/such/file"
""")
        kernel = Kernel.for_client(Collector())
        status = Process(module, kernel).run()
        assert status.exit_code == (-2) & 0xFF

    def test_full_file_roundtrip(self):
        module = assemble("""
.text
.global _start
_start:
    movl $5, %eax
    movl $path, %ebx
    int $0x80
    movl %eax, %edi
    movl $3, %eax
    movl %edi, %ebx
    movl $buf, %ecx
    movl $64, %edx
    int $0x80
    movl %eax, %esi
    movl $4, %eax
    movl $1, %ebx
    movl $buf, %ecx
    movl %esi, %edx
    int $0x80
    movl $6, %eax
    movl %edi, %ebx
    int $0x80
    movl $1, %eax
    movl $0, %ebx
    int $0x80
.data
path: .asciz "/etc/motd"
buf: .space 64
""")
        client = Collector()
        kernel = Kernel.for_client(client)
        kernel.filesystem = FileSystem(default_ftp_files())
        status = Process(module, kernel).run()
        assert status.exit_code == 0
        assert client.data == default_ftp_files()["/etc/motd"]


class TestMisc:
    def test_unknown_syscall_returns_enosys(self):
        status, __, ___ = run_asm("""
    movl $9999, %eax
    int $0x80
    movl %eax, %ebx
    movl $1, %eax
    int $0x80
""")
        assert status.exit_code == (-38) & 0xFF

    def test_time_and_getpid_deterministic(self):
        first, __, ___ = run_asm("""
    movl $13, %eax
    int $0x80
    movl %eax, %ebx
    movl $20, %eax
    int $0x80
    addl %eax, %ebx
    movl $1, %eax
    int $0x80
""")
        second, __, ___ = run_asm("""
    movl $13, %eax
    int $0x80
    movl %eax, %ebx
    movl $20, %eax
    int $0x80
    addl %eax, %ebx
    movl $1, %eax
    int $0x80
""")
        assert first.exit_code == second.exit_code

    def test_read_caps_oversized_count(self):
        # corrupted length register: read(0, buf, 0xFFFFFFFF) must not
        # blow up; returns what the client gave (or EOF).
        class Once(ScriptedClient):
            def __init__(self):
                super().__init__()
                self.sent = False

            def receive(self, data):
                pass

            def input_needed(self):
                if not self.sent:
                    self.sent = True
                    self.send(b"xyz")
                else:
                    self.close()

        status, __, ___ = run_asm("""
    movl $3, %eax
    movl $0, %ebx
    movl $0x0804C000, %ecx
    movl $0xFFFFFFFF, %edx
    int $0x80
    movl %eax, %ebx
    movl $1, %eax
    int $0x80
""", client=Once())
        assert status.exit_code == 3
