"""crypt13 and the account database."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.kernel import (Account, crypt13, CRYPT_ALPHABET,
                          default_database, PasswdDatabase)

printable = st.text(st.characters(min_codepoint=33, max_codepoint=126),
                    min_size=0, max_size=24)


class TestCrypt13:
    def test_deterministic(self):
        assert crypt13("secret", "ab") == crypt13("secret", "ab")

    def test_length_is_13(self):
        assert len(crypt13("anything", "xy")) == 13

    def test_salt_prefix_preserved(self):
        assert crypt13("pw", "zq").startswith("zq")

    def test_different_passwords_differ(self):
        assert crypt13("alpha", "ab") != crypt13("beta", "ab")

    def test_different_salts_differ(self):
        assert crypt13("same", "aa") != crypt13("same", "bb")

    def test_bytes_and_str_agree(self):
        assert crypt13(b"pw", b"ab") == crypt13("pw", "ab")

    def test_short_salt_padded(self):
        assert crypt13("pw", "a") == crypt13("pw", "a.")

    @given(password=printable)
    def test_output_alphabet(self, password):
        digest = crypt13(password, "ab")
        assert len(digest) == 13
        for symbol in digest[2:]:
            assert symbol in CRYPT_ALPHABET

    @given(first=printable, second=printable)
    def test_collision_resistance_smoke(self, first, second):
        if first != second:
            # not cryptographically strong, but distinct short inputs
            # should essentially never collide
            assert crypt13(first, "ab") != crypt13(second, "ab") \
                or first == second


class TestDatabase:
    def test_default_population(self):
        database = default_database()
        assert len(database) == 4
        assert database.lookup("alice") is not None
        assert database.lookup("nosuch") is None

    def test_password_hash_matches_crypt(self):
        account = Account("u", "pw", salt="qq")
        assert account.password_hash == crypt13("pw", "qq")

    def test_policy_bits(self):
        database = default_database()
        assert database.lookup("bob").denied
        assert database.lookup("trusted").rhosts_allowed
        assert not database.lookup("alice").denied

    def test_add_and_iterate(self):
        database = PasswdDatabase()
        database.add(Account("x", "y"))
        names = [account.name for account in database]
        assert names == ["x"]
