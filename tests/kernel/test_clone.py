"""The kernel clone() protocol: independent copies, no aliasing.

Snapshot restore hands every experiment a ``Kernel.clone()`` instead
of a ``copy.deepcopy``; these tests pin down the contract that makes
that safe -- no mutable object is shared between a kernel and its
clone, while immutable payloads (file bytes) may be.
"""

from __future__ import annotations

from repro.kernel import (Account, Channel, FileSystem, Kernel,
                          PasswdDatabase, ScriptedClient,
                          default_database, default_ftp_files)


class EchoClient(ScriptedClient):
    def __init__(self):
        super().__init__()
        self.seen = []
        self.pending = [b"one", b"two"]

    def receive(self, data):
        self.seen.append(data)

    def input_needed(self):
        if self.pending:
            self.send(self.pending.pop(0))
        else:
            self.close()


def make_kernel():
    kernel = Kernel.for_client(EchoClient(),
                               FileSystem(default_ftp_files()))
    kernel.channel.client_send(b"USER alice\r\n")
    kernel.channel.server_write(b"220 ready\r\n")
    kernel.stderr_log += b"boot\n"
    kernel.write_events.append((100, 11))
    fd = kernel.next_fd
    kernel.next_fd += 1
    from repro.kernel import OpenFile
    kernel.open_files[fd] = OpenFile("/pub/readme.txt",
                                     kernel.filesystem.read(
                                         "/pub/readme.txt"))
    kernel.open_files[fd].read(4)
    return kernel


class TestKernelClone:
    def test_equal_state(self):
        kernel = make_kernel()
        twin = kernel.clone()
        assert twin.next_fd == kernel.next_fd
        assert twin.syscall_count == kernel.syscall_count
        assert bytes(twin.stderr_log) == bytes(kernel.stderr_log)
        assert twin.write_events == kernel.write_events
        assert twin.channel.transcript == kernel.channel.transcript
        assert bytes(twin.channel.to_server) \
            == bytes(kernel.channel.to_server)
        assert set(twin.open_files) == set(kernel.open_files)
        for fd, handle in kernel.open_files.items():
            assert twin.open_files[fd].path == handle.path
            assert twin.open_files[fd].position == handle.position

    def test_no_mutable_aliasing(self):
        kernel = make_kernel()
        twin = kernel.clone()
        assert twin.stderr_log is not kernel.stderr_log
        assert twin.write_events is not kernel.write_events
        assert twin.open_files is not kernel.open_files
        assert twin.channel is not kernel.channel
        assert twin.channel.transcript is not kernel.channel.transcript
        assert twin.channel.to_server is not kernel.channel.to_server
        assert twin.channel.client is not kernel.channel.client
        assert twin.filesystem is not kernel.filesystem
        assert twin.filesystem.files is not kernel.filesystem.files
        for fd in kernel.open_files:
            assert twin.open_files[fd] is not kernel.open_files[fd]

    def test_mutations_do_not_leak(self):
        kernel = make_kernel()
        twin = kernel.clone()
        twin.stderr_log += b"twin only\n"
        twin.write_events.append((999, 1))
        twin.channel.server_write(b"230 twin\r\n")
        twin.channel.client.seen.append(b"twin")
        next(iter(twin.open_files.values())).read(4)
        twin.filesystem.add_file("/twin", b"x")
        assert b"twin only" not in bytes(kernel.stderr_log)
        assert (999, 1) not in kernel.write_events
        assert all(b"230 twin" not in chunk
                   for __, chunk in kernel.channel.transcript)
        assert b"twin" not in kernel.channel.client.seen
        positions = [h.position for h in kernel.open_files.values()]
        assert positions == [4]
        assert not kernel.filesystem.exists("/twin")

    def test_clone_client_is_detached_then_attached(self):
        kernel = make_kernel()
        twin = kernel.clone()
        # the twin's client must be wired to the twin's channel, so
        # its sends land in the twin's buffer, not the original's.
        assert twin.channel.client.channel is twin.channel
        before = bytes(kernel.channel.to_server)
        twin.channel.client.send(b"PASS x\r\n")
        assert bytes(kernel.channel.to_server) == before
        assert b"PASS x" in bytes(twin.channel.to_server)


class TestClientClone:
    def test_generic_copy_of_flat_state(self):
        client = EchoClient()
        client.seen.append(b"hello")
        twin = client.clone()
        assert twin.seen == client.seen
        assert twin.seen is not client.seen
        assert twin.pending is not client.pending
        assert twin.channel is None
        twin.pending.pop()
        assert len(client.pending) == 2

    def test_registered_daemon_clients_clone_flat(self):
        """Every registered daemon's scripted clients must be safely
        cloneable by the generic protocol: no nested mutable
        containers, which the flat copy would alias."""
        from repro.apps.registry import (available_daemons,
                                         get_daemon_spec)
        flat = (int, bool, bytes, str, float, type(None), tuple)
        for name in available_daemons():
            spec = get_daemon_spec(name)
            for factory in spec.client_factories.values():
                client = factory()
                twin = client.clone()
                for attr, value in client.__dict__.items():
                    if isinstance(value, (list, set)):
                        assert getattr(twin, attr) is not value
                        assert all(isinstance(item, flat)
                                   for item in value), (name, attr)
                    elif isinstance(value, dict):
                        assert getattr(twin, attr) is not value
                        assert all(isinstance(item, flat)
                                   for item in value.values()), (name,
                                                                 attr)
                    elif attr != "channel":
                        assert isinstance(value, (flat, bytearray)), \
                            (name, attr)


class TestPasswdClone:
    def test_database_clone_independent(self):
        db = default_database()
        twin = db.clone()
        assert [a.name for a in twin] == [a.name for a in db]
        twin.add(Account("mallory", "pw", uid=2000))
        assert db.lookup("mallory") is None
        twin.lookup("alice").denied = True
        assert db.lookup("alice").denied is False

    def test_account_clone_preserves_hash(self):
        account = Account("alice", "correcthorse", uid=1001, salt="al")
        assert account.clone().password_hash == account.password_hash

    def test_empty_database(self):
        assert len(PasswdDatabase().clone()) == 0


class TestChannelClone:
    def test_unattached_kernel_clone(self):
        kernel = Kernel()
        twin = kernel.clone()
        assert twin.channel is None

    def test_channel_clone_records_independently(self):
        channel = Channel(EchoClient())
        channel.client_send(b"a")
        twin = channel.clone()
        twin.client_send(b"b")
        assert channel.transcript == [("C", b"a")]
        assert twin.transcript == [("C", b"ab")]
