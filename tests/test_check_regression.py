"""Unit tests for the CI gate scripts in ``benchmarks/``.

The regression gate must demonstrably fail on a synthetic 2x slowdown
(that is the whole point of committing baselines), and the nightly
Table 1 checker must flag any count drift.
"""

from __future__ import annotations

import importlib.util
import pathlib

BENCHMARKS = pathlib.Path(__file__).parent.parent / "benchmarks"


def _load(name):
    spec = importlib.util.spec_from_file_location(
        name, BENCHMARKS / ("%s.py" % name))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_regression = _load("check_regression")
check_table1 = _load("check_table1")


class TestCompareMetric:
    def test_equal_passes(self):
        assert check_regression.compare_metric(
            "emulator_speed", "instructions_per_sec",
            1_000_000.0, 1_000_000.0) is None

    def test_synthetic_2x_slowdown_fails(self):
        failure = check_regression.compare_metric(
            "emulator_speed", "instructions_per_sec",
            1_000_000.0, 500_000.0)
        assert failure is not None
        assert "regressed 50.0%" in failure

    def test_improvement_passes(self):
        assert check_regression.compare_metric(
            "emulator_speed", "instructions_per_sec",
            1_000_000.0, 2_000_000.0) is None

    def test_within_threshold_passes(self):
        assert check_regression.compare_metric(
            "emulator_speed", "instructions_per_sec",
            1_000_000.0, 800_000.0) is None

    def test_just_past_threshold_fails(self):
        assert check_regression.compare_metric(
            "emulator_speed", "instructions_per_sec",
            1_000_000.0, 740_000.0) is not None

    def test_missing_values_fail(self):
        assert check_regression.compare_metric(
            "x", "k", None, 1.0) is not None
        assert check_regression.compare_metric(
            "x", "k", 1.0, None) is not None


class TestCompareAll:
    def _payloads(self, rate):
        return {
            "emulator_speed": {"instructions_per_sec": rate},
            "sampler_overhead": {"sampled_instructions_per_sec": 900_000.0},
            "table1_ftp_timing": {"experiments_per_sec": 300.0},
            "snapshot_fork": {"experiments_per_sec": 300.0,
                              "restore_speedup": 6.0},
            "pruning": {"points_pruned_frac": 0.75,
                        "campaign_speedup": 4.0},
            "service_warm": {"service_warm_speedup": 1.4},
        }

    def test_identical_payloads_pass(self):
        base = self._payloads(1_000_000.0)
        assert check_regression.compare_all(base, base) == []

    def test_synthetic_2x_slowdown_fails_gate(self):
        base = self._payloads(1_000_000.0)
        slow = self._payloads(500_000.0)
        failures = check_regression.compare_all(base, slow)
        assert len(failures) == 1
        assert "instructions_per_sec" in failures[0]

    def test_missing_baseline_fails_with_instructions(self):
        failures = check_regression.compare_all(
            {}, self._payloads(1.0))
        assert failures
        assert any("baselines" in failure for failure in failures)

    def test_missing_current_result_fails(self):
        failures = check_regression.compare_all(
            self._payloads(1.0), {})
        assert failures
        assert any("did the bench fail" in failure
                   for failure in failures)

    def test_committed_baselines_match_metric_spec(self):
        """Every tracked metric has a committed baseline file with the
        expected key, so the CI gate can actually run."""
        import json
        for name, keys in check_regression.METRICS.items():
            path = check_regression.BASELINE_DIR / ("%s.json" % name)
            assert path.exists(), "missing baseline %s" % path
            payload = json.loads(path.read_text())
            for key in keys:
                assert isinstance(payload.get(key), (int, float))


class TestUntrackedMetrics:
    """A results file carrying gate-worthy numbers must not slide
    through the gate silently just because nobody added it to
    METRICS."""

    def test_gate_keys_found_in_payload(self):
        keys = check_regression.gate_keys_in(
            {"experiments_per_sec": 10.0, "restore_speedup": 5.0,
             "note": "text", "pages": 3})
        assert keys == ["experiments_per_sec", "restore_speedup"]

    def test_non_numeric_and_non_dict_payloads_have_no_gate_keys(self):
        assert check_regression.gate_keys_in(
            {"items_per_sec": "fast"}) == []
        assert check_regression.gate_keys_in([1, 2, 3]) == []

    def test_untracked_result_with_gate_key_fails(self):
        failures = check_regression.untracked_failures(
            {"new_bench": {"widgets_per_sec": 9.0}})
        assert len(failures) == 1
        assert "new_bench" in failures[0]
        assert "METRICS" in failures[0]

    def test_pruning_metrics_are_gate_worthy(self):
        keys = check_regression.gate_keys_in(
            {"points_pruned_frac": 0.75, "campaign_speedup": 4.0,
             "wall_speedup": 1.3, "kinds": {}})
        assert keys == ["campaign_speedup", "points_pruned_frac"]

    def test_error_message_lists_gate_keys_sorted(self):
        """The quoted gate-key set comes from a frozenset; the message
        must sort it (and the payload keys) so identical failures from
        different matrix cells diff clean."""
        failures = check_regression.untracked_failures(
            {"new_bench": {"widgets_per_sec": 9.0,
                           "campaign_speedup": 2.0}})
        assert len(failures) == 1
        assert "campaign_speedup, widgets_per_sec" in failures[0]
        expected = ", ".join(sorted(check_regression.GATE_KEYS))
        assert expected in failures[0]

    def test_untracked_result_without_gate_keys_passes(self):
        assert check_regression.untracked_failures(
            {"table5_notes": {"rows": 12, "label": "ok"}}) == []

    def test_exempt_stems_pass(self):
        currents = {name: {"experiments_per_sec": 1.0}
                    for name in check_regression.UNTRACKED_OK}
        assert check_regression.untracked_failures(currents) == []

    def test_compare_all_catches_untracked_results(self):
        base = {"emulator_speed": {"instructions_per_sec": 1.0},
                "table1_ftp_timing": {"experiments_per_sec": 1.0},
                "snapshot_fork": {"experiments_per_sec": 1.0,
                                  "restore_speedup": 6.0}}
        current = dict(base)
        current["new_bench"] = {"widgets_per_sec": 9.0}
        failures = check_regression.compare_all(base, current)
        assert any("new_bench" in failure for failure in failures)


class TestTable1Diff:
    REF = {"ftpd": {"Client1": {"counts": {"NA": 976, "SD": 281},
                                "activated": 584, "runs": 1560}}}

    def test_identical_counts_pass(self):
        assert check_table1.diff_counts(self.REF, self.REF) == []

    def test_single_count_drift_fails(self):
        drifted = {"ftpd": {"Client1": {"counts": {"NA": 976,
                                                   "SD": 282},
                                        "activated": 584,
                                        "runs": 1560}}}
        problems = check_table1.diff_counts(self.REF, drifted)
        assert len(problems) == 1
        assert "Client1" in problems[0]

    def test_missing_app_fails(self):
        problems = check_table1.diff_counts(self.REF, {})
        assert problems
