"""Shared fixtures: daemons are compiled once per test session."""

from __future__ import annotations

import pytest

from repro.apps.ftpd import FtpDaemon
from repro.apps.pop3d import Pop3Daemon
from repro.apps.sshd import SshDaemon


@pytest.fixture(scope="session")
def ftp_daemon():
    return FtpDaemon()


@pytest.fixture(scope="session")
def ssh_daemon():
    return SshDaemon()


@pytest.fixture(scope="session")
def pop3_daemon():
    return Pop3Daemon()
