"""Chaos harness unit tests: deterministic policies, fire-once agent
semantics, and journal corruption helpers."""

from __future__ import annotations

import errno
import json

import pytest

from repro.injection import (ChaosAction, ChaosPolicy,
                             corrupt_journal_tail)
from repro.injection.chaos import (ACTION_KINDS, ChaosAgent, FAIL_WRITE,
                                   KILL, STALL)


class TestChaosAction:
    def test_kinds_are_validated(self):
        with pytest.raises(ValueError):
            ChaosAction(kind="set-on-fire", shard=0)

    def test_known_kinds_construct(self):
        for kind in ACTION_KINDS:
            assert ChaosAction(kind=kind, shard=0).kind == kind


class TestChaosPolicy:
    def test_seeded_is_deterministic(self):
        one = ChaosPolicy.seeded(7, shards=3)
        two = ChaosPolicy.seeded(7, shards=3)
        assert one.actions == two.actions
        assert ChaosPolicy.seeded(8, shards=3).actions != one.actions

    def test_seeded_targets_valid_shards(self):
        policy = ChaosPolicy.seeded(3, shards=4)
        assert policy.actions
        assert all(0 <= action.shard < 4 for action in policy.actions)

    def test_agent_filters_by_shard_and_attempt(self):
        policy = ChaosPolicy(actions=(
            ChaosAction(kind=KILL, shard=1, attempt=0),
            ChaosAction(kind=STALL, shard=1, attempt=1),
        ))
        assert policy.agent(0, 0) is None
        assert policy.agent(0, 1) is None
        agent = policy.agent(1, 0)
        assert [action.kind
                for action in agent._point_actions] == [KILL]
        agent = policy.agent(1, 1)
        assert [action.kind
                for action in agent._point_actions] == [STALL]

    def test_describe_mentions_every_action(self):
        policy = ChaosPolicy(actions=(
            ChaosAction(kind=KILL, shard=0, after=3),
            ChaosAction(kind=FAIL_WRITE, shard=2, after=1),
        ))
        description = policy.describe()
        assert KILL in description and FAIL_WRITE in description


class TestChaosAgent:
    def test_kill_fires_once_at_threshold(self, monkeypatch):
        exits = []
        monkeypatch.setattr("os._exit", exits.append)
        agent = ChaosAgent((ChaosAction(kind=KILL, shard=0, after=3,
                                        exit_code=42),))
        agent.on_point(1)
        agent.on_point(2)
        assert exits == []
        agent.on_point(3)
        assert exits == [42]
        agent.on_point(4)      # fire-once: never re-triggers
        assert exits == [42]

    def test_stall_sleeps_for_configured_seconds(self, monkeypatch):
        naps = []
        monkeypatch.setattr("time.sleep", naps.append)
        agent = ChaosAgent((ChaosAction(kind=STALL, shard=0, after=1,
                                        seconds=60.0),))
        agent.on_point(1)
        agent.on_point(2)
        assert naps == [60.0]

    def test_fail_write_raises_enospc_once(self):
        agent = ChaosAgent((ChaosAction(kind=FAIL_WRITE, shard=0,
                                        after=2),))
        agent.on_journal_write(0)
        agent.on_journal_write(1)
        with pytest.raises(OSError) as excinfo:
            agent.on_journal_write(2)
        assert excinfo.value.errno == errno.ENOSPC
        agent.on_journal_write(3)  # fire-once


class TestCorruptJournalTail:
    def journal(self, tmp_path, records=6, name="camp.jsonl"):
        path = tmp_path / name
        lines = [json.dumps({"type": "meta", "schema": 1})]
        lines += [json.dumps({"type": "result", "key": "k%d" % index})
                  for index in range(records)]
        path.write_text("".join(line + "\n" for line in lines))
        return path

    def test_garbage_line_spares_the_meta_header(self, tmp_path):
        path = self.journal(tmp_path)
        victim = corrupt_journal_tail(path, mode="garbage-line", seed=5)
        lines = path.read_text().splitlines()
        assert victim > 1                 # never the meta line
        assert json.loads(lines[0])["type"] == "meta"
        with pytest.raises(json.JSONDecodeError):
            json.loads(lines[victim - 1])

    def test_garbage_line_is_seed_deterministic(self, tmp_path):
        one = corrupt_journal_tail(self.journal(tmp_path, records=20,
                                                name="a.jsonl"),
                                   mode="garbage-line", seed=9)
        two = corrupt_journal_tail(self.journal(tmp_path, records=20,
                                                name="b.jsonl"),
                                   mode="garbage-line", seed=9)
        assert one == two

    def test_truncate_tail_tears_the_final_line(self, tmp_path):
        path = self.journal(tmp_path)
        before = path.read_text().splitlines()
        corrupt_journal_tail(path, mode="truncate-tail")
        after = path.read_text()
        assert not after.endswith("\n")
        assert len(after) < len("\n".join(before)) + 1
        torn = after.splitlines()[-1]
        with pytest.raises(json.JSONDecodeError):
            json.loads(torn)

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            corrupt_journal_tail(self.journal(tmp_path), mode="eat")
