"""CampaignResult accessors and run_both_encodings."""

from __future__ import annotations

import pytest

from repro.apps.ftpd import client1
from repro.injection import (run_both_encodings, run_campaign,
                             SYSTEM_DETECTION)


@pytest.fixture(scope="module")
def campaign(ftp_daemon):
    return run_campaign(ftp_daemon, "Client1", client1, max_points=320)


class TestAccessors:
    def test_results_with_outcome(self, campaign):
        crashes = campaign.results_with_outcome(SYSTEM_DETECTION)
        assert all(r.outcome == "SD" for r in crashes)
        assert len(crashes) == campaign.counts()["SD"]

    def test_crash_latencies_align_with_sd(self, campaign):
        latencies = campaign.crash_latencies()
        assert len(latencies) == campaign.counts()["SD"]
        assert all(value >= 0 for value in latencies)

    def test_by_location_custom_outcomes(self, campaign):
        only_sd = campaign.by_location(outcomes=("SD",))
        assert sum(only_sd.values()) == campaign.counts()["SD"]

    def test_percentage_of_activated_handles_zero(self, ftp_daemon):
        empty = run_campaign(ftp_daemon, "Client1", client1,
                             max_points=0)
        assert empty.percentage_of_activated("SD") == 0.0
        assert empty.total_runs == 0

    def test_metadata_fields(self, campaign):
        assert campaign.daemon_name == "FtpDaemon"
        assert campaign.client_name == "Client1"
        assert campaign.encoding == "old"
        assert campaign.golden is not None


class TestRunBothEncodings:
    def test_pair_shares_client_and_targets(self, ftp_daemon):
        old, new = run_both_encodings(ftp_daemon, "Client1", client1,
                                      max_points=160)
        assert old.encoding == "old" and new.encoding == "new"
        assert old.total_runs == new.total_runs
        old_points = [r.point for r in old.results]
        new_points = [r.point for r in new.results]
        assert old_points == new_points
