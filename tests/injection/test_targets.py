"""Target enumeration and error-location classification."""

from __future__ import annotations

import pytest

from repro.injection import (branch_instructions, classify_location,
                             describe_targets, enumerate_points,
                             InjectionPoint, LOCATION_2BC, LOCATION_2BO,
                             LOCATION_6BC1, LOCATION_6BC2, LOCATION_6BO,
                             LOCATION_MISC, TARGET_KINDS_WITH_CALLS)
from repro.x86 import assemble, KIND_COND_BRANCH, KIND_JUMP


@pytest.fixture(scope="module")
def mixed_module():
    filler = "    nop\n" * 200
    return assemble("""
.text
func:
    je near
    jne far
    jmp near
    call helper
near:
    ret
""" + filler + """
far:
    ret
helper:
    ret
""")


class TestEnumeration:
    def test_branch_kinds_default(self, mixed_module):
        start, end = mixed_module.function_range("func")
        found = branch_instructions(mixed_module, [(start, end)])
        kinds = sorted(i.kind for i in found)
        assert kinds == [KIND_COND_BRANCH, KIND_COND_BRANCH, KIND_JUMP]

    def test_calls_included_on_request(self, mixed_module):
        start, end = mixed_module.function_range("func")
        found = branch_instructions(mixed_module, [(start, end)],
                                    TARGET_KINDS_WITH_CALLS)
        assert len(found) == 4

    def test_eight_points_per_byte(self, mixed_module):
        start, end = mixed_module.function_range("func")
        instructions = branch_instructions(mixed_module, [(start, end)])
        points = enumerate_points(mixed_module, [(start, end)])
        assert len(points) == 8 * sum(i.length for i in instructions)

    def test_point_fields(self, mixed_module):
        start, end = mixed_module.function_range("func")
        point = enumerate_points(mixed_module, [(start, end)])[0]
        assert point.instruction_address == start
        assert point.byte_offset == 0
        assert point.bit == 0
        assert point.flip_address == start

    def test_describe(self, mixed_module):
        start, end = mixed_module.function_range("func")
        info = describe_targets(mixed_module, [(start, end)])
        assert info["bits"] == info["bytes"] * 8
        assert 0 < info["branch_fraction"] <= 1

    def test_ranges_are_respected(self, mixed_module):
        start, end = mixed_module.function_range("helper")
        assert branch_instructions(mixed_module, [(start, end)]) == []


class TestLocationClassification:
    def make_point(self, kind, length, opcode, byte_offset):
        return InjectionPoint(instruction_address=0x1000,
                              byte_offset=byte_offset, bit=0,
                              instruction_length=length,
                              mnemonic="x", opcode=opcode, kind=kind)

    def test_2byte_conditional(self):
        point = self.make_point(KIND_COND_BRANCH, 2, 0x74, 0)
        assert classify_location(point) == LOCATION_2BC
        point = self.make_point(KIND_COND_BRANCH, 2, 0x74, 1)
        assert classify_location(point) == LOCATION_2BO

    def test_6byte_conditional(self):
        for byte_offset, expected in ((0, LOCATION_6BC1),
                                      (1, LOCATION_6BC2),
                                      (2, LOCATION_6BO),
                                      (5, LOCATION_6BO)):
            point = self.make_point(KIND_COND_BRANCH, 6, 0x0F84,
                                    byte_offset)
            assert classify_location(point) == expected

    def test_jump_is_misc(self):
        point = self.make_point(KIND_JUMP, 2, 0xEB, 0)
        assert classify_location(point) == LOCATION_MISC

    def test_real_daemon_has_both_forms(self, ftp_daemon):
        points = enumerate_points(ftp_daemon.module,
                                  ftp_daemon.auth_ranges())
        locations = {classify_location(point) for point in points}
        assert LOCATION_2BC in locations
        assert LOCATION_2BO in locations
        assert LOCATION_6BC2 in locations
        assert LOCATION_6BO in locations
        assert LOCATION_MISC in locations
