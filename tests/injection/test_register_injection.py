"""Data-error (register) injection -- the Example 3 family."""

from __future__ import annotations

import pytest

from repro.apps.ftpd import client1
from repro.injection import (BreakpointSession, classify_completed_run,
                             record_golden)
from repro.x86 import disassemble_range
from repro.x86.registers import EAX, ESP


@pytest.fixture(scope="module")
def golden(ftp_daemon):
    return record_golden(ftp_daemon, client1)


def covered_test_instructions(ftp_daemon, golden):
    """All covered `test %eax,%eax` decision points in pass_()."""
    start, end = ftp_daemon.program.function_range("pass_")
    found = [instruction for instruction in
             disassemble_range(ftp_daemon.module.text,
                               ftp_daemon.module.text_base, start, end)
             if instruction.mnemonic == "test"
             and instruction.address in golden.coverage]
    assert found, "no covered test instruction"
    return found


def covered_test_instruction(ftp_daemon, golden):
    return covered_test_instructions(ftp_daemon, golden)[0]


class TestRegisterInjection:
    def test_eax_flips_at_decision_points(self, ftp_daemon, golden):
        """Corrupting EAX just before the `test %eax,%eax` decision
        points of pass_() produces a mix of outcomes: some flips are
        absorbed (a nonzero value stays nonzero -> same branch, NM),
        some invert a decision (FSV/BRK)."""
        outcomes = set()
        for instruction in covered_test_instructions(ftp_daemon,
                                                     golden):
            for bit in (0, 7, 31):
                session = BreakpointSession(ftp_daemon, client1,
                                            instruction.address)
                status, kernel, client = \
                    session.run_with_register_flip(EAX, bit)
                outcome, __ = classify_completed_run(
                    golden, client,
                    kernel.channel.normalized_transcript(), status)
                outcomes.add(outcome)
        # data errors both get absorbed and change visible behaviour
        assert "NM" in outcomes
        assert outcomes & {"FSV", "BRK", "SD"}

    def test_stack_pointer_corruption_crashes(self, ftp_daemon, golden):
        instruction = covered_test_instruction(ftp_daemon, golden)
        session = BreakpointSession(ftp_daemon, client1,
                                    instruction.address)
        # flip a high ESP bit: the stack moves to unmapped space
        status, __, ___ = session.run_with_register_flip(ESP, 30)
        assert status.kind == "crash"
        assert status.signal == "SIGSEGV"

    def test_register_flip_is_transient(self, ftp_daemon, golden):
        """Unlike text flips, register corruption does not persist:
        a rerun of the same session with no flip matches golden."""
        instruction = covered_test_instruction(ftp_daemon, golden)
        session = BreakpointSession(ftp_daemon, client1,
                                    instruction.address)
        session.run_with_register_flip(EAX, 0)
        status, kernel, client = session.run_with_flip(
            instruction.address, 0)  # restore happens inside
        # now run completely clean through run_with_bytes(original)
        offset = instruction.address - ftp_daemon.module.text_base
        original = bytes(ftp_daemon.module.text[
            offset:offset + instruction.length])
        status, kernel, client = session.run_with_bytes(
            instruction.address, original)
        assert kernel.channel.normalized_transcript() \
            == golden.transcript
