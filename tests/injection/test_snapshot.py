"""MachineSnapshot semantics: dirty-page restore vs full restore,
pristine-skip, forking, and cross-model session reuse.

The acceptance gate for the snapshot-fork engine: on every registered
daemon x fault-model cell, the dirty-page restore path must produce
experiment-for-experiment identical outcomes to the ``full_restore``
escape hatch (which rewrites every region, the old behaviour).
"""

from __future__ import annotations

import pytest

from repro.apps.registry import available_daemons, get_daemon_spec
from repro.injection import (available_fault_models, BreakpointSession,
                             get_fault_model, MachineSnapshot,
                             record_golden, SessionCache)
from repro.injection.runner import CampaignRunner

#: per-cell experiment cap: enough to span several instructions (and
#: therefore several restores per session) while staying fast.
MAX_POINTS = 12

_daemons = {}


@pytest.fixture(params=available_daemons())
def daemon_cell(request, ftp_daemon, ssh_daemon, pop3_daemon):
    compiled = {"ftpd": ftp_daemon, "sshd": ssh_daemon,
                "pop3d": pop3_daemon}
    name = request.param
    spec = get_daemon_spec(name)
    daemon = compiled.get(name) or _daemons.setdefault(
        name, spec.build())
    return name, daemon, spec


def _covered_points(daemon, spec, model, cap=MAX_POINTS):
    golden = record_golden(daemon, spec.client_factory("Client1"))
    points = model.enumerate_points(daemon.module,
                                    daemon.auth_ranges())
    covered = [point for point in points
               if point.instruction_address in golden.coverage]
    return covered[:cap] if cap else covered


def _signature(campaign):
    return [(result.point.key, result.outcome, result.exit_kind,
             result.crash_latency, result.broke_in)
            for result in campaign.results]


def _run(daemon, spec, model, points, **kwargs):
    runner = CampaignRunner(daemon, "Client1",
                            spec.client_factory("Client1"),
                            fault_model=model, points=points, **kwargs)
    return runner.run()


class TestDirtyVsFullCrossCheck:
    @pytest.mark.parametrize("model_name", available_fault_models())
    def test_cell_outcomes_identical(self, daemon_cell, model_name):
        name, daemon, spec = daemon_cell
        model = get_fault_model(model_name)
        points = _covered_points(daemon, spec, model)
        assert points, "no covered points for %s x %s" % (name,
                                                          model_name)
        dirty = _run(daemon, spec, model, points, full_restore=False)
        full = _run(daemon, spec, model, points, full_restore=True)
        assert _signature(dirty) == _signature(full)


class TestPristineSkip:
    def test_first_experiment_skips_restore(self, ftp_daemon):
        spec = get_daemon_spec("ftpd")
        model = get_fault_model(None)
        points = _covered_points(ftp_daemon, spec, model)
        session = BreakpointSession(ftp_daemon,
                                    spec.client_factory("Client1"),
                                    points[0].instruction_address)
        assert session.restore_stats["pristine_skips"] == 0
        session.run_with_flip(points[0].flip_address, 0)
        assert session.restore_stats["pristine_skips"] == 1
        assert session.restore_stats["restores"] == 0
        session.run_with_flip(points[0].flip_address, 1)
        assert session.restore_stats["restores"] == 1

    def test_outcome_tallies_unchanged_by_skip(self, ftp_daemon):
        """The pristine skip is pure bookkeeping: a campaign's outcome
        tallies must match a run that restores before every
        experiment (the full escape hatch never skips pages, and each
        per-point record -- not just the tally -- must agree)."""
        spec = get_daemon_spec("ftpd")
        model = get_fault_model(None)
        points = _covered_points(ftp_daemon, spec, model)
        skipping = _run(ftp_daemon, spec, model, points)
        full = _run(ftp_daemon, spec, model, points,
                    full_restore=True)
        assert skipping.counts() == full.counts()
        assert _signature(skipping) == _signature(full)

    def test_restores_write_only_dirty_pages(self, ftp_daemon):
        spec = get_daemon_spec("ftpd")
        model = get_fault_model(None)
        points = _covered_points(ftp_daemon, spec, model)
        session = BreakpointSession(ftp_daemon,
                                    spec.client_factory("Client1"),
                                    points[0].instruction_address)
        total_pages = sum(region.page_count() for region
                          in session.process.memory.regions)
        for bit in range(3):
            session.run_with_flip(points[0].flip_address, bit)
        restores = session.restore_stats["restores"]
        assert restores == 2    # first run rode the pristine skip
        pages = session.restore_stats["pages_written"]
        assert 0 < pages < restores * total_pages


class TestFork:
    def test_fork_runs_identically(self, ftp_daemon):
        spec = get_daemon_spec("ftpd")
        model = get_fault_model(None)
        points = _covered_points(ftp_daemon, spec, model)
        point = points[0]
        parent = BreakpointSession(ftp_daemon,
                                   spec.client_factory("Client1"),
                                   point.instruction_address)
        sibling = parent.fork()
        status_a, kernel_a, __ = parent.run_with_flip(
            point.flip_address, 2)
        status_b, kernel_b, __ = sibling.run_with_flip(
            point.flip_address, 2)
        assert status_a.kind == status_b.kind
        assert status_a.instret == status_b.instret
        assert kernel_a.channel.normalized_transcript() \
            == kernel_b.channel.normalized_transcript()

    def test_fork_shares_no_mutable_machine_state(self, ftp_daemon):
        spec = get_daemon_spec("ftpd")
        model = get_fault_model(None)
        points = _covered_points(ftp_daemon, spec, model)
        parent = BreakpointSession(ftp_daemon,
                                   spec.client_factory("Client1"),
                                   points[0].instruction_address)
        sibling = parent.fork()
        for mine, theirs in zip(parent.process.memory.regions,
                                sibling.process.memory.regions):
            assert mine.data is not theirs.data
        assert parent.process.cpu is not sibling.process.cpu
        assert parent.process.kernel is not sibling.process.kernel
        assert sibling.snapshot is parent.snapshot

    def test_fork_of_unreached_session_raises(self, ftp_daemon):
        session = BreakpointSession(ftp_daemon,
                                    get_daemon_spec("ftpd")
                                    .client_factory("Client1"),
                                    0xDEAD)
        assert not session.reached
        with pytest.raises(RuntimeError):
            session.fork()


class TestSnapshotUnit:
    def test_restore_reverts_exactly_the_dirty_pages(self, ftp_daemon):
        spec = get_daemon_spec("ftpd")
        model = get_fault_model(None)
        points = _covered_points(ftp_daemon, spec, model)
        session = BreakpointSession(ftp_daemon,
                                    spec.client_factory("Client1"),
                                    points[0].instruction_address)
        blobs = [bytes(blob) for blob in session.snapshot.region_blobs]
        session.run_with_flip(points[0].flip_address, 1)
        session._restore()
        for region, blob in zip(session.process.memory.regions, blobs):
            assert bytes(region.data) == blob, region.name

    def test_capture_resets_dirty_baseline(self, ftp_daemon):
        spec = get_daemon_spec("ftpd")
        model = get_fault_model(None)
        points = _covered_points(ftp_daemon, spec, model)
        session = BreakpointSession(ftp_daemon,
                                    spec.client_factory("Client1"),
                                    points[0].instruction_address)
        # the prefix run dirtied pages; capture must have cleared them
        # so the first restore's delta covers only the suffix.
        recaptured = MachineSnapshot.capture(session.process,
                                             session.process.kernel)
        assert session.process.memory.dirty_pages() == {}
        assert recaptured.region_blobs \
            == [bytes(r.data) for r in session.process.memory.regions]


class TestSessionCacheReuse:
    def test_shared_cache_across_models_preserves_outcomes(
            self, ftp_daemon):
        """One site snapshot serves every fault model aimed at that
        instruction: campaigns run back-to-back over a shared cache
        must equal campaigns with private caches, and the second
        sweep must actually hit the cache."""
        spec = get_daemon_spec("ftpd")
        cache = SessionCache()
        for model_name in available_fault_models():
            model = get_fault_model(model_name)
            points = _covered_points(ftp_daemon, spec, model)
            private = _run(ftp_daemon, spec, model, points)
            shared = _run(ftp_daemon, spec, model, points,
                          session_cache=cache)
            assert _signature(private) == _signature(shared), model_name
        assert cache.hits > 0

    def test_cache_capacity_evicts_lru(self, ftp_daemon):
        spec = get_daemon_spec("ftpd")
        model = get_fault_model(None)
        points = _covered_points(ftp_daemon, spec, model, cap=None)
        addresses = sorted({p.instruction_address for p in points})
        assert len(addresses) >= 2
        cache = SessionCache(capacity=1)
        factory = spec.client_factory("Client1")
        for address in addresses[:2]:
            key = SessionCache.key(ftp_daemon, "Client1", 400_000,
                                   address)
            cache.store(key, BreakpointSession(ftp_daemon, factory,
                                               address))
        assert len(cache._sessions) == 1
