"""Warm worker fleet: serial-identical execution, warm cache reuse
across campaigns, supervision (kill/respawn/salvage, retirement with
inline fallback, pipe-error accounting) and checkpoint drain.

The acceptance property is the repo's north star: every path through
the fleet must end in tallies byte-identical to an undisturbed serial
run of the same campaign.
"""

from __future__ import annotations

import pytest

from repro.apps.ftpd import client1
from repro.injection import (CampaignInterrupted, ChaosAction,
                             ChaosPolicy, FleetConfig,
                             run_campaign, run_fleet_campaign,
                             WorkerFleet)
from repro.injection.fleet import BUSY

SLICE = 40

#: test-speed fleet: short backoff and polls, real semantics.
FAST = dict(workers=2, backoff_base=0.05, backoff_cap=0.2,
            poll_interval=0.05, dead_grace=0.2)


def fast_config(**overrides):
    return FleetConfig(**{**FAST, **overrides})


@pytest.fixture(scope="module")
def serial_campaign(ftp_daemon):
    return run_campaign(ftp_daemon, "Client1", client1,
                        max_points=SLICE)


def assert_identical(campaign, serial):
    assert campaign.counts() == serial.counts()
    assert campaign.counts(refined=True) == serial.counts(refined=True)
    assert [r.point for r in campaign.results] \
        == [r.point for r in serial.results]
    assert [r.outcome for r in campaign.results] \
        == [r.outcome for r in serial.results]


def deterministic_core(campaign):
    core = dict(campaign.metrics)
    core.pop("volatile", None)
    return core


def counters(campaign):
    return campaign.metrics["volatile"]["counters"]


# ----------------------------------------------------------------------
# Equivalence

class TestFleetEquivalence:
    def test_fleet_run_equals_serial(self, ftp_daemon, tmp_path,
                                     serial_campaign):
        campaign = run_fleet_campaign(
            ftp_daemon, "Client1", client1, config=fast_config(),
            max_points=SLICE, journal=tmp_path / "run.jsonl")
        assert_identical(campaign, serial_campaign)
        assert deterministic_core(campaign) \
            == deterministic_core(serial_campaign)
        assert campaign.timing["workers"] == 2

    def test_journal_carries_unit_markers(self, ftp_daemon, tmp_path,
                                          serial_campaign):
        from repro.injection import CampaignJournal
        from repro.injection.parallel import discover_shard_journals
        base = tmp_path / "run.jsonl"
        run_fleet_campaign(ftp_daemon, "Client1", client1,
                           config=fast_config(), max_points=SLICE,
                           journal=base)
        units = []
        for path in discover_shard_journals(base):
            __, __, __, report = CampaignJournal.load_with_report(path)
            units.extend(report.units)
        assert units, "no unit markers in any shard journal"
        assert all(marker.get("records", 0) >= 1 for marker in units)

    def test_resume_from_fleet_journal(self, ftp_daemon, tmp_path,
                                       serial_campaign):
        base = tmp_path / "run.jsonl"
        run_fleet_campaign(ftp_daemon, "Client1", client1,
                           config=fast_config(), max_points=SLICE,
                           journal=base)
        resumed = run_fleet_campaign(
            ftp_daemon, "Client1", client1, config=fast_config(),
            max_points=SLICE, journal=base, resume=True)
        assert_identical(resumed, serial_campaign)
        assert resumed.timing["executed"] == 0
        assert counters(resumed)["runtime.resumed"] == SLICE


# ----------------------------------------------------------------------
# Warm reuse across campaigns

class TestWarmFleet:
    def test_second_submission_reuses_golden(self, ftp_daemon,
                                             serial_campaign):
        fleet = WorkerFleet(fast_config())
        fleet.start()
        try:
            cold = run_fleet_campaign(ftp_daemon, "Client1", client1,
                                      fleet=fleet, max_points=SLICE)
            warm = run_fleet_campaign(ftp_daemon, "Client1", client1,
                                      fleet=fleet, max_points=SLICE)
        finally:
            fleet.stop()
        for campaign in (cold, warm):
            assert_identical(campaign, serial_campaign)
            assert deterministic_core(campaign) \
                == deterministic_core(serial_campaign)
        assert counters(cold).get("runtime.golden_runs", 0) >= 1
        assert counters(cold).get("runtime.golden_reused", 0) == 0
        assert counters(warm).get("runtime.golden_runs", 0) == 0
        assert counters(warm).get("runtime.golden_reused", 0) >= 1
        assert counters(warm).get("runtime.sessions_reused", 0) >= 1

    def test_concurrent_campaigns_interleave(self, ftp_daemon,
                                             serial_campaign):
        fleet = WorkerFleet(fast_config())
        fleet.start()
        try:
            first = fleet.submit(ftp_daemon, "Client1", client1,
                                 max_points=SLICE)
            second = fleet.submit(ftp_daemon, "Client1", client1,
                                  max_points=SLICE)
            while not (fleet.finished(first)
                       and fleet.finished(second)):
                fleet.pump()
            campaigns = [fleet.finalize(first),
                         fleet.finalize(second)]
        finally:
            fleet.stop()
        for campaign in campaigns:
            assert_identical(campaign, serial_campaign)
        # the second submission found the cell's golden already warm
        assert counters(campaigns[1]) \
            .get("runtime.golden_reused", 0) >= 1


# ----------------------------------------------------------------------
# Supervision

class TestFleetSupervision:
    def test_killed_worker_respawns_and_heals(self, ftp_daemon,
                                              tmp_path,
                                              serial_campaign):
        chaos = ChaosPolicy(actions=(
            ChaosAction(kind="kill", shard=0, after=2,
                        exit_code=42),))
        campaign = run_fleet_campaign(
            ftp_daemon, "Client1", client1, config=fast_config(),
            chaos=chaos, max_points=SLICE,
            journal=tmp_path / "run.jsonl")
        assert_identical(campaign, serial_campaign)
        volatile = counters(campaign)
        assert volatile["supervisor.respawns"] == 1
        assert volatile["supervisor.failed_shards"] == 0
        assert volatile["supervisor.salvaged_points"] >= 1
        assert deterministic_core(campaign) \
            == deterministic_core(serial_campaign)

    def test_all_workers_retired_falls_back_inline(self, ftp_daemon,
                                                   tmp_path,
                                                   serial_campaign):
        # both workers die once, the restart budget is zero: the
        # parent must finish the remaining units itself
        chaos = ChaosPolicy(actions=(
            ChaosAction(kind="kill", shard=0, after=2),
            ChaosAction(kind="kill", shard=1, after=2),))
        campaign = run_fleet_campaign(
            ftp_daemon, "Client1", client1,
            config=fast_config(max_restarts=0), chaos=chaos,
            max_points=SLICE, journal=tmp_path / "run.jsonl")
        assert_identical(campaign, serial_campaign)
        volatile = counters(campaign)
        assert volatile["supervisor.failed_shards"] == 2
        assert volatile["supervisor.degraded"] >= 1
        assert volatile["supervisor.inline_points"] >= 1
        assert deterministic_core(campaign) \
            == deterministic_core(serial_campaign)

    def test_torn_pipe_while_busy_counts_pipe_error(self):
        # a worker killed mid-send tears its channel: the parent must
        # classify the EOF on a BUSY slot as a pipe error, not as a
        # clean goodbye
        import multiprocessing
        fleet = WorkerFleet(fast_config())
        slot = fleet.slots.setdefault(
            0, type("S", (), {})())      # fleet not started: no slots
        parent_conn, child_conn = multiprocessing.Pipe()
        slot.worker = 0
        slot.incarnation = 0
        slot.status = BUSY
        slot.conn = parent_conn
        child_conn.close()
        fleet._drain_conn(slot, parent_conn)
        assert fleet.events["pipe_errors"] == 1
        assert slot.conn is None


# ----------------------------------------------------------------------
# Checkpoint drain

class TestFleetCheckpoint:
    def test_deadline_drains_and_resumes(self, ftp_daemon, tmp_path,
                                         serial_campaign):
        base = tmp_path / "run.jsonl"
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_fleet_campaign(ftp_daemon, "Client1", client1,
                               config=fast_config(), max_points=SLICE,
                               journal=base, deadline=0.0)
        assert excinfo.value.reason == "deadline"
        resumed = run_fleet_campaign(
            ftp_daemon, "Client1", client1, config=fast_config(),
            max_points=SLICE, journal=base, resume=True,
            journal_salvage=True)
        assert_identical(resumed, serial_campaign)

    def test_drain_keeps_fleet_alive_for_next_campaign(self,
                                                       ftp_daemon,
                                                       tmp_path,
                                                       serial_campaign):
        fleet = WorkerFleet(fast_config())
        fleet.start()
        try:
            base = tmp_path / "run.jsonl"
            with pytest.raises(CampaignInterrupted):
                run_fleet_campaign(ftp_daemon, "Client1", client1,
                                   fleet=fleet, max_points=SLICE,
                                   journal=base, deadline=0.0)
            # the same fleet serves the next submission (idle workers
            # survive a drain; only busy ones were checkpointed)
            campaign = run_fleet_campaign(
                ftp_daemon, "Client1", client1, fleet=fleet,
                max_points=SLICE, journal=base, resume=True,
                journal_salvage=True)
        finally:
            fleet.stop()
        assert_identical(campaign, serial_campaign)
