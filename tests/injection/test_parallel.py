"""Parallel sharded campaigns: serial/parallel equivalence, shard
journals, resume across worker counts, and worker fault surfacing."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (build_table1, campaign_from_shard_journals)
from repro.apps.ftpd import client1
from repro.injection import (JournalError, run_campaign, shard_points,
                             SupervisorConfig)
from repro.injection.parallel import (default_daemon_factory,
                                      discover_shard_journals,
                                      shard_journal_path)
from repro.injection.targets import InjectionPoint

SLICE = 96


def make_point(address, byte_offset=0, bit=0):
    return InjectionPoint(instruction_address=address,
                          byte_offset=byte_offset, bit=bit,
                          instruction_length=2, mnemonic="je",
                          opcode=0x74, kind="cond_branch")


# ----------------------------------------------------------------------
# Sharding (pure function)

class TestShardPoints:
    def points(self, instructions=7, bits=4):
        return [make_point(0x1000 + 0x10 * i, byte_offset=b // 8,
                           bit=b % 8)
                for i in range(instructions) for b in range(bits)]

    def test_partition_is_exact(self):
        points = self.points()
        shards = shard_points(points, 3)
        flattened = [p for shard in shards for p in shard]
        assert sorted(flattened, key=lambda p: (p.instruction_address,
                                                p.byte_offset, p.bit)) \
            == points

    def test_instruction_bits_stay_together(self):
        # all bits of one instruction must land in the same shard so
        # the worker keeps its BreakpointSession amortisation
        shards = shard_points(self.points(), 3)
        owner = {}
        for index, shard in enumerate(shards):
            for point in shard:
                owner.setdefault(point.instruction_address,
                                 set()).add(index)
        assert all(len(owners) == 1 for owners in owner.values())

    def test_more_workers_than_instructions(self):
        points = self.points(instructions=2)
        shards = shard_points(points, 8)
        assert len(shards) == 2
        assert sum(len(shard) for shard in shards) == len(points)

    def test_empty(self):
        assert shard_points([], 4) == []


# ----------------------------------------------------------------------
# Serial / parallel equivalence (the acceptance property)

@pytest.fixture(scope="module")
def serial_campaign(ftp_daemon):
    return run_campaign(ftp_daemon, "Client1", client1,
                        max_points=SLICE)


class TestEquivalence:
    def test_parallel_matches_serial(self, ftp_daemon,
                                     serial_campaign):
        parallel = run_campaign(ftp_daemon, "Client1", client1,
                                max_points=SLICE, workers=3)
        assert parallel.counts() == serial_campaign.counts()
        assert parallel.counts(refined=True) \
            == serial_campaign.counts(refined=True)
        assert [r.point for r in parallel.results] \
            == [r.point for r in serial_campaign.results]
        assert [r.outcome for r in parallel.results] \
            == [r.outcome for r in serial_campaign.results]
        assert [(q.point, q.location) for q in parallel.quarantined] \
            == [(q.point, q.location)
                for q in serial_campaign.quarantined]

    def test_table1_rows_identical(self, ftp_daemon, serial_campaign):
        parallel = run_campaign(ftp_daemon, "Client1", client1,
                                max_points=SLICE, workers=3)
        serial_table = build_table1([serial_campaign])
        parallel_table = build_table1([parallel])
        for serial_col, parallel_col in zip(serial_table,
                                            parallel_table):
            assert vars(serial_col) == vars(parallel_col)

    def test_timing_is_recorded(self, ftp_daemon):
        campaign = run_campaign(ftp_daemon, "Client1", client1,
                                max_points=SLICE, workers=2)
        timing = campaign.timing
        assert timing["workers"] == 2
        assert timing["experiments"] == SLICE
        assert timing["executed"] == SLICE
        assert timing["wall_clock"] > 0
        assert timing["experiments_per_sec"] > 0
        assert len(timing["shards"]) == 2
        assert sum(shard["experiments"]
                   for shard in timing["shards"]) == SLICE

    def test_workers_one_uses_serial_runner(self, ftp_daemon,
                                            serial_campaign):
        campaign = run_campaign(ftp_daemon, "Client1", client1,
                                max_points=SLICE, workers=1)
        assert campaign.timing["workers"] == 1
        assert "shards" not in campaign.timing
        assert campaign.counts(refined=True) \
            == serial_campaign.counts(refined=True)


# ----------------------------------------------------------------------
# Shard journals: write, offline merge, resume

class TestShardJournals:
    def run_parallel(self, ftp_daemon, tmp_path, workers=3, **kwargs):
        return run_campaign(ftp_daemon, "Client1", client1,
                            max_points=SLICE, workers=workers,
                            journal=tmp_path / "run.jsonl", **kwargs)

    def test_one_journal_per_shard(self, ftp_daemon, tmp_path):
        campaign = self.run_parallel(ftp_daemon, tmp_path)
        paths = discover_shard_journals(tmp_path / "run.jsonl")
        assert len(paths) == 3
        keys = set()
        total = 0
        for path in paths:
            with open(path) as handle:
                lines = [json.loads(line) for line in handle]
            assert lines[0]["type"] == "meta"
            assert lines[0]["daemon"] == "FtpDaemon"
            results = [line for line in lines
                       if line["type"] == "result"]
            total += len(results)
            keys.update(line["key"] for line in results)
        assert total == len(keys) == campaign.total_runs == SLICE

    def test_offline_reconstruction(self, ftp_daemon, tmp_path):
        campaign = self.run_parallel(ftp_daemon, tmp_path)
        rebuilt = campaign_from_shard_journals(tmp_path / "run.jsonl")
        assert rebuilt.daemon_name == "FtpDaemon"
        assert rebuilt.counts(refined=True) \
            == campaign.counts(refined=True)
        assert {r.point for r in rebuilt.results} \
            == {r.point for r in campaign.results}

    def test_resume_across_worker_counts(self, ftp_daemon, tmp_path):
        full = self.run_parallel(ftp_daemon, tmp_path, workers=3)
        # kill one shard's tail: drop half its result lines
        victim = shard_journal_path(tmp_path / "run.jsonl", 1)
        with open(victim) as handle:
            lines = handle.readlines()
        with open(victim, "w") as handle:
            handle.writelines(lines[:1 + (len(lines) - 1) // 2])
        resumed = self.run_parallel(ftp_daemon, tmp_path, workers=2,
                                    resume=True)
        assert resumed.counts(refined=True) == full.counts(refined=True)
        assert [r.point for r in resumed.results] \
            == [r.point for r in full.results]
        assert [r.outcome for r in resumed.results] \
            == [r.outcome for r in full.results]

    def test_complete_journals_rerun_nothing(self, ftp_daemon,
                                             tmp_path, monkeypatch):
        full = self.run_parallel(ftp_daemon, tmp_path)
        import repro.injection.parallel as parallel_module

        def forbidden(spec, queue):
            raise AssertionError("all points journaled; no worker "
                                 "should run")

        # a fully-journaled resume spawns no workers at all, so the
        # worker entry point must never be invoked
        monkeypatch.setattr(parallel_module, "_shard_worker_main",
                            forbidden)
        resumed = self.run_parallel(ftp_daemon, tmp_path, resume=True)
        assert resumed.counts(refined=True) == full.counts(refined=True)
        assert resumed.timing["executed"] == 0

    def test_resume_rejects_mismatched_journal(self, ftp_daemon,
                                               tmp_path):
        self.run_parallel(ftp_daemon, tmp_path)
        with pytest.raises(JournalError):
            run_campaign(ftp_daemon, "Client2", client1,
                         max_points=SLICE, workers=3,
                         journal=tmp_path / "run.jsonl", resume=True)


# ----------------------------------------------------------------------
# Fault surfacing and daemon reconstruction

FAST_SUPERVISOR = SupervisorConfig(max_restarts=0, backoff_base=0.05,
                                   poll_interval=0.05, dead_grace=0.2)


class TestWorkerFaults:
    def test_worker_error_heals_inline(self, ftp_daemon,
                                       serial_campaign):
        # every worker explodes during setup; the supervisor must not
        # fail the campaign (satellite: one shard's error is no longer
        # fatal to its siblings) -- with zero survivors it falls back
        # to running the leftover points inline in the parent.
        def exploding_factory():
            raise RuntimeError("synthetic worker construction fault")

        campaign = run_campaign(ftp_daemon, "Client1", client1,
                                max_points=SLICE, workers=2,
                                daemon_factory=exploding_factory,
                                supervisor=FAST_SUPERVISOR)
        assert campaign.counts(refined=True) \
            == serial_campaign.counts(refined=True)
        counters = campaign.metrics["volatile"]["counters"]
        assert counters["supervisor.worker_errors"] == 2
        assert counters["supervisor.failed_shards"] == 2
        assert counters["supervisor.inline_points"] == SLICE

    def test_unhealable_error_raises_in_parent(self, ftp_daemon,
                                               monkeypatch):
        # when even the parent's inline fallback fails, the original
        # worker fault must surface in the raised error
        def exploding_factory():
            raise RuntimeError("synthetic worker construction fault")

        def broken_inline(self, shard, points, stop_check=None):
            raise RuntimeError("inline fallback broken too")

        from repro.injection.parallel import ParallelCampaignRunner
        monkeypatch.setattr(ParallelCampaignRunner, "_run_inline",
                            broken_inline)
        with pytest.raises(RuntimeError) as excinfo:
            run_campaign(ftp_daemon, "Client1", client1,
                         max_points=SLICE, workers=2,
                         daemon_factory=exploding_factory,
                         supervisor=FAST_SUPERVISOR)
        assert "could not self-heal" in str(excinfo.value)
        assert "synthetic worker construction fault" in str(
            excinfo.value)


class TestDaemonFactory:
    def test_default_factory_rebuilds_equivalent_daemon(self,
                                                        ftp_daemon):
        rebuilt = default_daemon_factory(ftp_daemon)()
        assert type(rebuilt) is type(ftp_daemon)
        assert rebuilt.module.text == ftp_daemon.module.text
        assert rebuilt.auth_ranges() == ftp_daemon.auth_ranges()
        assert rebuilt.database == ftp_daemon.database
