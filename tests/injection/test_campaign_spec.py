"""CampaignSpec: the daemon x client x encoding x fault-model cell."""

import pytest

from repro.apps.pop3d import Pop3Daemon
from repro.injection import (ALL_ENCODINGS, BranchBitFlip,
                             CampaignSpec, enumerate_specs,
                             RegisterBitFlip, run_spec)


def test_defaults_name_the_paper_experiment():
    spec = CampaignSpec()
    assert (spec.daemon, spec.client) == ("ftpd", "Client1")
    assert spec.encoding == "old"
    assert spec.fault_model == "branch-bit"
    assert isinstance(spec.model(), BranchBitFlip)


def test_spec_resolves_registries():
    spec = CampaignSpec(daemon="pop3d", client="Client1",
                        fault_model="register-bit")
    assert spec.daemon_spec().daemon_class is Pop3Daemon
    assert callable(spec.client_factory())
    assert isinstance(spec.model(), RegisterBitFlip)
    assert spec.label() == "pop3d Client1 old register-bit"


def test_spec_is_hashable_pure_data():
    spec = CampaignSpec(daemon="sshd", fault_model="burst2")
    assert spec == CampaignSpec(daemon="sshd", fault_model="burst2")
    assert len({spec, CampaignSpec(daemon="sshd",
                                   fault_model="burst2")}) == 1


def test_unknown_names_fail_at_resolution_not_construction():
    spec = CampaignSpec(daemon="telnetd", fault_model="cosmic-ray")
    with pytest.raises(KeyError):
        spec.daemon_spec()
    with pytest.raises(KeyError):
        spec.model()


def test_enumerate_specs_full_product():
    specs = enumerate_specs()
    daemons = {spec.daemon for spec in specs}
    models = {spec.fault_model for spec in specs}
    assert daemons == {"ftpd", "pop3d", "sshd"}
    assert models == {"branch-bit", "burst2", "memory-bit",
                      "register-bit"}
    assert all(spec.encoding == "old" for spec in specs)
    assert len(specs) == len(set(specs))      # no duplicates


def test_enumerate_specs_restricted():
    specs = enumerate_specs(daemons=("ftpd",), clients=("Client1",),
                            encodings=ALL_ENCODINGS,
                            fault_models=("branch-bit",))
    assert len(specs) == 2
    assert {spec.encoding for spec in specs} == set(ALL_ENCODINGS)


def test_run_spec_pop3d_campaign_smoke(pop3_daemon, tmp_path):
    spec = CampaignSpec(daemon="pop3d", client="Client1",
                        fault_model="register-bit")
    journal = str(tmp_path / "pop3.jsonl")
    campaign = run_spec(spec, daemon=pop3_daemon, max_points=8,
                        journal=journal, resume=True)
    assert campaign.total_runs == 8
    assert campaign.fault_model == "register-bit"
    resumed = run_spec(spec, daemon=pop3_daemon, max_points=8,
                       journal=journal, resume=True)
    assert resumed.timing["executed"] == 0
    assert resumed.counts() == campaign.counts()


def test_run_spec_builds_daemon_when_not_supplied():
    spec = CampaignSpec(daemon="ftpd", client="Client1")
    campaign = run_spec(spec, max_points=2)
    assert campaign.total_runs == 2
    assert campaign.daemon_name == "FtpDaemon"
