"""Service layer: an in-process :class:`CampaignService` exercised
through the real Unix-socket wire protocol.

These tests cover the front-end contracts the CI gate
(benchmarks/check_service.py) checks end-to-end with a subprocess:
concurrent clients stream serial-identical results, the per-client
quota rejects rather than queues, unknown options are refused at the
door, and a programmatic drain checkpoints in-flight campaigns into
resumable journals before ``run()`` returns 0.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.analysis import result_from_dict
from repro.apps.ftpd import client1
from repro.injection import (CampaignResult, FleetConfig,
                             run_campaign, run_fleet_campaign)
from repro.service import (CampaignService, ServiceClient,
                           ServiceError)

SLICE = 40
SPEC = {"daemon": "ftpd", "client": "Client1",
        "encoding": "old", "fault_model": "branch-bit"}

#: test-speed fleet for the service under test.
FAST = dict(workers=2, backoff_base=0.05, backoff_cap=0.2,
            poll_interval=0.05, dead_grace=0.2)


class ServiceHarness:
    """One CampaignService running on a daemon thread."""

    def __init__(self, socket_path, quota=2):
        self.socket_path = str(socket_path)
        self.service = CampaignService(socket_path=self.socket_path,
                                       config=FleetConfig(**FAST),
                                       quota=quota)
        self.status = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.status = self.service.run()

    def start(self):
        self.thread.start()
        deadline = time.monotonic() + 30
        while not os.path.exists(self.socket_path):
            if not self.thread.is_alive():
                raise RuntimeError("service thread died on startup")
            if time.monotonic() > deadline:
                raise RuntimeError("service socket never appeared")
            time.sleep(0.05)
        return self

    def stop(self):
        if self.thread.is_alive():
            self.service.shutdown("test-teardown")
            self.thread.join(60)


@pytest.fixture(scope="module")
def harness(tmp_path_factory):
    harness = ServiceHarness(
        tmp_path_factory.mktemp("svc") / "svc.sock")
    harness.start()
    yield harness
    harness.stop()


@pytest.fixture(scope="module")
def serial_campaign(ftp_daemon):
    return run_campaign(ftp_daemon, "Client1", client1,
                        max_points=SLICE)


def rebuild(done, records):
    """A CampaignResult from the wire stream, as the analysis layer
    would consume it."""
    campaign = CampaignResult(daemon_name="FtpDaemon",
                              client_name="Client1", encoding="old",
                              fault_model="branch-bit")
    campaign.results = [result_from_dict(record)
                        for record in records]
    campaign.metrics = done["metrics"]
    return campaign


def assert_identical(campaign, serial):
    assert [r.point for r in campaign.results] \
        == [r.point for r in serial.results]
    assert [r.outcome for r in campaign.results] \
        == [r.outcome for r in serial.results]
    assert campaign.counts() == serial.counts()
    core = dict(campaign.metrics)
    core.pop("volatile", None)
    serial_core = dict(serial.metrics)
    serial_core.pop("volatile", None)
    assert core == serial_core


class TestServiceEquivalence:
    def test_concurrent_clients_match_serial(self, harness,
                                             serial_campaign):
        outputs = {}

        def run_one(name):
            with ServiceClient(harness.socket_path) as client:
                accepted = client.submit(SPEC, max_points=SLICE)
                outputs[name] = client.collect(accepted["campaign"])

        threads = [threading.Thread(target=run_one, args=(name,))
                   for name in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert set(outputs) == {"a", "b"}
        for done, records in outputs.values():
            assert_identical(rebuild(done, records), serial_campaign)

    def test_repeat_submission_is_warm(self, harness,
                                       serial_campaign):
        with ServiceClient(harness.socket_path) as client:
            first = client.submit(SPEC, max_points=SLICE)
            client.collect(first["campaign"])
            second = client.submit(SPEC, max_points=SLICE)
            assert second["warm"] is True
            done, records = client.collect(second["campaign"])
        assert_identical(rebuild(done, records), serial_campaign)
        counters = done["metrics"]["volatile"]["counters"]
        assert counters.get("runtime.golden_runs", 0) == 0
        assert counters.get("runtime.golden_reused", 0) >= 1


class TestServiceTelemetry:
    def test_subscriber_streams_gap_free_without_perturbing_results(
            self, harness, serial_campaign):
        from repro.obs import check_contiguous
        received = []
        subscriber = ServiceClient(harness.socket_path)
        subscriber.subscribe()
        drained = threading.Event()

        def pump():
            try:
                for event in subscriber.telemetry():
                    received.append(event)
            finally:
                drained.set()

        reader = threading.Thread(target=pump, daemon=True)
        reader.start()
        try:
            with ServiceClient(harness.socket_path) as client:
                accepted = client.submit(SPEC, max_points=SLICE)
                cid = accepted["campaign"]
                done, records = client.collect(cid)
            # results are byte-identical to a serial run even with a
            # live subscriber attached
            assert_identical(rebuild(done, records), serial_campaign)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                mine = [event for event in received
                        if event.get("campaign") == cid]
                if any(event.get("type") == "campaign-finished"
                       for event in mine):
                    break
                time.sleep(0.05)
            mine = [event for event in received
                    if event.get("campaign") == cid]
            assert check_contiguous(mine) == []
            kinds = [event["type"] for event in mine]
            assert kinds[0] == "golden"
            assert kinds[1] == "campaign-started"
            assert kinds[-1] == "campaign-finished"
            assert "unit-finished" in kinds
        finally:
            subscriber.close()
            drained.wait(10)

    def test_late_subscriber_replays_ring_history(self, harness):
        with ServiceClient(harness.socket_path) as client:
            accepted = client.submit(SPEC, max_points=SLICE)
            cid = accepted["campaign"]
            client.collect(cid)
        from repro.obs import check_contiguous
        late = ServiceClient(harness.socket_path)
        try:
            late.subscribe()
            received = []
            drained = threading.Event()

            def pump():
                try:
                    for event in late.telemetry():
                        received.append(event)
                finally:
                    drained.set()

            threading.Thread(target=pump, daemon=True).start()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                mine = [event for event in received
                        if event.get("campaign") == cid]
                if any(event.get("type") == "campaign-finished"
                       for event in mine):
                    break
                time.sleep(0.05)
            # the finished campaign's whole stream came from the ring
            mine = [event for event in received
                    if event.get("campaign") == cid]
            assert check_contiguous(mine) == []
            assert mine[-1]["type"] == "campaign-finished"
        finally:
            late.close()
            drained.wait(10)


class TestServiceAdmission:
    def test_quota_rejects_excess_in_flight(self, harness):
        with ServiceClient(harness.socket_path) as client:
            first = client.submit(SPEC, max_points=SLICE)
            second = client.submit(SPEC, max_points=SLICE)
            with pytest.raises(ServiceError):
                client.submit(SPEC, max_points=SLICE)
            # the rejection charges nothing: both accepted campaigns
            # still stream to completion
            client.collect(first["campaign"])
            client.collect(second["campaign"])
            # and a slot freed by completion admits a new submission
            third = client.submit(SPEC, max_points=SLICE)
            client.collect(third["campaign"])

    def test_unknown_option_rejected(self, harness):
        with ServiceClient(harness.socket_path) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.submit(SPEC, progress=True)
        assert "progress" in str(excinfo.value)

    def test_unknown_daemon_rejected(self, harness):
        with ServiceClient(harness.socket_path) as client:
            with pytest.raises(ServiceError):
                client.submit({"daemon": "telnetd",
                               "client": "Client1"})


class TestServiceDrain:
    def test_shutdown_checkpoints_to_resumable_journal(
            self, ftp_daemon, tmp_path):
        points = 200
        journal = str(tmp_path / "drain.jsonl")
        harness = ServiceHarness(tmp_path / "drain.sock")
        harness.start()
        try:
            with ServiceClient(harness.socket_path) as client:
                accepted = client.submit(SPEC, max_points=points,
                                         journal=journal)
                harness.service.shutdown("test-drain")
                events = list(client.events(accepted["campaign"]))
        finally:
            harness.thread.join(90)
        assert not harness.thread.is_alive()
        assert harness.status == 0
        terminal = events[-1]
        if terminal["event"] == "done":
            pytest.skip("campaign finished before the drain landed")
        assert terminal["event"] == "checkpoint"
        assert terminal["journal"]
        # the journal resumes to serial-identical tallies
        serial = run_campaign(ftp_daemon, "Client1", client1,
                              max_points=points)
        resumed = run_fleet_campaign(
            ftp_daemon, "Client1", client1,
            config=FleetConfig(**FAST), max_points=points,
            journal=journal, resume=True, journal_salvage=True)
        assert_identical(resumed, serial)
