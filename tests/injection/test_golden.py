"""Golden-run recording: coverage and determinism."""

from __future__ import annotations

import pytest

from repro.apps.ftpd import client1, client2
from repro.injection import record_golden


class TestGoldenRun:
    def test_clean_exit_required(self, ftp_daemon):
        golden = record_golden(ftp_daemon, client1)
        assert golden.exit_kind == "exit"

    def test_milestones(self, ftp_daemon):
        denied = record_golden(ftp_daemon, client1)
        granted = record_golden(ftp_daemon, client2)
        assert not denied.broke_in and not denied.granted
        assert granted.granted
        assert granted.client_state["retrieved_files"] == 2

    def test_coverage_contains_auth_entry(self, ftp_daemon):
        golden = record_golden(ftp_daemon, client1)
        user_start, __ = ftp_daemon.program.function_range("user")
        assert user_start in golden.coverage

    def test_unreached_code_not_covered(self, ftp_daemon):
        golden = record_golden(ftp_daemon, client1)
        # client1 never logs in, so retrieve()'s body is not reached
        retr_start, retr_end = ftp_daemon.program.function_range(
            "retrieve")
        reached = [a for a in golden.coverage
                   if retr_start + 20 <= a < retr_end]
        assert not reached

    def test_byte_coverage_superset_of_starts(self, ftp_daemon):
        golden = record_golden(ftp_daemon, client1)
        text_start = ftp_daemon.module.text_base
        text_end = text_start + len(ftp_daemon.module.text)
        starts_in_text = {a for a in golden.coverage
                          if text_start <= a < text_end}
        assert starts_in_text <= golden.coverage_bytes

    def test_deterministic(self, ftp_daemon):
        first = record_golden(ftp_daemon, client1)
        second = record_golden(ftp_daemon, client1)
        assert first.transcript == second.transcript
        assert first.coverage == second.coverage
        assert first.instret == second.instret

    def test_different_clients_different_coverage(self, ftp_daemon):
        wrong_pw = record_golden(ftp_daemon, client1)
        correct = record_golden(ftp_daemon, client2)
        assert wrong_pw.coverage != correct.coverage
