"""Equivalence-class pruning: partition soundness and campaign
equivalence on a real cell."""

from __future__ import annotations

import pytest

from repro.apps.ftpd import client1
from repro.injection import (enumerate_points, get_fault_model,
                             record_golden, run_campaign)
from repro.injection.pruning import (_classify_replacement,
                                     PRUNE_DEAD, PRUNE_SOLO)

SLICE = 160   # experiments per campaign in these fast tests


@pytest.fixture(scope="module")
def cell(ftp_daemon):
    golden = record_golden(ftp_daemon, client1)
    points = enumerate_points(ftp_daemon.module,
                              ftp_daemon.auth_ranges())
    return ftp_daemon, golden, points


@pytest.fixture(scope="module")
def exhaustive(ftp_daemon):
    return run_campaign(ftp_daemon, "Client1", client1,
                        max_points=SLICE)


@pytest.fixture(scope="module")
def pruned(ftp_daemon):
    return run_campaign(ftp_daemon, "Client1", client1,
                        max_points=SLICE, prune=True)


class TestPartition:
    """Every enumerated point lands in exactly one class."""

    def test_classification_is_a_partition(self, cell):
        daemon, golden, points = cell
        model = get_fault_model("branch-bit")
        plan = model.classify_points(daemon.module, points, "old",
                                     golden.coverage,
                                     ranges=daemon.auth_ranges())
        seen = set()
        for site in plan.sites:
            if not site.sealed:
                site.seal(None)   # bytes-level keys, no live EFLAGS
            for cls in site.classes:
                for point in cls.points:
                    assert point.key not in seen, \
                        "point %s in two classes" % point.key
                    seen.add(point.key)
        assert seen == {point.key for point in points}

    def test_dead_sites_merge_covered_sites_do_not_vanish(self, cell):
        daemon, golden, points = cell
        model = get_fault_model("branch-bit")
        plan = model.classify_points(daemon.module, points, "old",
                                     golden.coverage,
                                     ranges=daemon.auth_ranges())
        dead = [site for site in plan.sites if site.dead]
        assert dead, "cell has no never-activated site"
        for site in dead:
            assert len(site.classes) == 1
            assert site.classes[0].kind == PRUNE_DEAD

    def test_data_models_default_to_dead_plus_singletons(self, cell):
        daemon, golden, points_text = cell
        model = get_fault_model("register-bit")
        points = model.enumerate_points(daemon.module,
                                        daemon.auth_ranges())
        plan = model.classify_points(daemon.module, points, "old",
                                     golden.coverage)
        for site in plan.sites:
            for cls in site.classes:
                assert cls.kind in (PRUNE_DEAD, PRUNE_SOLO)

    def test_loop_family_is_never_a_branch_class(self, cell):
        """``loop``/``loope``/``loopne``/``jecxz`` read (and write)
        ECX, so a corrupted image decoding to one must stay opaque --
        merging it with a same-target jmp/jcc once produced a wrong
        SD-vs-FSV fan-out."""
        daemon, golden, points = cell
        site = next(p.instruction_address for p in points
                    if p.instruction_address in golden.coverage)
        for opcode in (0xE0, 0xE1, 0xE2, 0xE3):
            disposition = _classify_replacement(
                daemon.module, site, bytes([opcode, 0x05]))
            assert disposition[0] != "branch", \
                "opcode %#x classified as a branch" % opcode


class TestCampaignEquivalence:
    def test_counts_identical(self, pruned, exhaustive):
        assert pruned.counts() == exhaustive.counts()
        assert pruned.counts(refined=True) \
            == exhaustive.counts(refined=True)

    def test_per_point_outcomes_identical(self, pruned, exhaustive):
        assert [(r.point.key, r.outcome) for r in pruned.results] \
            == [(r.point.key, r.outcome) for r in exhaustive.results]

    def test_figure4_and_table3_identical(self, pruned, exhaustive):
        assert pruned.crash_latencies() == exhaustive.crash_latencies()
        assert pruned.by_location() == exhaustive.by_location()

    def test_provenance_stamped_consistently(self, pruned):
        by_key = {r.point.key: r for r in pruned.results}
        stamped = [r for r in pruned.results if r.class_id is not None]
        assert stamped, "no multi-member class in the slice"
        for result in stamped:
            rep = by_key[result.representative]
            assert rep.class_id == result.class_id
            assert rep.representative == rep.point.key
            assert rep.outcome == result.outcome

    def test_fewer_experiments_executed(self, pruned, exhaustive):
        assert pruned.timing["executed"] \
            < exhaustive.timing["executed"]
        counters = pruned.metrics["volatile"]["counters"]
        assert counters["pruning.rep_runs"] > 0
        assert counters["pruning.fanned_out"] > 0


class TestAudit:
    def test_full_audit_passes_and_counts_runs(self, ftp_daemon,
                                               exhaustive):
        audited = run_campaign(ftp_daemon, "Client1", client1,
                               max_points=SLICE, prune=True,
                               audit_fraction=1.0)
        assert audited.counts() == exhaustive.counts()
        counters = audited.metrics["volatile"]["counters"]
        assert counters["pruning.audited_classes"] > 0
        assert counters["pruning.audit_runs"] > 0


class TestJournalResume:
    def test_pruned_journal_resumes_to_identical_tally(self, ftp_daemon,
                                                       pruned,
                                                       tmp_path):
        journal = tmp_path / "pruned.jsonl"
        first = run_campaign(ftp_daemon, "Client1", client1,
                             max_points=SLICE, prune=True,
                             journal=journal)
        resumed = run_campaign(ftp_daemon, "Client1", client1,
                               max_points=SLICE, prune=True,
                               journal=journal, resume=True)
        assert resumed.timing["executed"] == 0
        assert [(r.point.key, r.outcome, r.class_id)
                for r in resumed.results] \
            == [(r.point.key, r.outcome, r.class_id)
                for r in first.results]
        assert resumed.counts() == pruned.counts()
