"""The paper's Section 3 examples, reproduced at the binary level.

Example 1 (ftpd pass()): single-bit flips that grant access to a
wrong-password client -- ``jne`` <-> ``je`` around the strcmp result
and the final grant/deny branch.

Example 2 (sshd do_authentication()): flipping the branch on
auth_rhosts' return value logs an unauthorised user in.

Example 3 (sshd packet_read()): corrupting the buffer-size constant.
"""

from __future__ import annotations

import pytest

from repro.apps.ftpd import client1 as ftp_attacker
from repro.apps.sshd import client1 as ssh_attacker
from repro.injection import (BreakpointSession, record_golden,
                             classify_completed_run, SECURITY_BREAKIN)
from repro.x86 import decode, disassemble_range


def find_instructions(daemon, function, mnemonic):
    start, end = daemon.program.function_range(function)
    return [instruction for instruction in
            disassemble_range(daemon.module.text,
                              daemon.module.text_base, start, end)
            if instruction.mnemonic == mnemonic]


def run_flip(daemon, client_factory, instruction, bit, byte_offset=0):
    session = BreakpointSession(daemon, client_factory,
                                instruction.address)
    if not session.reached:
        return None
    status, kernel, client = session.run_with_flip(
        instruction.address + byte_offset, bit)
    golden = record_golden(daemon, client_factory)
    outcome, detail = classify_completed_run(
        golden, client, kernel.channel.normalized_transcript(), status)
    return outcome, client


class TestExample1FtpPass:
    """A wrong-password FTP client gets in via one bit in pass_()."""

    def test_some_branch_flip_breaks_in(self, ftp_daemon):
        golden = record_golden(ftp_daemon, ftp_attacker)
        breakins = []
        for mnemonic in ("je", "jne"):
            for instruction in find_instructions(ftp_daemon, "pass_",
                                                 mnemonic):
                if instruction.address not in golden.coverage:
                    continue
                result = run_flip(ftp_daemon, ftp_attacker, instruction,
                                  bit=0)
                if result and result[0] == SECURITY_BREAKIN:
                    breakins.append((instruction, result[1]))
        assert breakins, "no je/jne flip in pass_() granted access"
        __, client = breakins[0]
        assert client.granted
        assert client.retrieved_files > 0

    def test_flip_is_je_jne_inversion(self, ftp_daemon):
        """The breaking flip turns one conditional into its negation
        (Hamming distance 1 in the opcode)."""
        golden = record_golden(ftp_daemon, ftp_attacker)
        checked = 0
        for instruction in find_instructions(ftp_daemon, "pass_", "jne"):
            if instruction.address not in golden.coverage:
                continue
            if instruction.length != 2:
                continue   # the 6-byte form is covered by 6BC2 tests
            flipped = decode(bytes([instruction.raw[0] ^ 1,
                                    instruction.raw[1]]),
                             instruction.address)
            assert flipped.mnemonic == "je"
            checked += 1
        assert checked > 0

    def test_unflipped_run_still_denies(self, ftp_daemon):
        golden = record_golden(ftp_daemon, ftp_attacker)
        assert not golden.broke_in


class TestExample2SshAuth:
    """One bit in do_authentication() gives an attacker a shell."""

    def test_branch_flip_grants_shell(self, ssh_daemon):
        golden = record_golden(ssh_daemon, ssh_attacker)
        breakins = []
        for mnemonic in ("je", "jne"):
            for instruction in find_instructions(
                    ssh_daemon, "do_authentication", mnemonic):
                if instruction.address not in golden.coverage:
                    continue
                result = run_flip(ssh_daemon, ssh_attacker, instruction,
                                  bit=0)
                if result and result[0] == SECURITY_BREAKIN:
                    breakins.append(result[1])
        assert breakins, "no flip in do_authentication() gave a shell"
        client = breakins[0]
        assert client.auth_success
        assert client.got_shell

    def test_auth_password_flip_can_break_in(self, ssh_daemon):
        golden = record_golden(ssh_daemon, ssh_attacker)
        outcomes = set()
        for mnemonic in ("je", "jne"):
            for instruction in find_instructions(ssh_daemon,
                                                 "auth_password",
                                                 mnemonic):
                if instruction.address not in golden.coverage:
                    continue
                result = run_flip(ssh_daemon, ssh_attacker, instruction,
                                  bit=0)
                if result:
                    outcomes.add(result[0])
        assert SECURITY_BREAKIN in outcomes


class TestExample3PacketRead:
    """Corrupting packet_read's size handling (a data-value error in
    the instruction stream) changes behaviour without being a branch
    flip."""

    def test_buffer_size_constant_is_in_text(self, ssh_daemon):
        start, end = ssh_daemon.program.function_range("packet_read")
        listing = disassemble_range(ssh_daemon.module.text,
                                    ssh_daemon.module.text_base,
                                    start, end)
        # sizeof(packet_buf) = 256 appears as an immediate (the
        # analogue of the paper's `push $0x2000`)
        immediates = [op.value for instruction in listing
                      for op in instruction.operands
                      if op.kind == "imm"]
        assert 256 in immediates

    def test_corrupting_size_check_changes_outcome(self, ssh_daemon):
        start, end = ssh_daemon.program.function_range("packet_read")
        listing = disassemble_range(ssh_daemon.module.text,
                                    ssh_daemon.module.text_base,
                                    start, end)
        target = None
        for instruction in listing:
            for operand in instruction.operands:
                if operand.kind == "imm" and operand.value == 256:
                    target = instruction
        assert target is not None
        golden = record_golden(ssh_daemon, ssh_attacker)
        assert target.address in golden.coverage
        # flip a high bit of the immediate: the bounds check now
        # compares against a tiny (or huge) limit
        session = BreakpointSession(ssh_daemon, ssh_attacker,
                                    target.address)
        status, kernel, client = session.run_with_flip(
            target.address + len(target.raw) - 1, 7)
        outcome, __ = classify_completed_run(
            golden, client, kernel.channel.normalized_transcript(),
            status)
        assert outcome in ("SD", "FSV", "NM")
