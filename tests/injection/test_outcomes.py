"""Outcome classifier unit tests with synthetic inputs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.emu import ExitStatus
from repro.injection import (classify_completed_run,
                             FAIL_SILENCE_VIOLATION, NOT_MANIFESTED,
                             SECURITY_BREAKIN, SYSTEM_DETECTION)


@dataclass
class FakeGolden:
    transcript: tuple
    broke_in: bool = False


class FakeClient:
    def __init__(self, broke_in=False):
        self._broke_in = broke_in

    def broke_in(self):
        return self._broke_in


GOLDEN = FakeGolden(transcript=(("S", b"220 hi"), ("C", b"USER x")))


def classify(client=None, transcript=GOLDEN.transcript,
             status=None, golden=GOLDEN):
    client = client or FakeClient()
    status = status or ExitStatus(kind="exit")
    return classify_completed_run(golden, client, transcript, status)


class TestClassifier:
    def test_identical_is_nm(self):
        outcome, __ = classify()
        assert outcome == NOT_MANIFESTED

    def test_crash_is_sd(self):
        outcome, detail = classify(
            status=ExitStatus(kind="crash", signal="SIGSEGV",
                              vector="#PF"))
        assert outcome == SYSTEM_DETECTION
        assert "SIGSEGV" in detail

    def test_transcript_divergence_is_fsv(self):
        outcome, detail = classify(
            transcript=(("S", b"220 hi"), ("C", b"USER y")))
        assert outcome == FAIL_SILENCE_VIOLATION
        assert "differs" in detail

    def test_missing_message_is_fsv(self):
        outcome, detail = classify(transcript=(("S", b"220 hi"),))
        assert outcome == FAIL_SILENCE_VIOLATION
        assert "missing" in detail

    def test_extra_message_is_fsv(self):
        outcome, detail = classify(
            transcript=GOLDEN.transcript + (("S", b"999 ???"),))
        assert outcome == FAIL_SILENCE_VIOLATION
        assert "extra" in detail

    def test_hang_is_fsv(self):
        outcome, detail = classify(status=ExitStatus(kind="hang"))
        assert outcome == FAIL_SILENCE_VIOLATION
        assert "hang" in detail

    def test_budget_exhaustion_is_fsv(self):
        outcome, __ = classify(status=ExitStatus(kind="limit"))
        assert outcome == FAIL_SILENCE_VIOLATION

    def test_breakin_beats_everything(self):
        outcome, __ = classify(client=FakeClient(broke_in=True))
        assert outcome == SECURITY_BREAKIN

    def test_breakin_then_crash_still_brk(self):
        outcome, detail = classify(
            client=FakeClient(broke_in=True),
            status=ExitStatus(kind="crash", signal="SIGSEGV",
                              vector="#GP"))
        assert outcome == SECURITY_BREAKIN
        assert "crashed afterwards" in detail

    def test_no_brk_when_golden_already_granted(self):
        golden = FakeGolden(transcript=GOLDEN.transcript, broke_in=True)
        outcome, __ = classify(client=FakeClient(broke_in=True),
                               golden=golden)
        assert outcome == NOT_MANIFESTED

    def test_grant_to_deny_is_fsv_not_brk(self):
        golden = FakeGolden(
            transcript=(("S", b"230 granted"),), broke_in=True)
        outcome, __ = classify(
            client=FakeClient(broke_in=False), golden=golden,
            transcript=(("S", b"530 denied"),))
        assert outcome == FAIL_SILENCE_VIOLATION
