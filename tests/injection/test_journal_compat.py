"""Backward compatibility: pre-registry journals and campaign JSON
(schema v2-v4) must keep loading and resuming under schema v5."""

import json
import os

import pytest

from repro.analysis import (campaign_from_dict, campaign_to_dict,
                            result_from_dict)
from repro.apps.ftpd import CLIENT_FACTORIES as FTP_CLIENTS
from repro.injection import run_campaign
from repro.injection.runner import CampaignJournal, JOURNAL_SCHEMA
from repro.injection.targets import InjectionPoint

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "journal_schema2.jsonl")


def test_schema_constants():
    assert JOURNAL_SCHEMA == 5


def test_old_fixture_journal_loads():
    meta, results, quarantined = CampaignJournal.load(FIXTURE)
    assert meta["schema"] == 2
    assert "model" not in meta
    assert set(results) == {"804a1c2:0:3", "804a1c2:1:7"}
    for key, record in results.items():
        result = result_from_dict(record)
        assert isinstance(result.point, InjectionPoint)
        assert result.point.key == key
    assert set(quarantined) == {"804a1d0:0:0"}


def _downgrade_journal(path):
    """Rewrite a v5 journal as its pre-registry (v2) equivalent:
    schema stamp back, no ``model`` in meta."""
    with open(path) as handle:
        lines = [json.loads(line) for line in handle
                 if line.strip()]
    assert lines[0]["type"] == "meta"
    lines[0]["schema"] = 2
    del lines[0]["model"]
    with open(path, "w") as handle:
        for record in lines:
            handle.write(json.dumps(record) + "\n")


def test_resume_from_pre_registry_journal(ftp_daemon, tmp_path):
    """A journal written before the fault-model registry existed (no
    ``model`` in meta, legacy point records) resumes as branch-bit
    with identical records."""
    journal = str(tmp_path / "old.jsonl")
    first = run_campaign(ftp_daemon, "Client1",
                         FTP_CLIENTS["Client1"], max_points=10,
                         journal=journal, resume=True)
    _downgrade_journal(journal)
    resumed = run_campaign(ftp_daemon, "Client1",
                           FTP_CLIENTS["Client1"], max_points=10,
                           journal=journal, resume=True)
    assert resumed.timing["executed"] == 0
    first_payload = campaign_to_dict(first)
    resumed_payload = campaign_to_dict(resumed)
    assert first_payload["results"] == resumed_payload["results"]
    assert resumed_payload["fault_model"] == "branch-bit"


def test_pre_registry_journal_rejects_non_branch_models(ftp_daemon,
                                                        tmp_path):
    """The missing ``model`` field means branch-bit and nothing else:
    resuming a register-bit campaign from it must fail loudly."""
    from repro.injection import JournalError
    journal = str(tmp_path / "old.jsonl")
    run_campaign(ftp_daemon, "Client1", FTP_CLIENTS["Client1"],
                 max_points=4, journal=journal, resume=True)
    _downgrade_journal(journal)
    with pytest.raises(JournalError):
        run_campaign(ftp_daemon, "Client1", FTP_CLIENTS["Client1"],
                     fault_model="register-bit", max_points=4,
                     journal=journal, resume=True)


def test_v4_campaign_payload_loads_as_branch_bit(ftp_daemon):
    """Campaign JSON written by schema v4 (no ``fault_model``, legacy
    point records) round-trips into a v5 CampaignResult."""
    campaign = run_campaign(ftp_daemon, "Client1",
                            FTP_CLIENTS["Client1"], max_points=6)
    payload = campaign_to_dict(campaign)
    # what a v4 writer produced
    payload["schema"] = 4
    del payload["fault_model"]
    loaded = campaign_from_dict(payload)
    assert loaded.fault_model == "branch-bit"
    assert loaded.counts() == campaign.counts()
    # and the re-serialized form is a clean v5 payload
    upgraded = campaign_to_dict(loaded)
    assert upgraded["schema"] == 5
    assert upgraded["fault_model"] == "branch-bit"
    assert upgraded["results"] == campaign_to_dict(campaign)["results"]


def test_unsupported_future_schema_rejected():
    with pytest.raises(ValueError):
        campaign_from_dict({"schema": 99, "daemon": "", "client": "",
                            "encoding": "", "results": []})
