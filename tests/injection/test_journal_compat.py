"""Backward compatibility: older journals and campaign JSON
(schema v2-v7) must keep loading and resuming under schema v8."""

import json
import os

import pytest

from repro.analysis import (campaign_from_dict, campaign_to_dict,
                            result_from_dict)
from repro.apps.ftpd import CLIENT_FACTORIES as FTP_CLIENTS
from repro.injection import run_campaign
from repro.injection.runner import CampaignJournal, JOURNAL_SCHEMA
from repro.injection.targets import InjectionPoint

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "journal_schema2.jsonl")
FIXTURE_V5 = os.path.join(os.path.dirname(__file__), "fixtures",
                          "journal_schema5.jsonl")


def test_schema_constants():
    assert JOURNAL_SCHEMA == 8


def test_old_fixture_journal_loads():
    meta, results, quarantined = CampaignJournal.load(FIXTURE)
    assert meta["schema"] == 2
    assert "model" not in meta
    assert set(results) == {"804a1c2:0:3", "804a1c2:1:7"}
    for key, record in results.items():
        result = result_from_dict(record)
        assert isinstance(result.point, InjectionPoint)
        assert result.point.key == key
    assert set(quarantined) == {"804a1d0:0:0"}


def test_v5_fixture_journal_loads():
    """A journal written by schema v5 (model in meta, no per-result
    forensics) loads unchanged; forensics defaults to None."""
    meta, results, quarantined = CampaignJournal.load(FIXTURE_V5)
    assert meta["schema"] == 5
    assert meta["model"] == "branch-bit"
    assert set(results) == {"804a1c2:0:3", "804a1c2:1:7"}
    for record in results.values():
        result = result_from_dict(record)
        assert result.forensics is None
    assert set(quarantined) == {"804a1d0:0:0"}


def _downgrade_journal(path, schema=2):
    """Rewrite a current journal as an older equivalent: schema stamp
    back; for the pre-registry v2 shape, drop ``model`` from meta
    too."""
    with open(path) as handle:
        lines = [json.loads(line) for line in handle
                 if line.strip()]
    assert lines[0]["type"] == "meta"
    lines[0]["schema"] = schema
    if schema < 5:
        del lines[0]["model"]
    with open(path, "w") as handle:
        for record in lines:
            handle.write(json.dumps(record) + "\n")


def test_resume_from_v5_journal(ftp_daemon, tmp_path):
    """A v5 journal (stamped model, no forensics) resumes under the
    current schema with identical records and zero re-execution."""
    journal = str(tmp_path / "v5.jsonl")
    first = run_campaign(ftp_daemon, "Client1",
                         FTP_CLIENTS["Client1"], max_points=10,
                         journal=journal, resume=True)
    _downgrade_journal(journal, schema=5)
    resumed = run_campaign(ftp_daemon, "Client1",
                           FTP_CLIENTS["Client1"], max_points=10,
                           journal=journal, resume=True)
    assert resumed.timing["executed"] == 0
    assert campaign_to_dict(first)["results"] \
        == campaign_to_dict(resumed)["results"]


def test_resume_from_pre_registry_journal(ftp_daemon, tmp_path):
    """A journal written before the fault-model registry existed (no
    ``model`` in meta, legacy point records) resumes as branch-bit
    with identical records."""
    journal = str(tmp_path / "old.jsonl")
    first = run_campaign(ftp_daemon, "Client1",
                         FTP_CLIENTS["Client1"], max_points=10,
                         journal=journal, resume=True)
    _downgrade_journal(journal)
    resumed = run_campaign(ftp_daemon, "Client1",
                           FTP_CLIENTS["Client1"], max_points=10,
                           journal=journal, resume=True)
    assert resumed.timing["executed"] == 0
    first_payload = campaign_to_dict(first)
    resumed_payload = campaign_to_dict(resumed)
    assert first_payload["results"] == resumed_payload["results"]
    assert resumed_payload["fault_model"] == "branch-bit"


def test_pre_registry_journal_rejects_non_branch_models(ftp_daemon,
                                                        tmp_path):
    """The missing ``model`` field means branch-bit and nothing else:
    resuming a register-bit campaign from it must fail loudly."""
    from repro.injection import JournalError
    journal = str(tmp_path / "old.jsonl")
    run_campaign(ftp_daemon, "Client1", FTP_CLIENTS["Client1"],
                 max_points=4, journal=journal, resume=True)
    _downgrade_journal(journal)
    with pytest.raises(JournalError):
        run_campaign(ftp_daemon, "Client1", FTP_CLIENTS["Client1"],
                     fault_model="register-bit", max_points=4,
                     journal=journal, resume=True)


def test_v4_campaign_payload_loads_as_branch_bit(ftp_daemon):
    """Campaign JSON written by schema v4 (no ``fault_model``, legacy
    point records) round-trips into a v7 CampaignResult."""
    campaign = run_campaign(ftp_daemon, "Client1",
                            FTP_CLIENTS["Client1"], max_points=6)
    payload = campaign_to_dict(campaign)
    # what a v4 writer produced
    payload["schema"] = 4
    del payload["fault_model"]
    loaded = campaign_from_dict(payload)
    assert loaded.fault_model == "branch-bit"
    assert loaded.counts() == campaign.counts()
    # and the re-serialized form is a clean v7 payload
    upgraded = campaign_to_dict(loaded)
    assert upgraded["schema"] == 7
    assert upgraded["fault_model"] == "branch-bit"
    assert upgraded["results"] == campaign_to_dict(campaign)["results"]


def test_unsupported_future_schema_rejected():
    with pytest.raises(ValueError):
        campaign_from_dict({"schema": 99, "daemon": "", "client": "",
                            "encoding": "", "results": []})
