"""Random-injection testbed: seed threading and reproducibility."""

from __future__ import annotations

import random

from repro.apps.ftpd import client1
from repro.injection import run_random_campaign

TRIALS = 40


class TestSeedStability:
    def test_same_seed_same_tally(self, ftp_daemon):
        first = run_random_campaign(ftp_daemon, client1, trials=TRIALS,
                                    seed=97)
        second = run_random_campaign(ftp_daemon, client1, trials=TRIALS,
                                     seed=97)
        assert first.outcomes == second.outcomes
        assert first.breakins == second.breakins

    def test_explicit_rng_matches_seed(self, ftp_daemon):
        seeded = run_random_campaign(ftp_daemon, client1, trials=TRIALS,
                                     seed=97)
        threaded = run_random_campaign(ftp_daemon, client1,
                                       trials=TRIALS, seed=0,
                                       rng=random.Random(97))
        assert seeded.outcomes == threaded.outcomes
        assert seeded.breakins == threaded.breakins

    def test_split_run_with_shared_rng_resumes_the_sequence(
            self, ftp_daemon):
        """Two half-length runs sharing one generator reproduce the
        single full-length run -- the property a retried/resumed
        random campaign needs."""
        full = run_random_campaign(ftp_daemon, client1, trials=TRIALS,
                                   seed=97)
        rng = random.Random(97)
        head = run_random_campaign(ftp_daemon, client1,
                                   trials=TRIALS // 2, rng=rng)
        tail = run_random_campaign(ftp_daemon, client1,
                                   trials=TRIALS // 2, rng=rng)
        merged = dict(head.outcomes)
        for outcome, count in tail.outcomes.items():
            merged[outcome] = merged.get(outcome, 0) + count
        assert merged == full.outcomes
        assert head.breakins + tail.breakins == full.breakins
